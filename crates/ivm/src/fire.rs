//! The rule-firing matcher: backtracking enumeration of rule bodies
//! against phase-resolved relation states.
//!
//! One firing = one assignment of the rule's body variables satisfying
//! every literal. The maintenance algorithms (counting and DRed, see
//! [`crate::engine`]) need three things the batch evaluator does not
//! offer:
//!
//! * **pins** — enumerate one body literal from an explicit delta
//!   relation instead of the stored state (the semi-naive/Δ trick);
//! * **per-literal phases** — evaluate literal `j` against the *old*,
//!   *mid* (deletions applied) or *new* state independently, which is
//!   what makes the counting telescope `Σ_k new…Δ_k…old` exact;
//! * **targeted derivation checks** — unify the head with a given fact
//!   first, then ask whether any satisfying body extension exists
//!   (DRed's re-derivation step).
//!
//! Every candidate row considered charges one governor step at
//! `"ivm.fire"`, so maintenance draws from the same allowance as query
//! evaluation.

use no_datalog::{DTerm, Literal, Rule};
use no_object::{Governor, Relation, ResourceError, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Which version of a relation a literal reads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Phase {
    /// The state before the delta.
    Old,
    /// Deletions applied, insertions not yet (DRed re-derivation reads
    /// externals here).
    Mid,
    /// The state after the delta.
    New,
}

/// Resolves relation names (at a phase) to concrete relations. The
/// engine implements this on small per-stratum context structs; `name`
/// may be a base relation, a lower-stratum (frozen) relation, or a
/// same-stratum relation.
pub trait StateFetch {
    /// The contents of `name` at `phase`.
    fn rel(&self, name: &str, phase: Phase) -> &Relation;

    /// Enumerate the rows of `name`@`phase` whose values at `positions`
    /// equal `key`, calling `each` per match (`Ok(false)` stops early).
    ///
    /// The default scans and filters, charging one `"ivm.fire"` step per
    /// row considered — exactly the cost the scan-based matcher paid.
    /// Contexts that own an [`IndexCache`] override this to build a hash
    /// index per `(relation, phase, positions)` once and answer every
    /// later probe in output-sensitive time.
    fn probe(
        &self,
        name: &str,
        phase: Phase,
        positions: &[usize],
        key: &[Value],
        gov: &Governor,
        each: &mut dyn FnMut(&Vec<Value>) -> Result<bool, ResourceError>,
    ) -> Result<(), ResourceError> {
        scan_probe(self.rel(name, phase), positions, key, gov, each)
    }
}

/// The fallback probe: scan every row, keep those matching `key` at
/// `positions`. One governor step per row considered.
pub fn scan_probe(
    rel: &Relation,
    positions: &[usize],
    key: &[Value],
    gov: &Governor,
    each: &mut dyn FnMut(&Vec<Value>) -> Result<bool, ResourceError>,
) -> Result<(), ResourceError> {
    for row in rel.iter() {
        gov.tick("ivm.fire")?;
        if positions.iter().zip(key).all(|(&p, v)| &row[p] == v) && !each(row)? {
            return Ok(());
        }
    }
    Ok(())
}

type Index = HashMap<Vec<Value>, Vec<Vec<Value>>>;

/// Per-maintenance-call hash indexes over relation states, keyed by
/// `(relation, phase, bound positions)`. Building an index costs one
/// pass over the relation (one `"ivm.index"` governor step per row);
/// every subsequent probe with the same shape is O(matches). Every
/// relation a probe reads is frozen for the cache's lifetime — the
/// engine layers mutable same-stratum state as an overlay *over* the
/// frozen snapshot rather than mutating what the cache indexed.
#[derive(Default)]
pub struct IndexCache {
    map: RefCell<HashMap<ProbeShape, Arc<Index>>>,
    /// Probe shapes seen so far: an index is only built the *second*
    /// time a shape is probed — a one-shot probe is cheaper as a scan.
    seen: RefCell<HashMap<ProbeShape, u32>>,
}

/// Cache key: which relation/phase is probed and which positions are bound.
type ProbeShape = (String, Phase, Vec<usize>);

impl IndexCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        IndexCache::default()
    }

    /// Indexed probe over `rel` (the resolved contents of
    /// `name`@`phase`, frozen for this cache's lifetime).
    #[allow(clippy::too_many_arguments)]
    pub fn probe(
        &self,
        rel: &Relation,
        name: &str,
        phase: Phase,
        positions: &[usize],
        key: &[Value],
        gov: &Governor,
        each: &mut dyn FnMut(&Vec<Value>) -> Result<bool, ResourceError>,
    ) -> Result<(), ResourceError> {
        if positions.is_empty() {
            // nothing bound: an index has no selectivity to offer
            return scan_probe(rel, positions, key, gov, each);
        }
        // fully bound: a membership test, no enumeration at all
        if positions.len() == key.len()
            && positions.iter().enumerate().all(|(i, &p)| i == p)
            && rel.iter().next().is_none_or(|row| row.len() == key.len())
        {
            gov.tick("ivm.fire")?;
            if rel.contains(key) {
                let row = key.to_vec();
                each(&row)?;
            }
            return Ok(());
        }
        let cache_key = (name.to_string(), phase, positions.to_vec());
        // resolve (or build) the index, then release the borrow before
        // calling `each` — deeper literals probe this cache reentrantly
        let index: Option<Arc<Index>> = {
            let mut map = self.map.borrow_mut();
            match map.get(&cache_key) {
                Some(idx) => Some(Arc::clone(idx)),
                None => {
                    // build only on the second probe of this shape —
                    // a one-shot probe is cheaper as a plain scan
                    let hits = self
                        .seen
                        .borrow_mut()
                        .entry(cache_key.clone())
                        .and_modify(|c| *c += 1)
                        .or_insert(1)
                        .to_owned();
                    if hits < 2 {
                        None
                    } else {
                        let mut built: Index = HashMap::new();
                        for row in rel.iter() {
                            gov.tick("ivm.index")?;
                            let k: Vec<Value> = positions.iter().map(|&p| row[p].clone()).collect();
                            built.entry(k).or_default().push(row.clone());
                        }
                        let idx = Arc::new(built);
                        map.insert(cache_key, Arc::clone(&idx));
                        Some(idx)
                    }
                }
            }
        };
        let Some(index) = index else {
            return scan_probe(rel, positions, key, gov, each);
        };
        if let Some(rows) = index.get(key) {
            for row in rows {
                gov.tick("ivm.fire")?;
                if !each(row)? {
                    return Ok(());
                }
            }
        }
        Ok(())
    }
}

/// Enumerate one literal from explicit rows instead of the stored state.
pub struct Pin<'a> {
    /// Index into `rule.body` of the pinned literal.
    pub lit: usize,
    /// The rows enumerated there (a delta, not the full relation).
    pub rows: &'a Relation,
}

/// A variable binding as a backtrackable stack (rules have few
/// variables; linear lookup beats a map here).
struct Binding<'r> {
    stack: Vec<(&'r str, Value)>,
}

impl<'r> Binding<'r> {
    fn get(&self, var: &str) -> Option<&Value> {
        self.stack
            .iter()
            .rev()
            .find(|(v, _)| *v == var)
            .map(|(_, val)| val)
    }

    /// Unify literal arguments against a concrete row. Returns the stack
    /// length to truncate back to on backtrack, or `None` on mismatch
    /// (already truncated).
    fn unify(&mut self, args: &'r [DTerm], row: &[Value]) -> Option<usize> {
        let mark = self.stack.len();
        debug_assert_eq!(args.len(), row.len());
        for (arg, val) in args.iter().zip(row) {
            let ok = match arg {
                DTerm::Const(c) => c == val,
                DTerm::Var(v) => match self.get(v) {
                    Some(bound) => bound == val,
                    None => {
                        self.stack.push((v.as_str(), val.clone()));
                        true
                    }
                },
            };
            if !ok {
                self.stack.truncate(mark);
                return None;
            }
        }
        Some(mark)
    }

    fn term(&self, t: &DTerm) -> Option<Value> {
        match t {
            DTerm::Const(c) => Some(c.clone()),
            DTerm::Var(v) => self.get(v).cloned(),
        }
    }

    /// Whether `t` is determined under the current binding (no clone).
    fn is_bound(&self, t: &DTerm) -> bool {
        match t {
            DTerm::Const(_) => true,
            DTerm::Var(v) => self.get(v).is_some(),
        }
    }
}

/// Enumerate every firing of `rule` and hand the instantiated head row
/// to `sink`. With a [`Pin`], the pinned literal enumerates `pin.rows`
/// (for a negated pin the literal only binds, it is not re-checked —
/// the pin rows *are* the violation/satisfaction delta). `phase_of`
/// assigns each body literal index the state it reads. `sink` returns
/// `false` to stop early.
pub fn for_each_firing(
    rule: &Rule,
    pin: Option<&Pin<'_>>,
    phase_of: &dyn Fn(usize) -> Phase,
    st: &dyn StateFetch,
    gov: &Governor,
    sink: &mut dyn FnMut(Vec<Value>) -> Result<bool, ResourceError>,
) -> Result<(), ResourceError> {
    let mut binding = Binding { stack: Vec::new() };
    let mut emit = |b: &Binding<'_>| -> Result<bool, ResourceError> {
        let row: Vec<Value> = rule
            .head_args
            .iter()
            .map(|t| {
                b.term(t)
                    .expect("validated rule: head variable bound by the body")
            })
            .collect();
        sink(row)
    };
    drive(rule, pin, phase_of, st, gov, &mut binding, &mut emit)?;
    Ok(())
}

/// Does any firing of `rule` derive exactly `fact`? Unifies the head
/// with `fact` first, then searches for a satisfying body extension
/// (DRed re-derivation).
pub fn derives(
    rule: &Rule,
    fact: &[Value],
    phase_of: &dyn Fn(usize) -> Phase,
    st: &dyn StateFetch,
    gov: &Governor,
) -> Result<bool, ResourceError> {
    if rule.head_args.len() != fact.len() {
        return Ok(false);
    }
    let mut binding = Binding { stack: Vec::new() };
    if binding.unify(&rule.head_args, fact).is_none() {
        return Ok(false);
    }
    let mut found = false;
    let mut emit = |_: &Binding<'_>| -> Result<bool, ResourceError> {
        found = true;
        Ok(false) // one witness is enough
    };
    drive(rule, None, phase_of, st, gov, &mut binding, &mut emit)?;
    Ok(found)
}

/// Shared driver: pin enumeration (if any), then the positive literals,
/// then the constraint solver, calling `emit` per satisfying binding.
fn drive<'r>(
    rule: &'r Rule,
    pin: Option<&Pin<'_>>,
    phase_of: &dyn Fn(usize) -> Phase,
    st: &dyn StateFetch,
    gov: &Governor,
    binding: &mut Binding<'r>,
    emit: &mut dyn FnMut(&Binding<'r>) -> Result<bool, ResourceError>,
) -> Result<(), ResourceError> {
    // Positive literals to enumerate (the pinned one is handled first,
    // whatever its polarity); the rest are constraints solved at the leaf.
    let mut positives: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(i, l)| matches!(l, Literal::Pos(..)) && pin.is_none_or(|p| p.lit != *i))
        .map(|(i, _)| i)
        .collect();
    let constraints: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(i, l)| !matches!(l, Literal::Pos(..)) && pin.is_none_or(|p| p.lit != *i))
        .map(|(i, _)| i)
        .collect();

    match pin {
        Some(p) => {
            let args = match &rule.body[p.lit] {
                Literal::Pos(_, args) | Literal::Neg(_, args) => args,
                other => unreachable!("only relation literals can be pinned, got {other}"),
            };
            for row in p.rows.iter() {
                gov.tick("ivm.fire")?;
                let Some(mark) = binding.unify(args, row) else {
                    continue;
                };
                if !enumerate(
                    rule,
                    &mut positives,
                    0,
                    &constraints,
                    phase_of,
                    st,
                    gov,
                    binding,
                    emit,
                )? {
                    binding.stack.truncate(mark);
                    return Ok(());
                }
                binding.stack.truncate(mark);
            }
            Ok(())
        }
        None => {
            enumerate(
                rule,
                &mut positives,
                0,
                &constraints,
                phase_of,
                st,
                gov,
                binding,
                emit,
            )?;
            Ok(())
        }
    }
}

/// Backtracking enumeration over the positive literals; `Ok(false)`
/// propagates an early stop from `emit`.
///
/// The literal order is chosen greedily per depth: the most-bound
/// remaining literal goes next (fully-bound ones first of all, where
/// the probe degenerates to a membership test). Each depth re-selects
/// under its own binding, so the swap needs no undo on backtrack —
/// `positives[..depth]` is never disturbed.
#[allow(clippy::too_many_arguments)]
fn enumerate<'r>(
    rule: &'r Rule,
    positives: &mut [usize],
    depth: usize,
    constraints: &[usize],
    phase_of: &dyn Fn(usize) -> Phase,
    st: &dyn StateFetch,
    gov: &Governor,
    binding: &mut Binding<'r>,
    emit: &mut dyn FnMut(&Binding<'r>) -> Result<bool, ResourceError>,
) -> Result<bool, ResourceError> {
    if depth >= positives.len() {
        return solve_constraints(rule, constraints, 0, phase_of, st, gov, binding, emit);
    }
    let mut best = depth;
    let mut best_key = (false, 0usize, std::cmp::Reverse(usize::MAX));
    for (j, &cand) in positives.iter().enumerate().skip(depth) {
        let Literal::Pos(name, args) = &rule.body[cand] else {
            unreachable!("positives holds Pos indices only")
        };
        let bound = args.iter().filter(|a| binding.is_bound(a)).count();
        // ties on boundness go to the smaller relation
        let size = st.rel(name, phase_of(cand)).len();
        let key = (bound == args.len(), bound, std::cmp::Reverse(size));
        if key > best_key {
            (best, best_key) = (j, key);
        }
    }
    positives.swap(depth, best);
    let idx = positives[depth];
    let Literal::Pos(name, args) = &rule.body[idx] else {
        unreachable!("positives holds Pos indices only")
    };
    // probe on the argument positions the binding already determines;
    // unify re-checks them and binds the rest
    let mut positions = Vec::new();
    let mut key = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = binding.term(arg) {
            positions.push(i);
            key.push(v);
        }
    }
    let mut keep_going = true;
    st.probe(name, phase_of(idx), &positions, &key, gov, &mut |row| {
        let Some(mark) = binding.unify(args, row) else {
            return Ok(true);
        };
        let keep = enumerate(
            rule,
            positives,
            depth + 1,
            constraints,
            phase_of,
            st,
            gov,
            binding,
            emit,
        )?;
        binding.stack.truncate(mark);
        if !keep {
            keep_going = false;
        }
        Ok(keep)
    })?;
    Ok(keep_going)
}

/// Solve the constraint literals under the current binding. `Eq` may
/// *bind* a still-free variable and `In` may *enumerate* a bound set
/// (both sanctioned by `Program::validate`'s safety saturation); the
/// rest are pure checks. Constraints whose variables are not yet bound
/// are deferred by rotating them to the back — validated rules always
/// make progress, so the pass count is bounded by `constraints.len()`.
#[allow(clippy::too_many_arguments)]
fn solve_constraints<'r>(
    rule: &'r Rule,
    remaining: &[usize],
    stuck: usize,
    phase_of: &dyn Fn(usize) -> Phase,
    st: &dyn StateFetch,
    gov: &Governor,
    binding: &mut Binding<'r>,
    emit: &mut dyn FnMut(&Binding<'r>) -> Result<bool, ResourceError>,
) -> Result<bool, ResourceError> {
    let Some((&idx, rest)) = remaining.split_first() else {
        return emit(binding);
    };
    if stuck > remaining.len() {
        // every remaining constraint is waiting on a variable none of
        // them can bind — impossible for validated rules
        unreachable!("constraint solving stalled on a validated rule");
    }
    let defer = |binding: &mut Binding<'r>,
                 emit: &mut dyn FnMut(&Binding<'r>) -> Result<bool, ResourceError>|
     -> Result<bool, ResourceError> {
        let mut rotated: Vec<usize> = rest.to_vec();
        rotated.push(idx);
        solve_constraints(rule, &rotated, stuck + 1, phase_of, st, gov, binding, emit)
    };
    gov.tick("ivm.fire")?;
    match &rule.body[idx] {
        Literal::Neg(name, args) => {
            let vals: Option<Vec<Value>> = args.iter().map(|t| binding.term(t)).collect();
            match vals {
                None => defer(binding, emit),
                Some(row) => {
                    if st.rel(name, phase_of(idx)).contains(&row) {
                        Ok(true) // constraint fails; keep enumerating others
                    } else {
                        solve_constraints(rule, rest, 0, phase_of, st, gov, binding, emit)
                    }
                }
            }
        }
        Literal::Eq(a, b) => match (binding.term(a), binding.term(b)) {
            (Some(x), Some(y)) => {
                if x == y {
                    solve_constraints(rule, rest, 0, phase_of, st, gov, binding, emit)
                } else {
                    Ok(true)
                }
            }
            (Some(x), None) | (None, Some(x)) => {
                let var = match (a, b) {
                    (DTerm::Var(v), _) if binding.get(v).is_none() => v,
                    (_, DTerm::Var(v)) => v,
                    _ => unreachable!("unbound side must be a variable"),
                };
                binding.stack.push((var.as_str(), x));
                let r = solve_constraints(rule, rest, 0, phase_of, st, gov, binding, emit);
                binding.stack.pop();
                r
            }
            (None, None) => defer(binding, emit),
        },
        Literal::Neq(a, b) => match (binding.term(a), binding.term(b)) {
            (Some(x), Some(y)) => {
                if x != y {
                    solve_constraints(rule, rest, 0, phase_of, st, gov, binding, emit)
                } else {
                    Ok(true)
                }
            }
            _ => defer(binding, emit),
        },
        Literal::In(a, b) => match binding.term(b) {
            None => defer(binding, emit),
            Some(Value::Set(members)) => match binding.term(a) {
                Some(x) => {
                    if members.iter().any(|m| *m == x) {
                        solve_constraints(rule, rest, 0, phase_of, st, gov, binding, emit)
                    } else {
                        Ok(true)
                    }
                }
                None => {
                    let DTerm::Var(v) = a else {
                        unreachable!("unbound membership side must be a variable")
                    };
                    for m in members.iter() {
                        gov.tick("ivm.fire")?;
                        binding.stack.push((v.as_str(), m.clone()));
                        let keep =
                            solve_constraints(rule, rest, 0, phase_of, st, gov, binding, emit)?;
                        binding.stack.pop();
                        if !keep {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                }
            },
            Some(_) => Ok(true), // membership in a non-set never holds
        },
        Literal::NotIn(a, b) => match (binding.term(a), binding.term(b)) {
            (Some(x), Some(Value::Set(members))) => {
                if members.iter().all(|m| *m != x) {
                    solve_constraints(rule, rest, 0, phase_of, st, gov, binding, emit)
                } else {
                    Ok(true)
                }
            }
            (Some(_), Some(_)) => {
                // not-in over a non-set vacuously holds
                solve_constraints(rule, rest, 0, phase_of, st, gov, binding, emit)
            }
            _ => defer(binding, emit),
        },
        Literal::Pos(..) => unreachable!("positive literals are enumerated, not solved"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::Universe;
    use std::collections::BTreeMap;

    struct Flat {
        rels: BTreeMap<String, Relation>,
    }

    impl StateFetch for Flat {
        fn rel(&self, name: &str, _phase: Phase) -> &Relation {
            static EMPTY: std::sync::OnceLock<Relation> = std::sync::OnceLock::new();
            self.rels
                .get(name)
                .unwrap_or_else(|| EMPTY.get_or_init(Relation::new))
        }
    }

    fn edge_state(u: &mut Universe, edges: &[(&str, &str)]) -> Flat {
        let rows = edges
            .iter()
            .map(|(a, b)| vec![Value::Atom(u.intern(a)), Value::Atom(u.intern(b))]);
        let mut rels = BTreeMap::new();
        rels.insert("G".to_string(), Relation::from_rows(rows));
        Flat { rels }
    }

    fn collect(rule: &Rule, pin: Option<&Pin<'_>>, st: &dyn StateFetch) -> Vec<Vec<Value>> {
        let gov = Governor::unlimited();
        let mut out = Vec::new();
        for_each_firing(rule, pin, &|_| Phase::Old, st, &gov, &mut |row| {
            out.push(row);
            Ok(true)
        })
        .unwrap();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn join_firings_match_composition() {
        let mut u = Universe::new();
        let st = edge_state(&mut u, &[("a", "b"), ("b", "c"), ("b", "d")]);
        // two_hop(x, z) :- G(x, y), G(y, z).
        let rule = Rule {
            head: "two_hop".to_string(),
            head_args: vec![DTerm::var("x"), DTerm::var("z")],
            body: vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("y")]),
                Literal::Pos("G".into(), vec![DTerm::var("y"), DTerm::var("z")]),
            ],
        };
        let rows = collect(&rule, None, &st);
        let a = |s: &str| Value::Atom(u.get(s).unwrap());
        assert_eq!(rows, vec![vec![a("a"), a("c")], vec![a("a"), a("d")]]);
    }

    #[test]
    fn pinned_enumeration_restricts_to_delta_rows() {
        let mut u = Universe::new();
        let st = edge_state(&mut u, &[("a", "b"), ("b", "c"), ("c", "d")]);
        let rule = Rule {
            head: "two_hop".to_string(),
            head_args: vec![DTerm::var("x"), DTerm::var("z")],
            body: vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("y")]),
                Literal::Pos("G".into(), vec![DTerm::var("y"), DTerm::var("z")]),
            ],
        };
        // pin the second literal to just (c, d): only (b, d) can fire
        let delta = Relation::from_rows([vec![
            Value::Atom(u.get("c").unwrap()),
            Value::Atom(u.get("d").unwrap()),
        ]]);
        let pin = Pin {
            lit: 1,
            rows: &delta,
        };
        let rows = collect(&rule, Some(&pin), &st);
        let a = |s: &str| Value::Atom(u.get(s).unwrap());
        assert_eq!(rows, vec![vec![a("b"), a("d")]]);
    }

    #[test]
    fn derives_checks_one_fact_only() {
        let mut u = Universe::new();
        let st = edge_state(&mut u, &[("a", "b"), ("b", "c")]);
        let rule = Rule {
            head: "two_hop".to_string(),
            head_args: vec![DTerm::var("x"), DTerm::var("z")],
            body: vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("y")]),
                Literal::Pos("G".into(), vec![DTerm::var("y"), DTerm::var("z")]),
            ],
        };
        let gov = Governor::unlimited();
        let a = |s: &str| Value::Atom(u.get(s).unwrap());
        assert!(derives(&rule, &[a("a"), a("c")], &|_| Phase::Old, &st, &gov).unwrap());
        assert!(!derives(&rule, &[a("a"), a("b")], &|_| Phase::Old, &st, &gov).unwrap());
    }

    #[test]
    fn negation_and_comparisons_filter_firings() {
        let mut u = Universe::new();
        let mut st = edge_state(&mut u, &[("a", "b"), ("b", "c"), ("c", "c")]);
        st.rels.insert(
            "Blocked".to_string(),
            Relation::from_rows([vec![Value::Atom(u.intern("a")), Value::Atom(u.intern("b"))]]),
        );
        // ok(x, y) :- G(x, y), !Blocked(x, y), x != y.
        let rule = Rule {
            head: "ok".to_string(),
            head_args: vec![DTerm::var("x"), DTerm::var("y")],
            body: vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("y")]),
                Literal::Neg("Blocked".into(), vec![DTerm::var("x"), DTerm::var("y")]),
                Literal::Neq(DTerm::var("x"), DTerm::var("y")),
            ],
        };
        let rows = collect(&rule, None, &st);
        let a = |s: &str| Value::Atom(u.get(s).unwrap());
        assert_eq!(rows, vec![vec![a("b"), a("c")]]);
    }

    #[test]
    fn eq_binds_and_in_enumerates() {
        let mut u = Universe::new();
        let st = edge_state(&mut u, &[("a", "b")]);
        let set = Value::set([Value::Atom(u.intern("p")), Value::Atom(u.intern("q"))]);
        // tag(x, t, c) :- G(x, y), t in S, c = y   (S a constant set)
        let rule = Rule {
            head: "tag".to_string(),
            head_args: vec![DTerm::var("x"), DTerm::var("t"), DTerm::var("c")],
            body: vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("y")]),
                Literal::In(DTerm::var("t"), DTerm::Const(set)),
                Literal::Eq(DTerm::var("c"), DTerm::var("y")),
            ],
        };
        let rows = collect(&rule, None, &st);
        assert_eq!(rows.len(), 2, "one firing per set member: {rows:?}");
    }

    #[test]
    fn firing_attempts_are_governor_metered() {
        let mut u = Universe::new();
        let st = edge_state(&mut u, &[("a", "b"), ("b", "c"), ("c", "d")]);
        let rule = Rule {
            head: "two_hop".to_string(),
            head_args: vec![DTerm::var("x"), DTerm::var("z")],
            body: vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("y")]),
                Literal::Pos("G".into(), vec![DTerm::var("y"), DTerm::var("z")]),
            ],
        };
        let gov = Governor::new(no_object::Limits {
            max_steps: 2,
            ..no_object::Limits::unlimited()
        });
        let err = for_each_firing(&rule, None, &|_| Phase::Old, &st, &gov, &mut |_| Ok(true))
            .unwrap_err();
        assert_eq!(err.budget, no_object::BudgetKind::Steps);
    }
}
