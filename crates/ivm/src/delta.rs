//! Delta types: batches of base-table mutations ([`BaseDelta`]) and the
//! per-view changes maintenance produces ([`ViewDelta`]).
//!
//! Both are kept in **effective** form relative to the instance they
//! apply to: `add` rows are absent from it, `del` rows present, and the
//! two halves are disjoint — the same invariant the columnar
//! `no_exec::DeltaTable` maintains one layer down.

use no_object::{Instance, Relation, Value};
use std::collections::BTreeMap;

/// A batch of base-relation mutations: the unit of maintenance work.
///
/// Build one per transaction/request with [`BaseDelta::insert`] and
/// [`BaseDelta::delete`] (an insert and delete of the same row cancel
/// within the batch), then [`BaseDelta::normalize`] against the
/// pre-update instance to drop no-op rows before handing it to
/// `ViewRegistry::maintain`.
#[derive(Clone, Debug, Default)]
pub struct BaseDelta {
    /// Rows to insert, per base relation.
    pub add: BTreeMap<String, Relation>,
    /// Rows to remove, per base relation.
    pub del: BTreeMap<String, Relation>,
}

impl BaseDelta {
    /// The empty batch.
    pub fn new() -> Self {
        BaseDelta::default()
    }

    /// Queue an insertion. Cancels a pending deletion of the same row.
    pub fn insert(&mut self, rel: &str, row: Vec<Value>) {
        if let Some(d) = self.del.get_mut(rel) {
            if d.remove(&row) {
                return;
            }
        }
        self.add.entry(rel.to_string()).or_default().insert(row);
    }

    /// Queue a deletion. Cancels a pending insertion of the same row.
    pub fn delete(&mut self, rel: &str, row: Vec<Value>) {
        if let Some(a) = self.add.get_mut(rel) {
            if a.remove(&row) {
                return;
            }
        }
        self.del.entry(rel.to_string()).or_default().insert(row);
    }

    /// True when no mutation survives.
    pub fn is_empty(&self) -> bool {
        self.add.values().all(Relation::is_empty) && self.del.values().all(Relation::is_empty)
    }

    /// Total queued rows (both halves).
    pub fn len(&self) -> usize {
        self.add.values().map(Relation::len).sum::<usize>()
            + self.del.values().map(Relation::len).sum::<usize>()
    }

    /// Restore effectiveness against the pre-update `instance`: drop
    /// insertions of rows already present and deletions of rows already
    /// absent. Returns `self` for chaining.
    pub fn normalize(mut self, instance: &Instance) -> Self {
        for (rel, rows) in &mut self.add {
            let existing = instance.relation(rel);
            *rows = rows
                .iter()
                .filter(|r| !existing.contains(r))
                .cloned()
                .collect();
        }
        for (rel, rows) in &mut self.del {
            let existing = instance.relation(rel);
            *rows = rows
                .iter()
                .filter(|r| existing.contains(r))
                .cloned()
                .collect();
        }
        self.add.retain(|_, r| !r.is_empty());
        self.del.retain(|_, r| !r.is_empty());
        self
    }

    /// Apply to an instance: deletions first, then insertions.
    pub fn apply(&self, instance: &mut Instance) {
        for (rel, rows) in &self.del {
            for row in rows.iter() {
                instance.delete(rel, row);
            }
        }
        for (rel, rows) in &self.add {
            for row in rows.iter() {
                instance.insert(rel, row.clone());
            }
        }
    }
}

/// The net change maintenance computed for one view: per maintained
/// relation, the rows that appeared and the rows that disappeared.
/// Effective w.r.t. the view's pre-maintenance contents by construction
/// (computed as a set difference of old and new states).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ViewDelta {
    /// Newly derived rows, per maintained relation.
    pub add: BTreeMap<String, Relation>,
    /// No-longer-derivable rows, per maintained relation.
    pub del: BTreeMap<String, Relation>,
}

impl ViewDelta {
    /// The empty change.
    pub fn new() -> Self {
        ViewDelta::default()
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.add.values().all(Relation::is_empty) && self.del.values().all(Relation::is_empty)
    }

    /// Total changed rows across relations and both halves.
    pub fn len(&self) -> usize {
        self.add.values().map(Relation::len).sum::<usize>()
            + self.del.values().map(Relation::len).sum::<usize>()
    }

    /// The delta between two relation states: `add = new ∖ old`,
    /// `del = old ∖ new`, skipping unchanged relations.
    pub fn between(
        old: &BTreeMap<String, Relation>,
        new: &BTreeMap<String, Relation>,
    ) -> ViewDelta {
        let mut out = ViewDelta::new();
        for (name, new_rel) in new {
            let old_rel = old.get(name);
            let add: Relation = new_rel
                .iter()
                .filter(|r| old_rel.is_none_or(|o| !o.contains(r)))
                .cloned()
                .collect();
            if !add.is_empty() {
                out.add.insert(name.clone(), add);
            }
            if let Some(old_rel) = old_rel {
                let del: Relation = old_rel
                    .iter()
                    .filter(|r| !new_rel.contains(r))
                    .cloned()
                    .collect();
                if !del.is_empty() {
                    out.del.insert(name.clone(), del);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{RelationSchema, Schema, Type, Universe};

    fn atom(u: &mut Universe, s: &str) -> Value {
        Value::Atom(u.intern(s))
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut u = Universe::new();
        let mut d = BaseDelta::new();
        let row = vec![atom(&mut u, "a"), atom(&mut u, "b")];
        d.insert("G", row.clone());
        d.delete("G", row.clone());
        assert!(d.is_empty());
        d.delete("G", row.clone());
        d.insert("G", row);
        assert!(d.is_empty());
    }

    #[test]
    fn normalize_drops_noop_mutations() {
        let mut u = Universe::new();
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let mut inst = Instance::empty(schema);
        let ab = vec![atom(&mut u, "a"), atom(&mut u, "b")];
        let cd = vec![atom(&mut u, "c"), atom(&mut u, "d")];
        inst.insert("G", ab.clone());
        let mut d = BaseDelta::new();
        d.insert("G", ab.clone()); // already present → no-op
        d.delete("G", cd); // absent → no-op
        let d = d.normalize(&inst);
        assert!(d.is_empty());
    }

    #[test]
    fn view_delta_between_reports_net_change() {
        let mut u = Universe::new();
        let a = vec![atom(&mut u, "a")];
        let b = vec![atom(&mut u, "b")];
        let c = vec![atom(&mut u, "c")];
        let mut old = BTreeMap::new();
        old.insert("v".to_string(), Relation::from_rows([a.clone(), b.clone()]));
        let mut new = BTreeMap::new();
        new.insert("v".to_string(), Relation::from_rows([b, c.clone()]));
        let d = ViewDelta::between(&old, &new);
        assert_eq!(d.add["v"], Relation::from_rows([c]));
        assert_eq!(d.del["v"], Relation::from_rows([a]));
        assert_eq!(d.len(), 2);
    }
}
