//! The IVM error type.

use no_object::ResourceError;
use no_plan::PlanError;
use std::fmt;

/// Why a view could not be materialized, maintained, or restored.
#[derive(Debug)]
pub enum IvmError {
    /// The view's Datalog¬ source failed to parse.
    Parse(String),
    /// The program failed validation or stratification.
    Plan(PlanError),
    /// A governor budget tripped mid-work. The registry is
    /// transactional: no view was partially updated.
    Resource(ResourceError),
    /// No view with that name is registered.
    UnknownView(String),
    /// A view checkpoint was malformed.
    Checkpoint(String),
}

impl fmt::Display for IvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IvmError::Parse(m) => write!(f, "view definition: {m}"),
            IvmError::Plan(e) => write!(f, "view planning: {e}"),
            IvmError::Resource(e) => write!(f, "{e}"),
            IvmError::UnknownView(n) => write!(f, "unknown view {n:?}"),
            IvmError::Checkpoint(m) => write!(f, "view checkpoint: {m}"),
        }
    }
}

impl std::error::Error for IvmError {}

impl From<ResourceError> for IvmError {
    fn from(e: ResourceError) -> Self {
        IvmError::Resource(e)
    }
}

impl From<PlanError> for IvmError {
    fn from(e: PlanError) -> Self {
        IvmError::Plan(e)
    }
}
