//! View checkpoints: a text serialization of a [`ViewRegistry`] that
//! rides inside the storage layer's `views.bin` envelope
//! (`no_storage::Db::save_views` / `load_views`).
//!
//! The envelope stamps the body with the `(epoch, wal_frames)` position
//! it was taken at; this module only encodes the body. Facts are
//! rendered with the same text syntax as the WAL (`render_fact` /
//! `parse_clause`), so atom identity survives universe renumbering
//! across restarts. Counting strata persist their per-fact derivation
//! counts; DRed strata persist the bare sets.
//!
//! Format (line-oriented, versioned):
//!
//! ```text
//! ivm-views v1
//! view <name>
//! source <n-lines>
//! <the view's Datalog¬ source, verbatim>
//! rel <relname> <counting|set>
//! <count> <fact clause>
//! endrel
//! endview
//! ```

use crate::engine::{MaintainedView, ViewRegistry, ViewStats};
use crate::error::IvmError;
use no_datalog::parse_program;
use no_object::text::{parse_clause, render_fact, Clause};
use no_object::{Relation, Schema, Universe, Value};
use no_plan::plan_maintenance;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const MAGIC: &str = "ivm-views v1";

/// Serialize the registry body for [`no_storage::Db::save_views`].
pub fn encode_registry(reg: &ViewRegistry, universe: &Universe) -> Vec<u8> {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    for view in reg.views.values() {
        let _ = writeln!(out, "view {}", view.name);
        let src_lines: Vec<&str> = view.source.lines().collect();
        let _ = writeln!(out, "source {}", src_lines.len());
        for line in &src_lines {
            let _ = writeln!(out, "{line}");
        }
        for (rel, rows) in &view.state {
            let counting = view.counts.contains_key(rel);
            let _ = writeln!(
                out,
                "rel {rel} {}",
                if counting { "counting" } else { "set" }
            );
            for row in rows.sorted_rows() {
                let count = if counting {
                    view.counts[rel].get(row.as_slice()).copied().unwrap_or(0)
                } else {
                    0
                };
                let _ = writeln!(out, "{count} {}", render_fact(universe, rel, row));
            }
            let _ = writeln!(out, "endrel");
        }
        let _ = writeln!(out, "endview");
    }
    out.into_bytes()
}

/// Rebuild a registry from a checkpoint body. `schema` is the base
/// schema the views were defined against (programs re-validate and
/// re-plan against it); `universe` re-interns atom names.
pub fn decode_registry(
    bytes: &[u8],
    universe: &mut Universe,
    schema: &Schema,
) -> Result<ViewRegistry, IvmError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| IvmError::Checkpoint("body is not UTF-8".to_string()))?;
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(IvmError::Checkpoint(format!(
            "bad magic (expected {MAGIC:?})"
        )));
    }
    let mut reg = ViewRegistry::new();
    while let Some(line) = lines.next() {
        if line.is_empty() {
            continue;
        }
        let name = line
            .strip_prefix("view ")
            .ok_or_else(|| IvmError::Checkpoint(format!("expected `view`, got {line:?}")))?
            .to_string();
        let src_hdr = lines
            .next()
            .and_then(|l| l.strip_prefix("source "))
            .ok_or_else(|| IvmError::Checkpoint("missing `source` header".to_string()))?;
        let n: usize = src_hdr
            .parse()
            .map_err(|_| IvmError::Checkpoint(format!("bad source line count {src_hdr:?}")))?;
        let mut source = String::new();
        for _ in 0..n {
            let l = lines
                .next()
                .ok_or_else(|| IvmError::Checkpoint("truncated source".to_string()))?;
            source.push_str(l);
            source.push('\n');
        }
        let program = parse_program(&source, universe)
            .map_err(|e| IvmError::Checkpoint(format!("view {name}: {e}")))?;
        let plan = plan_maintenance(schema, None, &program).map_err(IvmError::Plan)?;
        let mut state: BTreeMap<String, Relation> = BTreeMap::new();
        let mut counts: BTreeMap<String, BTreeMap<Vec<Value>, u64>> = BTreeMap::new();
        loop {
            let line = lines
                .next()
                .ok_or_else(|| IvmError::Checkpoint("truncated view".to_string()))?;
            if line == "endview" {
                break;
            }
            let rest = line
                .strip_prefix("rel ")
                .ok_or_else(|| IvmError::Checkpoint(format!("expected `rel`, got {line:?}")))?;
            let (rel, kind) = rest
                .rsplit_once(' ')
                .ok_or_else(|| IvmError::Checkpoint(format!("bad rel header {rest:?}")))?;
            let counting = match kind {
                "counting" => true,
                "set" => false,
                other => return Err(IvmError::Checkpoint(format!("bad rel kind {other:?}"))),
            };
            let mut rows = Relation::new();
            let mut row_counts: BTreeMap<Vec<Value>, u64> = BTreeMap::new();
            loop {
                let line = lines
                    .next()
                    .ok_or_else(|| IvmError::Checkpoint("truncated relation".to_string()))?;
                if line == "endrel" {
                    break;
                }
                let (count_s, fact_s) = line
                    .split_once(' ')
                    .ok_or_else(|| IvmError::Checkpoint(format!("bad fact line {line:?}")))?;
                let count: u64 = count_s
                    .parse()
                    .map_err(|_| IvmError::Checkpoint(format!("bad count {count_s:?}")))?;
                let clause = parse_clause(fact_s, universe)
                    .map_err(|e| IvmError::Checkpoint(format!("{rel}: {e}")))?;
                let Clause::Fact(fname, row) = clause else {
                    return Err(IvmError::Checkpoint(format!(
                        "expected a fact clause in {rel}"
                    )));
                };
                if fname != rel {
                    return Err(IvmError::Checkpoint(format!(
                        "fact for {fname:?} inside relation {rel:?}"
                    )));
                }
                if counting {
                    row_counts.insert(row.clone(), count);
                }
                rows.insert(row);
            }
            state.insert(rel.to_string(), rows);
            if counting {
                counts.insert(rel.to_string(), row_counts);
            }
        }
        // relations the program declares but the checkpoint omitted
        // (empty at save time) come back empty
        for rel in program.idb.keys() {
            state.entry(rel.clone()).or_default();
        }
        let view = MaintainedView {
            name: name.clone(),
            source,
            program,
            plan,
            state,
            counts,
            stats: ViewStats::default(),
        };
        reg.views.insert(name, view);
    }
    Ok(reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{Governor, Instance, RelationSchema, Type, Value};

    fn setup() -> (Universe, Instance) {
        let mut u = Universe::new();
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let mut inst = Instance::empty(schema);
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            let row = vec![Value::Atom(u.intern(a)), Value::Atom(u.intern(b))];
            inst.insert("G", row);
        }
        (u, inst)
    }

    const TC_SRC: &str = "rel tc(U, U).\n\
        tc(x, y) :- G(x, y).\n\
        tc(x, y) :- tc(x, z), G(z, y).\n";

    const HOP_SRC: &str = "rel hop(U, U).\nhop(x, z) :- G(x, y), G(y, z).\n";

    #[test]
    fn round_trips_sets_and_counts() {
        let (mut u, inst) = setup();
        let gov = Governor::unlimited();
        let mut reg = ViewRegistry::new();
        reg.materialize("paths", TC_SRC, &mut u, &inst, &gov)
            .unwrap();
        reg.materialize("hops", HOP_SRC, &mut u, &inst, &gov)
            .unwrap();
        let body = encode_registry(&reg, &u);

        // decode into a FRESH universe: atom ids may differ, names decide
        let mut u2 = Universe::new();
        // rebuild the instance in the fresh universe so values compare
        let schema = inst.schema().clone();
        let mut inst2 = Instance::empty(schema.clone());
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            let row = vec![Value::Atom(u2.intern(a)), Value::Atom(u2.intern(b))];
            inst2.insert("G", row);
        }
        let reg2 = decode_registry(&body, &mut u2, &schema).unwrap();
        assert_eq!(reg2.len(), 2);
        // the restored states equal a fresh materialization
        let mut fresh = ViewRegistry::new();
        fresh
            .materialize("paths", TC_SRC, &mut u2, &inst2, &gov)
            .unwrap();
        fresh
            .materialize("hops", HOP_SRC, &mut u2, &inst2, &gov)
            .unwrap();
        for name in ["paths", "hops"] {
            let a = reg2.get(name).unwrap();
            let b = fresh.get(name).unwrap();
            for (rel, rows) in a.relations() {
                assert_eq!(Some(rows), b.relation(rel), "{name}.{rel}");
            }
            assert_eq!(a.counts, b.counts, "{name} counts");
        }
    }

    #[test]
    fn corrupt_bodies_are_rejected_not_misread() {
        let (mut u, inst) = setup();
        let gov = Governor::unlimited();
        let mut reg = ViewRegistry::new();
        reg.materialize("hops", HOP_SRC, &mut u, &inst, &gov)
            .unwrap();
        let body = encode_registry(&reg, &u);
        let schema = inst.schema().clone();

        // truncation anywhere inside the body fails cleanly
        let mut u2 = Universe::new();
        assert!(matches!(
            decode_registry(&body[..body.len() / 2], &mut u2, &schema),
            Err(IvmError::Checkpoint(_))
        ));
        // bad magic
        assert!(matches!(
            decode_registry(b"not a checkpoint", &mut u2, &schema),
            Err(IvmError::Checkpoint(_))
        ));
    }
}
