//! The maintenance engine: materialized views kept consistent under
//! base-table deltas.
//!
//! A [`MaintainedView`] is a stratified Datalog¬ program evaluated to
//! its perfect model and stored relation-by-relation. Maintenance
//! processes a [`BaseDelta`] stratum-by-stratum using the strategy the
//! planner assigned (`no_plan::plan_maintenance`):
//!
//! * **counting** (non-recursive strata): per-fact derivation counts,
//!   updated by the exact telescoping sum `Σ_ℓ new…Δ_ℓ…old` over the
//!   body positions. A fact dies when its count reaches zero; no
//!   re-derivation pass is ever needed.
//! * **DRed** (recursive strata): over-delete every fact with a
//!   derivation touching the deletions, re-derive over-deleted facts
//!   with a surviving alternative proof, then propagate insertions
//!   semi-naively.
//!
//! [`ViewRegistry::maintain`] is transactional per call: every view's
//! new state is computed on a scratch copy and committed only after all
//! views succeed, so a governor trip mid-maintenance leaves every view
//! consistent with the *pre-delta* instance (and therefore recoverable
//! by re-running maintenance or recomputing).

use crate::delta::{BaseDelta, ViewDelta};
use crate::error::IvmError;
use crate::fire::{derives, for_each_firing, IndexCache, Phase, Pin, StateFetch};
use no_datalog::{parse_program, Literal, Program, Rule};
use no_object::{Governor, Instance, Relation, ResourceError, Universe, Value};
use no_plan::{plan_maintenance, MaintenancePlan, MaintenanceStrategy, StratumPlan};
use std::collections::{BTreeMap, BTreeSet};

/// Per-view maintenance accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Maintenance rounds this view has been through.
    pub maintain_calls: u64,
    /// Governor steps spent on this view across all maintenance calls
    /// (initial materialization included).
    pub steps_total: u64,
    /// Governor steps the most recent materialize/maintain call spent.
    pub steps_last: u64,
}

/// One materialized view: a stratified program, its stored relations,
/// and (for counting strata) per-fact derivation counts.
#[derive(Clone, Debug)]
pub struct MaintainedView {
    pub(crate) name: String,
    pub(crate) source: String,
    pub(crate) program: Program,
    pub(crate) plan: MaintenancePlan,
    pub(crate) state: BTreeMap<String, Relation>,
    pub(crate) counts: BTreeMap<String, BTreeMap<Vec<Value>, u64>>,
    pub(crate) stats: ViewStats,
}

impl MaintainedView {
    /// The view's name (the registry key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The Datalog¬ source text the view was defined with.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// One maintained relation, or `None` if the program does not
    /// define it.
    pub fn relation(&self, rel: &str) -> Option<&Relation> {
        self.state.get(rel)
    }

    /// All maintained relations, name-sorted.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.state.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Maintenance accounting.
    pub fn stats(&self) -> &ViewStats {
        &self.stats
    }

    /// Per-stratum strategy summary (from the maintenance plan).
    pub fn strategy_notes(&self) -> Vec<String> {
        self.plan.notes()
    }

    fn rules_for_stratum(&self, stratum: &StratumPlan) -> Vec<&Rule> {
        let rels: BTreeSet<&str> = stratum.relations.iter().map(String::as_str).collect();
        self.program
            .rules
            .iter()
            .filter(|r| rels.contains(r.head.as_str()))
            .collect()
    }
}

/// The set of live views, maintained together against one base
/// instance.
#[derive(Clone, Debug, Default)]
pub struct ViewRegistry {
    pub(crate) views: BTreeMap<String, MaintainedView>,
}

// ---------------------------------------------------------------------------
// state resolution
// ---------------------------------------------------------------------------

/// Phase-resolved state for one stratum's maintenance: base relations
/// come from the pre-delta instance plus materialized mid/new variants,
/// lower-stratum view relations from the old/mid/new view states, and
/// same-stratum relations from the frozen old view state plus a small
/// mutation `overlay` (removed, added) the DRed phases grow — never a
/// full working copy. Probes go through a per-call [`IndexCache`];
/// keeping the indexed snapshot frozen and layering the overlay on top
/// is what lets one index serve every round of the call.
struct MaintCtx<'a> {
    base_old: &'a Instance,
    base_mid: &'a BTreeMap<String, Relation>,
    base_new: &'a BTreeMap<String, Relation>,
    view_old: &'a BTreeMap<String, Relation>,
    view_new: &'a BTreeMap<String, Relation>,
    view_mid: BTreeMap<String, Relation>,
    stratum_rels: BTreeSet<String>,
    /// Same-stratum working state as a diff against `view_old`:
    /// `name → (removed, added)`, both disjoint from each other.
    overlay: BTreeMap<String, (Relation, Relation)>,
    cache: IndexCache,
}

impl MaintCtx<'_> {
    /// Is `row` in the working state of same-stratum relation `name`?
    fn stratum_contains(&self, name: &str, row: &[Value]) -> bool {
        let old = self.view_old[name].contains(row);
        match self.overlay.get(name) {
            Some((removed, added)) => {
                if old {
                    !removed.contains(row)
                } else {
                    added.contains(row)
                }
            }
            None => old,
        }
    }

    /// Remove `row` from the working state of `name`.
    fn stratum_remove(&mut self, name: &str, row: &[Value]) {
        let old = &self.view_old[name];
        let (removed, added) = self.overlay.entry(name.to_string()).or_default();
        if !added.remove(row) && old.contains(row) {
            removed.insert(row.to_vec());
        }
    }

    /// Insert `row` into the working state of `name`.
    fn stratum_insert(&mut self, name: &str, row: Vec<Value>) {
        let old = &self.view_old[name];
        let (removed, added) = self.overlay.entry(name.to_string()).or_default();
        if !removed.remove(&row) && !old.contains(&row) {
            added.insert(row);
        }
    }
}

impl StateFetch for MaintCtx<'_> {
    fn rel(&self, name: &str, phase: Phase) -> &Relation {
        if self.stratum_rels.contains(name) {
            // the frozen snapshot; working-state reads go through
            // `probe` / `stratum_contains`, which layer the overlay.
            // Direct `rel` reads of same-stratum relations only occur
            // before any overlay mutation (phase-1 seeds) and for
            // negation, which stratification keeps off this stratum.
            return &self.view_old[name];
        }
        if let Some(old) = self.view_old.get(name) {
            return match phase {
                Phase::Old => old,
                Phase::Mid => self.view_mid.get(name).unwrap_or(old),
                Phase::New => self.view_new.get(name).unwrap_or(old),
            };
        }
        match phase {
            Phase::Old => self.base_old.relation(name),
            Phase::Mid => self
                .base_mid
                .get(name)
                .unwrap_or_else(|| self.base_old.relation(name)),
            Phase::New => self
                .base_new
                .get(name)
                .unwrap_or_else(|| self.base_old.relation(name)),
        }
    }

    fn probe(
        &self,
        name: &str,
        phase: Phase,
        positions: &[usize],
        key: &[Value],
        gov: &Governor,
        each: &mut dyn FnMut(&Vec<Value>) -> Result<bool, ResourceError>,
    ) -> Result<(), ResourceError> {
        if !self.stratum_rels.contains(name) {
            return self.cache.probe(
                self.rel(name, phase),
                name,
                phase,
                positions,
                key,
                gov,
                each,
            );
        }
        // same-stratum: probe the frozen snapshot (indexable once for
        // the whole call, any phase) and layer the overlay on top —
        // skip removed rows, then walk the small added set
        let old = &self.view_old[name];
        let Some((removed, added)) = self.overlay.get(name) else {
            return self
                .cache
                .probe(old, name, Phase::Old, positions, key, gov, each);
        };
        let mut stopped = false;
        self.cache
            .probe(old, name, Phase::Old, positions, key, gov, &mut |row| {
                if removed.contains(row) {
                    return Ok(true);
                }
                let keep = each(row)?;
                if !keep {
                    stopped = true;
                }
                Ok(keep)
            })?;
        if !stopped {
            for row in added.iter() {
                if positions.iter().zip(key).all(|(&p, v)| &row[p] == v) {
                    gov.tick("ivm.fire")?;
                    if !each(row)? {
                        break;
                    }
                }
            }
        }
        Ok(())
    }
}

/// State resolution for initial materialization: a single phase —
/// base relations from the instance, view relations (this stratum's
/// and lower ones') from the growing state map. Rebuilt per round, so
/// its probe cache needs no versioning.
struct InitCtx<'a> {
    instance: &'a Instance,
    state: &'a BTreeMap<String, Relation>,
    cache: IndexCache,
}

impl StateFetch for InitCtx<'_> {
    fn rel(&self, name: &str, _phase: Phase) -> &Relation {
        self.state
            .get(name)
            .unwrap_or_else(|| self.instance.relation(name))
    }

    fn probe(
        &self,
        name: &str,
        phase: Phase,
        positions: &[usize],
        key: &[Value],
        gov: &Governor,
        each: &mut dyn FnMut(&Vec<Value>) -> Result<bool, ResourceError>,
    ) -> Result<(), ResourceError> {
        self.cache.probe(
            self.rel(name, phase),
            name,
            Phase::Old,
            positions,
            key,
            gov,
            each,
        )
    }
}

/// External (non-same-stratum) add/del rows visible to a stratum.
type ExtDeltas = BTreeMap<String, (Relation, Relation)>;

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

impl ViewRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ViewRegistry::default()
    }

    /// Number of live views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when no view is materialized.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The view names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.views.keys().map(String::as_str)
    }

    /// Look up a view.
    pub fn get(&self, name: &str) -> Option<&MaintainedView> {
        self.views.get(name)
    }

    /// Drop a view; returns whether it existed.
    pub fn drop_view(&mut self, name: &str) -> bool {
        self.views.remove(name).is_some()
    }

    /// Define (or replace) a view from Datalog¬ source text and
    /// materialize it against `instance`. Constants in the source are
    /// interned into `universe`. Returns the materialized view.
    pub fn materialize(
        &mut self,
        name: &str,
        source: &str,
        universe: &mut Universe,
        instance: &Instance,
        gov: &Governor,
    ) -> Result<&MaintainedView, IvmError> {
        let program =
            parse_program(source, universe).map_err(|e| IvmError::Parse(e.to_string()))?;
        self.materialize_program(name, source.to_string(), program, instance, gov)
    }

    /// [`ViewRegistry::materialize`] with an already-parsed program.
    /// `source` is kept for checkpointing and must re-parse to the same
    /// program (use the original text, or `program.to_string()` for
    /// constant-free programs).
    pub fn materialize_program(
        &mut self,
        name: &str,
        source: String,
        program: Program,
        instance: &Instance,
        gov: &Governor,
    ) -> Result<&MaintainedView, IvmError> {
        let plan = plan_maintenance(instance.schema(), None, &program).map_err(IvmError::Plan)?;
        let before = gov.steps_spent();
        let (state, counts) = full_eval(&program, &plan, instance, gov)?;
        let spent = gov.steps_spent() - before;
        let view = MaintainedView {
            name: name.to_string(),
            source,
            program,
            plan,
            state,
            counts,
            stats: ViewStats {
                maintain_calls: 0,
                steps_total: spent,
                steps_last: spent,
            },
        };
        self.views.insert(name.to_string(), view);
        Ok(&self.views[name])
    }

    /// Maintain every view against `delta`, where `instance` is the
    /// **pre-delta** base state (apply the delta to the instance after
    /// this call, or before — the engine never reads it post-delta).
    ///
    /// Transactional: on error (e.g. a governor trip) no view has been
    /// modified. On success, returns each view's net change.
    pub fn maintain(
        &mut self,
        instance: &Instance,
        delta: &BaseDelta,
        gov: &Governor,
    ) -> Result<BTreeMap<String, ViewDelta>, IvmError> {
        let delta = delta.clone().normalize(instance);
        let mut out = BTreeMap::new();
        if delta.is_empty() {
            for (name, view) in &mut self.views {
                view.stats.maintain_calls += 1;
                view.stats.steps_last = 0;
                out.insert(name.clone(), ViewDelta::new());
            }
            return Ok(out);
        }
        // materialize the base mid/new phases once, shared by all views
        let mut base_mid = BTreeMap::new();
        let mut base_new = BTreeMap::new();
        for rel in delta.add.keys().chain(delta.del.keys()) {
            if base_new.contains_key(rel) {
                continue;
            }
            let mut mid = instance.relation(rel).clone();
            if let Some(del) = delta.del.get(rel) {
                for row in del.iter() {
                    mid.remove(row);
                }
            }
            let mut new = mid.clone();
            if let Some(add) = delta.add.get(rel) {
                new.absorb(add);
            }
            base_mid.insert(rel.clone(), mid);
            base_new.insert(rel.clone(), new);
        }
        // compute every view's exact change before committing any
        let mut staged: Vec<(String, Staged)> = Vec::new();
        for (name, view) in &self.views {
            let before = gov.steps_spent();
            let mut s = maintain_view(view, instance, &delta, &base_mid, &base_new, gov)
                .map_err(IvmError::Resource)?;
            s.steps = gov.steps_spent() - before;
            staged.push((name.clone(), s));
        }
        for (name, s) in staged {
            let view = self.views.get_mut(&name).expect("staged from this map");
            let mut vdelta = ViewDelta::new();
            for (rel, add, del) in s.changes {
                let state = view.state.get_mut(&rel).expect("declared IDB");
                for row in del.iter() {
                    state.remove(row);
                }
                for row in add.iter() {
                    state.insert(row.clone());
                }
                if !add.is_empty() {
                    vdelta.add.insert(rel.clone(), add);
                }
                if !del.is_empty() {
                    vdelta.del.insert(rel, del);
                }
            }
            for (rel, fact, count) in s.count_updates {
                let counts = view.counts.entry(rel).or_default();
                if count == 0 {
                    counts.remove(&fact);
                } else {
                    counts.insert(fact, count);
                }
            }
            view.stats.maintain_calls += 1;
            view.stats.steps_total += s.steps;
            view.stats.steps_last = s.steps;
            out.insert(name, vdelta);
        }
        Ok(out)
    }

    /// Re-materialize every view from scratch (recovery fallback when a
    /// checkpoint is missing or stale beyond the WAL tail).
    pub fn recompute_all(&mut self, instance: &Instance, gov: &Governor) -> Result<(), IvmError> {
        let names: Vec<String> = self.views.keys().cloned().collect();
        for name in names {
            let view = &self.views[&name];
            let (source, program) = (view.source.clone(), view.program.clone());
            self.materialize_program(&name, source, program, instance, gov)?;
        }
        Ok(())
    }
}

/// A view's fully computed post-delta change, awaiting commit: exact
/// per-relation (add, del) row sets plus counting updates — O(change),
/// never a copy of the whole view.
struct Staged {
    changes: Vec<(String, Relation, Relation)>,
    count_updates: Vec<(String, Vec<Value>, u64)>,
    steps: u64,
}

// ---------------------------------------------------------------------------
// full evaluation (initial materialization)
// ---------------------------------------------------------------------------

/// Evaluate the program to its perfect model, stratum by stratum,
/// producing derivation counts for counting strata.
#[allow(clippy::type_complexity)]
fn full_eval(
    program: &Program,
    plan: &MaintenancePlan,
    instance: &Instance,
    gov: &Governor,
) -> Result<
    (
        BTreeMap<String, Relation>,
        BTreeMap<String, BTreeMap<Vec<Value>, u64>>,
    ),
    IvmError,
> {
    let mut state: BTreeMap<String, Relation> = BTreeMap::new();
    for name in program.idb.keys() {
        state.insert(name.clone(), Relation::new());
    }
    let mut counts: BTreeMap<String, BTreeMap<Vec<Value>, u64>> = BTreeMap::new();
    for stratum in &plan.strata {
        let rels: BTreeSet<&str> = stratum.relations.iter().map(String::as_str).collect();
        let rules: Vec<&Rule> = program
            .rules
            .iter()
            .filter(|r| rels.contains(r.head.as_str()))
            .collect();
        match stratum.strategy {
            MaintenanceStrategy::Counting => {
                let mut local: BTreeMap<String, BTreeMap<Vec<Value>, u64>> = BTreeMap::new();
                {
                    let ctx = InitCtx {
                        instance,
                        state: &state,
                        cache: IndexCache::new(),
                    };
                    for rule in &rules {
                        let head = rule.head.clone();
                        let arity = rule.head_args.len() as u64;
                        let entry = local.entry(head).or_default();
                        for_each_firing(rule, None, &|_| Phase::Old, &ctx, gov, &mut |row| {
                            gov.charge_mem("ivm.derive", 8 * arity)?;
                            *entry.entry(row).or_insert(0) += 1;
                            Ok(true)
                        })
                        .map_err(IvmError::Resource)?;
                    }
                }
                for name in &stratum.relations {
                    let facts = local.remove(name).unwrap_or_default();
                    let rel: Relation = facts.keys().cloned().collect();
                    state.insert(name.clone(), rel);
                    counts.insert(name.clone(), facts);
                }
            }
            MaintenanceStrategy::DRed => {
                // semi-naive to fixpoint; no counts for recursive strata
                let mut round: u64 = 0;
                let mut frontier: BTreeMap<String, Relation> = BTreeMap::new();
                // round 0: all rules, same-stratum relations empty
                {
                    let ctx = InitCtx {
                        instance,
                        state: &state,
                        cache: IndexCache::new(),
                    };
                    for rule in &rules {
                        let head = rule.head.clone();
                        let arity = rule.head_args.len() as u64;
                        let entry = frontier.entry(head).or_default();
                        for_each_firing(rule, None, &|_| Phase::Old, &ctx, gov, &mut |row| {
                            gov.charge_mem("ivm.derive", 8 * arity)?;
                            entry.insert(row);
                            Ok(true)
                        })
                        .map_err(IvmError::Resource)?;
                    }
                }
                loop {
                    round += 1;
                    gov.check_iters("ivm.round", round)
                        .map_err(IvmError::Resource)?;
                    // absorb the frontier
                    let mut grew = false;
                    for (name, rows) in &frontier {
                        let rel = state.get_mut(name).expect("declared IDB");
                        for row in rows.iter() {
                            grew |= rel.insert(row.clone());
                        }
                    }
                    if !grew {
                        break;
                    }
                    let mut next: BTreeMap<String, Relation> = BTreeMap::new();
                    {
                        let ctx = InitCtx {
                            instance,
                            state: &state,
                            cache: IndexCache::new(),
                        };
                        for rule in &rules {
                            for (idx, lit) in rule.body.iter().enumerate() {
                                let Literal::Pos(name, _) = lit else { continue };
                                if !rels.contains(name.as_str()) {
                                    continue;
                                }
                                let Some(delta_rows) = frontier.get(name) else {
                                    continue;
                                };
                                if delta_rows.is_empty() {
                                    continue;
                                }
                                let pin = Pin {
                                    lit: idx,
                                    rows: delta_rows,
                                };
                                let head = rule.head.clone();
                                let arity = rule.head_args.len() as u64;
                                let already = &state[&head];
                                let entry = next.entry(head.clone()).or_default();
                                for_each_firing(
                                    rule,
                                    Some(&pin),
                                    &|_| Phase::Old,
                                    &ctx,
                                    gov,
                                    &mut |row| {
                                        if !already.contains(&row) {
                                            gov.charge_mem("ivm.derive", 8 * arity)?;
                                            entry.insert(row);
                                        }
                                        Ok(true)
                                    },
                                )
                                .map_err(IvmError::Resource)?;
                            }
                        }
                    }
                    // drop rows already absorbed
                    for (name, rows) in &mut next {
                        let have = &state[name];
                        *rows = rows.iter().filter(|r| !have.contains(r)).cloned().collect();
                    }
                    next.retain(|_, r| !r.is_empty());
                    if next.is_empty() {
                        break;
                    }
                    frontier = next;
                }
            }
        }
    }
    Ok((state, counts))
}

// ---------------------------------------------------------------------------
// maintenance
// ---------------------------------------------------------------------------

/// Compute `view`'s exact post-delta change, stratum by stratum. Only
/// the changed rows are materialized (plus, for multi-stratum views,
/// the new state of changed relations that later strata read); the
/// caller commits.
fn maintain_view(
    view: &MaintainedView,
    instance: &Instance,
    delta: &BaseDelta,
    base_mid: &BTreeMap<String, Relation>,
    base_new: &BTreeMap<String, Relation>,
    gov: &Governor,
) -> Result<Staged, ResourceError> {
    let mut changes: Vec<(String, Relation, Relation)> = Vec::new();
    let mut count_updates: Vec<(String, Vec<Value>, u64)> = Vec::new();
    // new states of already-maintained view relations, for upper
    // strata's Phase::New reads; unchanged relations fall back to old
    let mut view_new: BTreeMap<String, Relation> = BTreeMap::new();
    // external deltas visible to upper strata: base mutations plus the
    // view-relation changes computed so far in this call
    let mut ext: ExtDeltas = BTreeMap::new();
    for (rel, rows) in &delta.add {
        ext.entry(rel.clone()).or_default().0 = rows.clone();
    }
    for (rel, rows) in &delta.del {
        ext.entry(rel.clone()).or_default().1 = rows.clone();
    }
    let n_strata = view.plan.strata.len();
    for (si, stratum) in view.plan.strata.iter().enumerate() {
        let rules = view.rules_for_stratum(stratum);
        // does any rule read a changed external relation?
        let touched = rules.iter().any(|r| {
            r.body.iter().any(|l| match l {
                Literal::Pos(name, _) | Literal::Neg(name, _) => ext
                    .get(name)
                    .is_some_and(|(a, d)| !a.is_empty() || !d.is_empty()),
                _ => false,
            })
        });
        if !touched {
            continue;
        }
        let stratum_rels: BTreeSet<String> = stratum.relations.iter().cloned().collect();
        let mut view_mid = BTreeMap::new();
        for (rel, (_, del)) in &ext {
            if view.state.contains_key(rel) && !del.is_empty() {
                let mut mid = view.state[rel].clone();
                for row in del.iter() {
                    mid.remove(row);
                }
                view_mid.insert(rel.clone(), mid);
            }
        }
        let mut ctx = MaintCtx {
            base_old: instance,
            base_mid,
            base_new,
            view_old: &view.state,
            view_new: &view_new,
            view_mid,
            overlay: BTreeMap::new(),
            stratum_rels,
            cache: IndexCache::new(),
        };
        let rel_changes = match stratum.strategy {
            MaintenanceStrategy::Counting => {
                let (rels, counts) = maintain_counting(view, stratum, &rules, &ctx, &ext, gov)?;
                count_updates.extend(counts);
                rels
            }
            MaintenanceStrategy::DRed => maintain_dred(stratum, &rules, &mut ctx, &ext, gov)?,
        };
        drop(ctx);
        for (name, (add, del)) in rel_changes {
            if add.is_empty() && del.is_empty() {
                continue;
            }
            if si + 1 < n_strata {
                // later strata read this relation at Phase::New
                let mut new = view.state[&name].clone();
                for row in del.iter() {
                    new.remove(row);
                }
                for row in add.iter() {
                    new.insert(row.clone());
                }
                view_new.insert(name.clone(), new);
            }
            let slot = ext.entry(name.clone()).or_default();
            slot.0 = add.clone();
            slot.1 = del.clone();
            changes.push((name, add, del));
        }
    }
    Ok(Staged {
        changes,
        count_updates,
        steps: 0,
    })
}

/// Counting maintenance for one non-recursive stratum: the signed
/// telescoping sum over body positions, applied to the derivation
/// counts. Returns the stratum's exact per-relation (add, del) change
/// and the count updates to commit — O(change), never a rebuild.
#[allow(clippy::type_complexity)]
fn maintain_counting(
    view: &MaintainedView,
    stratum: &StratumPlan,
    rules: &[&Rule],
    ctx: &MaintCtx<'_>,
    ext: &ExtDeltas,
    gov: &Governor,
) -> Result<
    (
        BTreeMap<String, (Relation, Relation)>,
        Vec<(String, Vec<Value>, u64)>,
    ),
    ResourceError,
> {
    let signed = counting_changes(rules, ctx, ext, gov)?;
    let mut out: BTreeMap<String, (Relation, Relation)> = BTreeMap::new();
    let mut count_updates: Vec<(String, Vec<Value>, u64)> = Vec::new();
    for name in &stratum.relations {
        let counts = view.counts.get(name);
        let (add, del) = out.entry(name.clone()).or_default();
        if let Some(changes) = signed.get(name) {
            for (fact, d) in changes {
                if *d == 0 {
                    continue;
                }
                let cur = counts.and_then(|c| c.get(fact)).copied().unwrap_or(0) as i64;
                let new = cur + d;
                debug_assert!(new >= 0, "derivation count went negative for {name}");
                let new = new.max(0) as u64;
                if cur == 0 && new > 0 {
                    add.insert(fact.clone());
                } else if cur > 0 && new == 0 {
                    del.insert(fact.clone());
                }
                count_updates.push((name.clone(), fact.clone(), new));
            }
        }
    }
    Ok((out, count_updates))
}

/// The signed per-fact derivation-count changes for a set of
/// non-recursive rules under external deltas.
fn counting_changes(
    rules: &[&Rule],
    ctx: &MaintCtx<'_>,
    ext: &ExtDeltas,
    gov: &Governor,
) -> Result<BTreeMap<String, BTreeMap<Vec<Value>, i64>>, ResourceError> {
    let mut signed: BTreeMap<String, BTreeMap<Vec<Value>, i64>> = BTreeMap::new();
    for rule in rules {
        for (idx, lit) in rule.body.iter().enumerate() {
            // literals before the pin read NEW, after it OLD — the
            // telescoping decomposition of (new firings − old firings)
            let phase_of = move |j: usize| if j < idx { Phase::New } else { Phase::Old };
            let pins: Vec<(&Relation, i64)> = match lit {
                Literal::Pos(name, _) => match ext.get(name) {
                    Some((add, del)) => [(add, 1i64), (del, -1i64)].into_iter().collect(),
                    None => continue,
                },
                Literal::Neg(name, _) => match ext.get(name) {
                    // the negation gains del-rows and loses add-rows
                    Some((add, del)) => [(del, 1i64), (add, -1i64)].into_iter().collect(),
                    None => continue,
                },
                _ => continue,
            };
            for (rows, sign) in pins {
                if rows.is_empty() {
                    continue;
                }
                let pin = Pin { lit: idx, rows };
                let entry = signed.entry(rule.head.clone()).or_default();
                for_each_firing(rule, Some(&pin), &phase_of, ctx, gov, &mut |row| {
                    *entry.entry(row).or_insert(0) += sign;
                    Ok(true)
                })?;
            }
        }
    }
    Ok(signed)
}

/// DRed maintenance for one recursive stratum: over-delete →
/// re-derive → insert. Same-stratum working state lives in the
/// context's removed/added overlay against the frozen old view state
/// (so probe indexes over the snapshot survive every round), and the
/// result is the stratum's exact per-relation (add, del) change —
/// O(affected), never a state copy.
fn maintain_dred(
    stratum: &StratumPlan,
    rules: &[&Rule],
    ctx: &mut MaintCtx<'_>,
    ext: &ExtDeltas,
    gov: &Governor,
) -> Result<BTreeMap<String, (Relation, Relation)>, ResourceError> {
    let view_old = ctx.view_old;

    // -- phase 1: over-delete --------------------------------------------
    // seed: derivations that used a deleted external row (or a
    // newly-violated negation); same-stratum reads resolve to the old
    // state (no working copy exists yet)
    let mut overdeleted: BTreeMap<String, Relation> = stratum
        .relations
        .iter()
        .map(|r| (r.clone(), Relation::new()))
        .collect();
    let mut frontier: BTreeMap<String, Relation> = overdeleted.clone();
    for rule in rules {
        for (idx, lit) in rule.body.iter().enumerate() {
            let rows = match lit {
                Literal::Pos(name, _) if !ctx.stratum_rels.contains(name.as_str()) => {
                    match ext.get(name) {
                        Some((_, del)) if !del.is_empty() => del,
                        _ => continue,
                    }
                }
                Literal::Neg(name, _) => match ext.get(name) {
                    Some((add, _)) if !add.is_empty() => add,
                    _ => continue,
                },
                _ => continue,
            };
            let pin = Pin { lit: idx, rows };
            let head = rule.head.clone();
            let alive = &view_old[&head];
            let entry = frontier.get_mut(&head).expect("stratum head");
            for_each_firing(rule, Some(&pin), &|_| Phase::Old, ctx, gov, &mut |row| {
                if alive.contains(&row) {
                    entry.insert(row);
                }
                Ok(true)
            })?;
        }
    }
    let mut round: u64 = 0;
    loop {
        frontier.retain(|_, r| !r.is_empty());
        // keep only facts not already over-deleted
        for (name, rows) in &mut frontier {
            let d = &overdeleted[name];
            *rows = rows.iter().filter(|r| !d.contains(r)).cloned().collect();
        }
        frontier.retain(|_, r| !r.is_empty());
        if frontier.is_empty() {
            break;
        }
        round += 1;
        gov.check_iters("ivm.round", round)?;
        for (name, rows) in &frontier {
            overdeleted.get_mut(name).expect("stratum rel").absorb(rows);
        }
        let mut next: BTreeMap<String, Relation> = BTreeMap::new();
        for rule in rules {
            for (idx, lit) in rule.body.iter().enumerate() {
                let Literal::Pos(name, _) = lit else { continue };
                if !ctx.stratum_rels.contains(name.as_str()) {
                    continue;
                }
                let Some(delta_rows) = frontier.get(name) else {
                    continue;
                };
                if delta_rows.is_empty() {
                    continue;
                }
                let pin = Pin {
                    lit: idx,
                    rows: delta_rows,
                };
                let head = rule.head.clone();
                let alive = &view_old[&head];
                let already = &overdeleted[&head];
                let entry = next.entry(head.clone()).or_default();
                for_each_firing(rule, Some(&pin), &|_| Phase::Old, ctx, gov, &mut |row| {
                    if alive.contains(&row) && !already.contains(&row) {
                        entry.insert(row);
                    }
                    Ok(true)
                })?;
            }
        }
        frontier = next;
    }

    // -- phase 2: re-derive ----------------------------------------------
    // working state: old minus over-deleted, expressed as overlay
    // removals (the frozen snapshot — and its indexes — stay intact);
    // externals read MID
    let mut rederived: BTreeMap<String, Relation> = stratum
        .relations
        .iter()
        .map(|r| (r.clone(), Relation::new()))
        .collect();
    for name in &stratum.relations {
        for row in overdeleted[name].iter() {
            ctx.stratum_remove(name, row);
        }
    }
    let mut round: u64 = 0;
    loop {
        round += 1;
        gov.check_iters("ivm.round", round)?;
        let mut found: Vec<(String, Vec<Value>)> = Vec::new();
        for name in &stratum.relations {
            let dead = &overdeleted[name];
            let back = &rederived[name];
            for fact in dead.iter() {
                if back.contains(fact) {
                    continue;
                }
                for rule in rules.iter().filter(|r| &r.head == name) {
                    if derives(rule, fact, &|_| Phase::Mid, ctx, gov)? {
                        found.push((name.clone(), fact.clone()));
                        break;
                    }
                }
            }
        }
        if found.is_empty() {
            break;
        }
        for (name, fact) in found {
            ctx.stratum_insert(&name, fact.clone());
            rederived.get_mut(&name).expect("stratum rel").insert(fact);
        }
    }

    // -- phase 3: insert propagation -------------------------------------
    // seed: firings that use an added external row (or a newly-satisfied
    // negation), against NEW externals and the current working state
    let mut added: BTreeMap<String, Relation> = stratum
        .relations
        .iter()
        .map(|r| (r.clone(), Relation::new()))
        .collect();
    let mut frontier: BTreeMap<String, Relation> = BTreeMap::new();
    for rule in rules {
        for (idx, lit) in rule.body.iter().enumerate() {
            let rows = match lit {
                Literal::Pos(name, _) if !ctx.stratum_rels.contains(name.as_str()) => {
                    match ext.get(name) {
                        Some((add, _)) if !add.is_empty() => add,
                        _ => continue,
                    }
                }
                Literal::Neg(name, _) => match ext.get(name) {
                    Some((_, del)) if !del.is_empty() => del,
                    _ => continue,
                },
                _ => continue,
            };
            let pin = Pin { lit: idx, rows };
            let head = rule.head.clone();
            let arity = rule.head_args.len() as u64;
            let ctx_ref: &MaintCtx<'_> = ctx;
            let entry = frontier.entry(head.clone()).or_default();
            for_each_firing(
                rule,
                Some(&pin),
                &|_| Phase::New,
                ctx_ref,
                gov,
                &mut |row| {
                    if !ctx_ref.stratum_contains(&head, &row) {
                        gov.charge_mem("ivm.derive", 8 * arity)?;
                        entry.insert(row);
                    }
                    Ok(true)
                },
            )?;
        }
    }
    let mut round: u64 = 0;
    loop {
        frontier.retain(|_, r| !r.is_empty());
        for (name, rows) in &mut frontier {
            *rows = rows
                .iter()
                .filter(|r| !ctx.stratum_contains(name, r))
                .cloned()
                .collect();
        }
        frontier.retain(|_, r| !r.is_empty());
        if frontier.is_empty() {
            break;
        }
        round += 1;
        gov.check_iters("ivm.round", round)?;
        for (name, rows) in &frontier {
            for row in rows.iter() {
                ctx.stratum_insert(name, row.clone());
            }
            added.get_mut(name).expect("stratum rel").absorb(rows);
        }
        let mut next: BTreeMap<String, Relation> = BTreeMap::new();
        for rule in rules {
            for (idx, lit) in rule.body.iter().enumerate() {
                let Literal::Pos(name, _) = lit else { continue };
                if !ctx.stratum_rels.contains(name.as_str()) {
                    continue;
                }
                let Some(delta_rows) = frontier.get(name) else {
                    continue;
                };
                if delta_rows.is_empty() {
                    continue;
                }
                let pin = Pin {
                    lit: idx,
                    rows: delta_rows,
                };
                let head = rule.head.clone();
                let arity = rule.head_args.len() as u64;
                let ctx_ref: &MaintCtx<'_> = ctx;
                let entry = next.entry(head.clone()).or_default();
                for_each_firing(
                    rule,
                    Some(&pin),
                    &|_| Phase::New,
                    ctx_ref,
                    gov,
                    &mut |row| {
                        if !ctx_ref.stratum_contains(&head, &row) {
                            gov.charge_mem("ivm.derive", 8 * arity)?;
                            entry.insert(row);
                        }
                        Ok(true)
                    },
                )?;
            }
        }
        frontier = next;
    }

    // -- net change -------------------------------------------------------
    // del = over-deleted, not re-derived, not re-added; add = genuinely
    // new rows (an over-deleted row re-added by an insertion nets out)
    let mut out: BTreeMap<String, (Relation, Relation)> = BTreeMap::new();
    for name in &stratum.relations {
        let old = &view_old[name];
        let adds = &added[name];
        let net_add: Relation = adds.iter().filter(|r| !old.contains(r)).cloned().collect();
        let net_del: Relation = overdeleted[name]
            .iter()
            .filter(|r| !rederived[name].contains(r) && !adds.contains(r))
            .cloned()
            .collect();
        out.insert(name.clone(), (net_add, net_del));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_datalog::eval_stratified;
    use no_object::{RelationSchema, Schema, Type};

    fn graph(edges: &[(&str, &str)]) -> (Universe, Instance) {
        let mut u = Universe::new();
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let mut i = Instance::empty(schema);
        for (a, b) in edges {
            let row = vec![Value::Atom(u.intern(a)), Value::Atom(u.intern(b))];
            i.insert("G", row);
        }
        (u, i)
    }

    fn edge(u: &mut Universe, a: &str, b: &str) -> Vec<Value> {
        vec![Value::Atom(u.intern(a)), Value::Atom(u.intern(b))]
    }

    const TC_SRC: &str = "rel tc(U, U).\n\
        tc(x, y) :- G(x, y).\n\
        tc(x, y) :- tc(x, z), G(z, y).\n";

    const HOP_SRC: &str = "rel hop(U, U).\nhop(x, z) :- G(x, y), G(y, z).\n";

    const UNREACH_SRC: &str = "rel tc(U, U).\nrel node(U).\nrel unreach(U, U).\n\
        node(x) :- G(x, y).\n\
        node(y) :- G(x, y).\n\
        tc(x, y) :- G(x, y).\n\
        tc(x, y) :- tc(x, z), G(z, y).\n\
        unreach(x, y) :- node(x), node(y), !tc(x, y).\n";

    /// The maintained state must equal a from-scratch stratified
    /// evaluation of the same program on the post-delta instance.
    fn assert_matches_recompute(view: &MaintainedView, instance: &Instance) {
        let oracle = eval_stratified(&view.program, instance).unwrap();
        for (rel, rows) in &view.state {
            assert_eq!(
                rows, &oracle[rel],
                "maintained {rel} diverged from recomputation"
            );
        }
    }

    #[test]
    fn maintained_tc_tracks_inserts_and_deletes() {
        let (mut u, mut inst) = graph(&[("a", "b"), ("b", "c")]);
        let gov = Governor::unlimited();
        let mut reg = ViewRegistry::new();
        reg.materialize("v", TC_SRC, &mut u, &inst, &gov).unwrap();
        assert_matches_recompute(reg.get("v").unwrap(), &inst);

        // insert c→d: paths extend
        let mut d = BaseDelta::new();
        d.insert("G", edge(&mut u, "c", "d"));
        let deltas = reg.maintain(&inst, &d, &gov).unwrap();
        d.apply(&mut inst);
        assert_matches_recompute(reg.get("v").unwrap(), &inst);
        assert!(deltas["v"].add["tc"].contains(&edge(&mut u, "a", "d")));

        // delete the middle edge: most paths die
        let mut d = BaseDelta::new();
        d.delete("G", edge(&mut u, "b", "c"));
        let deltas = reg.maintain(&inst, &d, &gov).unwrap();
        d.apply(&mut inst);
        assert_matches_recompute(reg.get("v").unwrap(), &inst);
        assert!(deltas["v"].del["tc"].contains(&edge(&mut u, "a", "c")));
    }

    #[test]
    fn dred_keeps_facts_with_alternative_derivations() {
        // two paths a→…→d; deleting one keeps tc(a, d)
        let (mut u, mut inst) = graph(&[("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]);
        let gov = Governor::unlimited();
        let mut reg = ViewRegistry::new();
        reg.materialize("v", TC_SRC, &mut u, &inst, &gov).unwrap();
        let mut d = BaseDelta::new();
        d.delete("G", edge(&mut u, "b", "d"));
        let deltas = reg.maintain(&inst, &d, &gov).unwrap();
        d.apply(&mut inst);
        let ad = edge(&mut u, "a", "d");
        assert!(reg.get("v").unwrap().relation("tc").unwrap().contains(&ad));
        assert!(!deltas["v"].del.contains_key("tc") || !deltas["v"].del["tc"].contains(&ad));
        assert_matches_recompute(reg.get("v").unwrap(), &inst);
    }

    #[test]
    fn dred_never_resurrects_a_sole_derivation() {
        let (mut u, mut inst) = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let gov = Governor::unlimited();
        let mut reg = ViewRegistry::new();
        reg.materialize("v", TC_SRC, &mut u, &inst, &gov).unwrap();
        // the cycle supports everything; cutting it kills the whole closure
        let mut d = BaseDelta::new();
        d.delete("G", edge(&mut u, "c", "a"));
        reg.maintain(&inst, &d, &gov).unwrap();
        d.apply(&mut inst);
        assert_matches_recompute(reg.get("v").unwrap(), &inst);
        let tc = reg.get("v").unwrap().relation("tc").unwrap();
        assert!(
            !tc.contains(&edge(&mut u, "c", "b")),
            "resurrected via dead cycle"
        );
    }

    #[test]
    fn counting_survives_shared_support() {
        // hop(a, c) has two witnesses (via b1 and b2); deleting one keeps it
        let (mut u, mut inst) = graph(&[("a", "b1"), ("b1", "c"), ("a", "b2"), ("b2", "c")]);
        let gov = Governor::unlimited();
        let mut reg = ViewRegistry::new();
        reg.materialize("v", HOP_SRC, &mut u, &inst, &gov).unwrap();
        let ac = edge(&mut u, "a", "c");
        assert_eq!(reg.get("v").unwrap().counts["hop"][&ac], 2);

        let mut d = BaseDelta::new();
        d.delete("G", edge(&mut u, "a", "b1"));
        let deltas = reg.maintain(&inst, &d, &gov).unwrap();
        d.apply(&mut inst);
        assert!(deltas["v"].is_empty() || !deltas["v"].del.contains_key("hop"));
        assert!(reg.get("v").unwrap().relation("hop").unwrap().contains(&ac));
        assert_eq!(reg.get("v").unwrap().counts["hop"][&ac], 1);
        assert_matches_recompute(reg.get("v").unwrap(), &inst);

        // deleting the second witness kills the fact
        let mut d = BaseDelta::new();
        d.delete("G", edge(&mut u, "a", "b2"));
        let deltas = reg.maintain(&inst, &d, &gov).unwrap();
        d.apply(&mut inst);
        assert!(deltas["v"].del["hop"].contains(&ac));
        assert_matches_recompute(reg.get("v").unwrap(), &inst);
    }

    #[test]
    fn stratified_negation_views_maintain_exactly() {
        let (mut u, mut inst) = graph(&[("a", "b"), ("b", "c")]);
        let gov = Governor::unlimited();
        let mut reg = ViewRegistry::new();
        reg.materialize("v", UNREACH_SRC, &mut u, &inst, &gov)
            .unwrap();
        assert_matches_recompute(reg.get("v").unwrap(), &inst);

        // closing the cycle makes everything reachable
        let mut d = BaseDelta::new();
        d.insert("G", edge(&mut u, "c", "a"));
        reg.maintain(&inst, &d, &gov).unwrap();
        d.apply(&mut inst);
        assert_matches_recompute(reg.get("v").unwrap(), &inst);

        // and cutting it back restores unreachability
        let mut d = BaseDelta::new();
        d.delete("G", edge(&mut u, "b", "c"));
        d.insert("G", edge(&mut u, "c", "c"));
        reg.maintain(&inst, &d, &gov).unwrap();
        d.apply(&mut inst);
        assert_matches_recompute(reg.get("v").unwrap(), &inst);
    }

    #[test]
    fn mixed_batches_with_cancellation_maintain_exactly() {
        let (mut u, mut inst) = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]);
        let gov = Governor::unlimited();
        let mut reg = ViewRegistry::new();
        reg.materialize("t", TC_SRC, &mut u, &inst, &gov).unwrap();
        reg.materialize("h", HOP_SRC, &mut u, &inst, &gov).unwrap();
        let mut d = BaseDelta::new();
        d.delete("G", edge(&mut u, "b", "c"));
        d.insert("G", edge(&mut u, "b", "d"));
        d.insert("G", edge(&mut u, "e", "a"));
        d.delete("G", edge(&mut u, "e", "a")); // cancels in-batch
        reg.maintain(&inst, &d, &gov).unwrap();
        d.apply(&mut inst);
        assert_matches_recompute(reg.get("t").unwrap(), &inst);
        assert_matches_recompute(reg.get("h").unwrap(), &inst);
    }

    #[test]
    fn governor_trip_rolls_back_cleanly() {
        let (mut u, mut inst) = graph(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let gov = Governor::unlimited();
        let mut reg = ViewRegistry::new();
        reg.materialize("v", TC_SRC, &mut u, &inst, &gov).unwrap();
        let before: BTreeMap<String, Relation> = reg.get("v").unwrap().state.clone();

        let tight = Governor::new(no_object::Limits {
            max_steps: 3,
            ..no_object::Limits::unlimited()
        });
        let mut d = BaseDelta::new();
        d.insert("G", edge(&mut u, "d", "e"));
        let err = reg.maintain(&inst, &d, &tight).unwrap_err();
        assert!(matches!(err, IvmError::Resource(_)));
        // nothing committed: the view still matches the PRE-delta base
        assert_eq!(reg.get("v").unwrap().state, before);

        // and a retry with budget succeeds from the consistent state
        reg.maintain(&inst, &d, &gov).unwrap();
        d.apply(&mut inst);
        assert_matches_recompute(reg.get("v").unwrap(), &inst);
    }

    #[test]
    fn maintenance_steps_are_accounted_per_view() {
        let (mut u, mut inst) = graph(&[("a", "b"), ("b", "c")]);
        let gov = Governor::unlimited();
        let mut reg = ViewRegistry::new();
        reg.materialize("v", TC_SRC, &mut u, &inst, &gov).unwrap();
        let after_mat = reg.get("v").unwrap().stats.clone();
        assert!(after_mat.steps_total > 0, "materialization charges steps");

        let mut d = BaseDelta::new();
        d.insert("G", edge(&mut u, "c", "d"));
        reg.maintain(&inst, &d, &gov).unwrap();
        d.apply(&mut inst);
        let s = reg.get("v").unwrap().stats.clone();
        assert_eq!(s.maintain_calls, 1);
        assert!(s.steps_last > 0);
        assert_eq!(s.steps_total, after_mat.steps_total + s.steps_last);
    }

    #[test]
    fn untouched_views_skip_work() {
        let mut u = Universe::new();
        let schema = Schema::from_relations([
            RelationSchema::new("G", vec![Type::Atom, Type::Atom]),
            RelationSchema::new("H", vec![Type::Atom, Type::Atom]),
        ]);
        let mut inst = Instance::empty(schema);
        inst.insert(
            "G",
            vec![Value::Atom(u.intern("a")), Value::Atom(u.intern("b"))],
        );
        let gov = Governor::unlimited();
        let mut reg = ViewRegistry::new();
        reg.materialize("v", TC_SRC, &mut u, &inst, &gov).unwrap();
        // a delta on H cannot touch a view over G
        let mut d = BaseDelta::new();
        d.insert(
            "H",
            vec![Value::Atom(u.intern("x")), Value::Atom(u.intern("y"))],
        );
        let deltas = reg.maintain(&inst, &d, &gov).unwrap();
        assert!(deltas["v"].is_empty());
        assert_eq!(reg.get("v").unwrap().stats.steps_last, 0);
    }
}
