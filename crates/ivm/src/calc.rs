//! CALC views: convert the maintainable CALC fragment to Datalog¬
//! rules so the one maintenance engine serves both languages.
//!
//! The fragment is exactly what the planner's columnar fast path
//! accepts: flat conjunctive queries (`no_core::decompose`) and
//! disjunctions of them (`no_core::decompose_union`). Each disjunct
//! becomes one rule deriving the same head relation — a non-recursive,
//! negation-free program, so the planner assigns the whole view a
//! single counting stratum and deletions are exact without any
//! re-derivation.

use no_core::conjunctive::{decompose, decompose_union, CArg, ConjunctiveQuery};
use no_core::Query;
use no_datalog::{DTerm, Program};

/// Convert a CALC query in the maintainable fragment to a one-relation
/// Datalog program deriving `name`. Returns `None` outside the
/// fragment (non-flat bodies, negation, head variables not bound by an
/// atom).
pub fn calc_to_program(name: &str, q: &Query) -> Option<Program> {
    let disjuncts: Vec<ConjunctiveQuery> = match decompose(q) {
        Some(cq) => vec![cq],
        None => decompose_union(q)?,
    };
    let types = q.head.iter().map(|(_, t)| t.clone()).collect();
    let mut program = Program::new();
    program.declare(name, types);
    for cq in &disjuncts {
        if cq.unsat {
            continue; // a statically empty disjunct derives nothing
        }
        let arg = |v: &str| -> DTerm {
            match cq.pins.get(v) {
                Some(c) => DTerm::Const(c.clone()),
                None => DTerm::var(v),
            }
        };
        let head_args: Vec<DTerm> = cq.head.iter().map(|v| arg(v)).collect();
        let body = cq
            .atoms
            .iter()
            .map(|(rel, args)| {
                no_datalog::Literal::Pos(
                    rel.clone(),
                    args.iter()
                        .map(|a| match a {
                            CArg::Var(v) => arg(v),
                            CArg::Const(c) => DTerm::Const(c.clone()),
                        })
                        .collect(),
                )
            })
            .collect();
        program.rule(name, head_args.clone(), body);
    }
    Some(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_core::ast::{Formula, Term};
    use no_object::{Type, Universe, Value};

    fn rel(name: &str, vars: [&str; 2]) -> Formula {
        Formula::Rel(
            name.to_string(),
            vars.iter().map(|v| Term::var(*v)).collect(),
        )
    }

    #[test]
    fn conjunctive_query_becomes_one_rule() {
        // q(x, z) :- ∃y. G(x, y) ∧ G(y, z)
        let q = Query::new(
            vec![("x".to_string(), Type::Atom), ("z".to_string(), Type::Atom)],
            Formula::exists(
                "y",
                Type::Atom,
                Formula::And(vec![rel("G", ["x", "y"]), rel("G", ["y", "z"])]),
            ),
        );
        let p = calc_to_program("two_hop", &q).unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].head, "two_hop");
        assert_eq!(p.rules[0].body.len(), 2);
        assert_eq!(p.idb["two_hop"], vec![Type::Atom, Type::Atom]);
    }

    #[test]
    fn disjunction_becomes_one_rule_per_disjunct() {
        // symmetric closure: q(x, y) :- G(x, y) ∨ G(y, x)
        let q = Query::new(
            vec![("x".to_string(), Type::Atom), ("y".to_string(), Type::Atom)],
            Formula::or([rel("G", ["x", "y"]), rel("G", ["y", "x"])]),
        );
        let p = calc_to_program("sym", &q).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules.iter().all(|r| r.head == "sym"));
    }

    #[test]
    fn pinned_constants_become_const_terms() {
        let mut u = Universe::new();
        let a = Value::Atom(u.intern("a"));
        // q(y) :- ∃x. G(x, y) ∧ x = 'a'
        let q = Query::new(
            vec![("y".to_string(), Type::Atom)],
            Formula::exists(
                "x",
                Type::Atom,
                Formula::And(vec![
                    rel("G", ["x", "y"]),
                    Formula::Eq(Term::var("x"), Term::Const(a.clone())),
                ]),
            ),
        );
        let p = calc_to_program("from_a", &q).unwrap();
        assert_eq!(p.rules.len(), 1);
        let no_datalog::Literal::Pos(_, args) = &p.rules[0].body[0] else {
            panic!("expected positive literal");
        };
        assert_eq!(args[0], DTerm::Const(a));
    }

    #[test]
    fn unmaintainable_fragment_is_rejected() {
        // negation is outside the fragment
        let q = Query::new(
            vec![("x".to_string(), Type::Atom), ("y".to_string(), Type::Atom)],
            Formula::And(vec![
                rel("G", ["x", "y"]),
                Formula::Not(Box::new(rel("G", ["y", "x"]))),
            ]),
        );
        assert!(calc_to_program("v", &q).is_none());
    }
}
