//! # `no-ivm` — incremental view maintenance
//!
//! Materialized views over the complex-object database, kept consistent
//! under base-table insertions and deletions without recomputation.
//!
//! A view is a stratified Datalog¬ program (or a CALC query in the
//! maintainable fragment, converted by [`calc_to_program`]) evaluated
//! to its **stratified model** and stored relation-by-relation. The
//! inflationary semantics the paper pairs with `CALC+IFP` is
//! deliberately *not* offered here: a fact an inflationary fixpoint
//! keeps because a negation held *early* has no local justification to
//! retract when that negation later flips, so inflationary views are
//! not incrementally maintainable — stratified ones are.
//!
//! The moving parts (see DESIGN.md §17):
//!
//! * [`BaseDelta`] — a normalized batch of base mutations, the unit of
//!   maintenance work;
//! * `no_plan::plan_maintenance` — strata, Δ-rewritten plans, and the
//!   counting-vs-DRed strategy decision;
//! * [`ViewRegistry`] — materializes views, maintains all of them
//!   transactionally per delta, and reports each view's net
//!   [`ViewDelta`] (what the server pushes to subscribers);
//! * [`checkpoint`] — a text serialization of view state that rides in
//!   the storage layer's views envelope and replays from the WAL tail
//!   on open.
//!
//! Maintenance is governor-metered at `"ivm.fire"` (per candidate row),
//! `"ivm.round"` (per fixpoint round) and `"ivm.derive"` (memory per
//! stored fact), with per-view step accounting in [`ViewStats`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calc;
pub mod checkpoint;
pub mod delta;
pub mod engine;
pub mod error;
pub mod fire;

pub use calc::calc_to_program;
pub use checkpoint::{decode_registry, encode_registry};
pub use delta::{BaseDelta, ViewDelta};
pub use engine::{MaintainedView, ViewRegistry, ViewStats};
pub use error::IvmError;
