//! The durable database: a directory with one snapshot and one WAL,
//! opened with full recovery, mutated through logged operations, and
//! checkpointed with an epoch-sequenced atomic snapshot rotation.
//!
//! ## Crash windows
//!
//! Every mutation follows *validate → log → apply*: the in-memory state
//! changes only after the WAL append succeeded, so an I/O failure leaves
//! memory and disk telling the same story. `save()` has exactly one
//! publication point — the atomic rename of `snapshot.tmp` over
//! `snapshot.bin`:
//!
//! * crash **before** the rename — the old snapshot and the full WAL
//!   survive; recovery replays everything;
//! * crash **after** the rename but before the WAL reset — the new
//!   snapshot is live and the old WAL's epoch is stale; recovery discards
//!   it (its frames are already folded into the snapshot);
//! * crash **during** the WAL reset — a torn WAL header is recovered as
//!   an empty log at the snapshot's epoch.
//!
//! If `save()` fails after the rename succeeded, the writer poisons
//! itself: continuing to append to a stale-epoch log would silently lose
//! those appends on the next open, so the database refuses further
//! mutations until reopened.

use crate::delta::{
    decode_delta, decode_views, delta_file_name, encode_delta, encode_views, ViewsCheckpoint,
};
use crate::fault::IoFaults;
use crate::snapshot::{decode_snapshot, encode_snapshot};
use crate::wal::{scan_wal, WalWriter};
use crate::{
    fsio, StorageError, DELTA_TMP, SNAPSHOT_FILE, SNAPSHOT_TMP, VIEWS_FILE, VIEWS_TMP, WAL_FILE,
};
use no_object::text::{
    parse_clause, parse_database, render_fact, render_retract, render_schema_decl, Clause,
};
use no_object::{Governor, Instance, RelationSchema, Schema, Universe, Value};
use std::path::{Path, PathBuf};

/// When WAL appends are made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every logged mutation — the default; a mutation that
    /// returns `Ok` survives any crash.
    #[default]
    Always,
    /// `fsync` only on an explicit [`Db::sync`] or [`Db::save`] — faster
    /// bulk loading; a crash may lose the unsynced suffix (but never
    /// corrupts what was synced).
    Manual,
}

/// Options for opening a durable database.
#[derive(Debug, Clone, Default)]
pub struct DbOptions {
    /// Durability policy for logged mutations.
    pub sync: SyncPolicy,
    /// Governor charged for the arenas rebuilt during recovery (snapshot
    /// bytes plus every replayed frame), so `:open` on a huge store trips
    /// the same memory budget as building the instance any other way.
    pub governor: Option<Governor>,
    /// Fault-injection handle shared by every I/O this database performs.
    pub faults: IoFaults,
}

/// What recovery found and did while opening a database.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpenStats {
    /// True when the directory held no database and a fresh one was
    /// initialised.
    pub created: bool,
    /// Epoch of the snapshot that was loaded.
    pub snapshot_epoch: u64,
    /// WAL frames replayed over the snapshot.
    pub replayed_frames: u64,
    /// Bytes of torn WAL tail truncated away.
    pub truncated_bytes: u64,
    /// True when the WAL belonged to an older epoch (a crash landed
    /// between snapshot rename and WAL reset) and was discarded.
    pub stale_wal_discarded: bool,
    /// Bytes charged to the governor for replayed state.
    pub replayed_bytes: u64,
    /// Incremental-checkpoint delta files replayed between the snapshot
    /// and the WAL.
    pub delta_files: u64,
    /// Clauses replayed from those delta files.
    pub delta_clauses: u64,
}

/// Counts from a bulk text import.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImportStats {
    /// Relations newly declared.
    pub relations_added: u64,
    /// Tuples newly inserted (duplicates don't count).
    pub tuples_added: u64,
}

/// The result of a read-only integrity check of a database directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Epoch of the snapshot.
    pub snapshot_epoch: u64,
    /// Size of the snapshot file in bytes.
    pub snapshot_bytes: u64,
    /// Epoch of the WAL header, if the WAL exists and its header is
    /// intact.
    pub wal_epoch: Option<u64>,
    /// Valid frames the WAL holds for the current epoch.
    pub wal_frames: u64,
    /// True when the WAL is from an older epoch and would be discarded.
    pub stale_wal: bool,
    /// Bytes of torn tail that recovery would truncate.
    pub torn_tail_bytes: u64,
    /// Incremental-checkpoint delta files in the recovery chain.
    pub delta_files: u64,
    /// Atoms in the recovered universe.
    pub atoms: u64,
    /// Relations in the recovered schema.
    pub relations: u64,
    /// Tuples across all relations after replay.
    pub tuples: u64,
}

/// A durable complex-object database.
#[derive(Debug)]
pub struct Db {
    dir: PathBuf,
    universe: Universe,
    instance: Instance,
    epoch: u64,
    wal: WalWriter,
    sync: SyncPolicy,
    faults: IoFaults,
    stats: OpenStats,
    /// Every clause of the current epoch, replayed or appended, in log
    /// order: payload bytes (for sealing into a delta file) plus the
    /// parsed clause (the maintenance engine's change feed). Cleared by
    /// every checkpoint.
    tail: Vec<(Vec<u8>, Clause)>,
}

impl Db {
    /// Open the database at `dir`, creating a fresh empty one if the
    /// directory holds none. Runs full recovery: loads the latest valid
    /// snapshot, discards a stale WAL, replays current-epoch frames,
    /// truncates a torn tail, and refuses with a structured error on
    /// mid-log or snapshot corruption.
    pub fn open(dir: &Path, options: DbOptions) -> Result<Db, StorageError> {
        std::fs::create_dir_all(dir).map_err(|e| StorageError::io("mkdir", dir, e))?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);
        let tmp_path = dir.join(SNAPSHOT_TMP);
        // A leftover temp snapshot is a save that never reached its
        // rename; the staging bytes are dead either way.
        if tmp_path.exists() {
            let _ = std::fs::remove_file(&tmp_path);
        }

        if !snap_path.exists() {
            if wal_path.exists() {
                return Err(StorageError::corrupt(
                    &wal_path,
                    0,
                    "write-ahead log present without a snapshot",
                ));
            }
            return Db::init_fresh(dir, options);
        }

        let snap_bytes =
            std::fs::read(&snap_path).map_err(|e| StorageError::io("read", &snap_path, e))?;
        let mut replayed_bytes = snap_bytes.len() as u64;
        if let Some(g) = &options.governor {
            g.charge_mem("storage.replay", snap_bytes.len() as u64)?;
        }
        let snap = decode_snapshot(&snap_bytes, &snap_path)?;
        let mut universe = snap.universe;
        let mut instance = snap.instance;
        let mut epoch = snap.epoch;

        let mut stats = OpenStats {
            created: false,
            snapshot_epoch: epoch,
            ..OpenStats::default()
        };

        // Replay the incremental-checkpoint chain: delta files at
        // consecutive epochs after the snapshot. Each holds the clause
        // texts of the WAL it sealed; replay is identical to WAL replay.
        loop {
            let delta_path = dir.join(delta_file_name(epoch + 1));
            if !delta_path.exists() {
                break;
            }
            let delta_bytes =
                std::fs::read(&delta_path).map_err(|e| StorageError::io("read", &delta_path, e))?;
            if let Some(g) = &options.governor {
                g.charge_mem("storage.replay", delta_bytes.len() as u64)?;
            }
            replayed_bytes += delta_bytes.len() as u64;
            let clauses = decode_delta(&delta_bytes, epoch + 1, &delta_path)?;
            for (i, text) in clauses.iter().enumerate() {
                let clause = parse_clause(text, &mut universe).map_err(|e| {
                    StorageError::corrupt(&delta_path, 0, format!("clause {i} does not parse: {e}"))
                })?;
                apply_clause(&mut instance, &clause, &delta_path, i)?;
            }
            epoch += 1;
            stats.delta_files += 1;
            stats.delta_clauses += clauses.len() as u64;
        }

        let mut tail = Vec::new();
        let wal = if !wal_path.exists() {
            let mut w = WalWriter::create(&wal_path, epoch, &options.faults)?;
            w.sync()?;
            w
        } else {
            let wal_bytes =
                std::fs::read(&wal_path).map_err(|e| StorageError::io("read", &wal_path, e))?;
            let scan = scan_wal(&wal_bytes, &wal_path)?;
            match scan.epoch {
                Some(we) if we > epoch => {
                    return Err(StorageError::corrupt(
                        &wal_path,
                        8,
                        format!("write-ahead log epoch {we} is ahead of snapshot epoch {epoch}"),
                    ));
                }
                Some(we) if we == epoch => {
                    for (i, frame) in scan.frames.iter().enumerate() {
                        if let Some(g) = &options.governor {
                            g.charge_mem("storage.replay", frame.len() as u64)?;
                        }
                        replayed_bytes += frame.len() as u64;
                        let clause = parse_frame(&mut universe, frame, &wal_path, i)?;
                        apply_clause(&mut instance, &clause, &wal_path, i)?;
                        tail.push((frame.clone(), clause));
                    }
                    stats.replayed_frames = scan.frames.len() as u64;
                    stats.truncated_bytes = wal_bytes.len() as u64 - scan.keep_len;
                    WalWriter::open_append(
                        &wal_path,
                        scan.keep_len,
                        scan.frames.len() as u64,
                        scan.torn,
                        &options.faults,
                    )?
                }
                // Older epoch (crash between rename and WAL reset) or a
                // torn header (crash during the reset): the log carries
                // nothing the snapshot doesn't already hold.
                _ => {
                    stats.stale_wal_discarded = scan.epoch.is_some();
                    let mut w = WalWriter::create(&wal_path, epoch, &options.faults)?;
                    w.sync()?;
                    w
                }
            }
        };
        stats.replayed_bytes = replayed_bytes;

        Ok(Db {
            dir: dir.to_path_buf(),
            universe,
            instance,
            epoch,
            wal,
            sync: options.sync,
            faults: options.faults,
            stats,
            tail,
        })
    }

    /// Initialise an empty database: snapshot at epoch 0 (written with
    /// the same atomic staging as any checkpoint) plus an empty WAL.
    fn init_fresh(dir: &Path, options: DbOptions) -> Result<Db, StorageError> {
        let universe = Universe::default();
        let instance = Instance::empty(Schema::new());
        let bytes = encode_snapshot(0, &universe, &instance);
        write_snapshot_atomically(dir, &bytes, &options.faults)?;
        let mut wal = WalWriter::create(&dir.join(WAL_FILE), 0, &options.faults)?;
        wal.sync()?;
        Ok(Db {
            dir: dir.to_path_buf(),
            universe,
            instance,
            epoch: 0,
            wal,
            sync: options.sync,
            faults: options.faults,
            stats: OpenStats {
                created: true,
                ..OpenStats::default()
            },
            tail: Vec::new(),
        })
    }

    /// Declare a new relation. Logged, then applied.
    pub fn declare(&mut self, rel: RelationSchema) -> Result<(), StorageError> {
        if self.instance.schema().get(&rel.name).is_some() {
            return Err(StorageError::Invalid {
                detail: format!("relation {:?} is already declared", rel.name),
            });
        }
        let clause = render_schema_decl(&rel);
        self.wal.append(clause.as_bytes())?;
        if self.sync == SyncPolicy::Always {
            self.wal.sync()?;
        }
        self.tail
            .push((clause.into_bytes(), Clause::Schema(rel.clone())));
        apply_declare(&mut self.instance, rel);
        Ok(())
    }

    /// Insert one tuple. Validated against the schema (structured error,
    /// never a panic), logged, then applied. Returns `Ok(false)` without
    /// logging when the tuple was already present.
    pub fn insert(&mut self, name: &str, row: Vec<Value>) -> Result<bool, StorageError> {
        validate_row(self.instance.schema(), name, &row)
            .map_err(|detail| StorageError::Invalid { detail })?;
        if self.instance.relation(name).contains(&row) {
            return Ok(false);
        }
        let clause = render_fact(&self.universe, name, &row);
        self.wal.append(clause.as_bytes())?;
        if self.sync == SyncPolicy::Always {
            self.wal.sync()?;
        }
        self.tail.push((
            clause.into_bytes(),
            Clause::Fact(name.to_string(), row.clone()),
        ));
        self.instance.insert(name, row);
        Ok(true)
    }

    /// Delete one tuple. Validated, logged as a `delete R(…).` clause,
    /// then applied. Returns `Ok(false)` without logging when the tuple
    /// was not present — like duplicate inserts, no-op deletes never
    /// reach the log, so replay applies every logged retraction to a
    /// present row.
    pub fn delete(&mut self, name: &str, row: &[Value]) -> Result<bool, StorageError> {
        validate_row(self.instance.schema(), name, row)
            .map_err(|detail| StorageError::Invalid { detail })?;
        if !self.instance.relation(name).contains(row) {
            return Ok(false);
        }
        let clause = render_retract(&self.universe, name, row);
        self.wal.append(clause.as_bytes())?;
        if self.sync == SyncPolicy::Always {
            self.wal.sync()?;
        }
        self.tail.push((
            clause.into_bytes(),
            Clause::Retract(name.to_string(), row.to_vec()),
        ));
        self.instance.delete(name, row);
        Ok(true)
    }

    /// Bulk-import a text-format database (`schema R(U).` declarations
    /// and facts). New relations are declared, new tuples inserted;
    /// existing duplicates are skipped. One `fsync` at the end covers the
    /// whole batch under [`SyncPolicy::Always`].
    pub fn import_text(&mut self, src: &str) -> Result<ImportStats, StorageError> {
        let (schema, parsed) =
            parse_database(src, &mut self.universe).map_err(|e| StorageError::Invalid {
                detail: format!("cannot parse database text: {e}"),
            })?;
        let mut stats = ImportStats::default();
        for rel in schema.relations() {
            if self.instance.schema().get(&rel.name).is_none() {
                let clause = render_schema_decl(rel);
                self.wal.append(clause.as_bytes())?;
                self.tail
                    .push((clause.into_bytes(), Clause::Schema(rel.clone())));
                apply_declare(&mut self.instance, rel.clone());
                stats.relations_added += 1;
            }
        }
        for rel in schema.relations() {
            for row in parsed.relation(&rel.name).sorted_rows() {
                validate_row(self.instance.schema(), &rel.name, row)
                    .map_err(|detail| StorageError::Invalid { detail })?;
                if self.instance.relation(&rel.name).contains(row) {
                    continue;
                }
                let clause = render_fact(&self.universe, &rel.name, row);
                self.wal.append(clause.as_bytes())?;
                self.tail.push((
                    clause.into_bytes(),
                    Clause::Fact(rel.name.clone(), row.clone()),
                ));
                self.instance.insert(&rel.name, row.clone());
                stats.tuples_added += 1;
            }
        }
        if self.sync == SyncPolicy::Always && (stats.relations_added + stats.tuples_added) > 0 {
            self.wal.sync()?;
        }
        Ok(stats)
    }

    /// Checkpoint: write a snapshot of the current state at epoch `e+1`,
    /// publish it with an atomic rename, and reset the WAL to the new
    /// epoch. A failure before the rename leaves the database fully
    /// usable; a failure after it poisons the writer (reopen to recover —
    /// nothing acknowledged is lost, the snapshot holds everything).
    pub fn save(&mut self) -> Result<(), StorageError> {
        // Make the WAL tail durable first: if the checkpoint dies before
        // publishing, the log must already hold every acknowledged write.
        if self.sync == SyncPolicy::Manual {
            self.wal.sync()?;
        }
        let next = self.epoch + 1;
        let bytes = encode_snapshot(next, &self.universe, &self.instance);
        let tmp_path = self.dir.join(SNAPSHOT_TMP);
        let snap_path = self.dir.join(SNAPSHOT_FILE);

        // Phase 1: stage. Failure here changes nothing visible.
        let stage = (|| {
            let mut f = fsio::create(&self.faults, &tmp_path)?;
            fsio::write_all(&self.faults, &mut f, &tmp_path, &bytes)?;
            fsio::sync(&self.faults, &f, &tmp_path)
        })();
        if let Err(e) = stage {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }

        // Phase 2: publish. The rename is the commit point.
        if let Err(e) = fsio::rename(&self.faults, &tmp_path, &snap_path) {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }

        // Phase 3: from here the old WAL is stale; any failure leaves the
        // writer unusable until reopen (recovery handles every window).
        let finish = (|| {
            fsio::sync_dir(&self.faults, &self.dir)?;
            let mut wal = WalWriter::create(&self.dir.join(WAL_FILE), next, &self.faults)?;
            wal.sync()?;
            Ok(wal)
        })();
        match finish {
            Ok(wal) => {
                self.wal = wal;
                self.epoch = next;
                self.tail.clear();
                // The new snapshot subsumes every sealed delta; leftover
                // delta files are at epochs the chain scan can no longer
                // reach, so removal is pure housekeeping and failures are
                // harmless.
                if let Ok(entries) = std::fs::read_dir(&self.dir) {
                    for entry in entries.flatten() {
                        let name = entry.file_name();
                        let name = name.to_string_lossy();
                        if name.starts_with("delta-") && name.ends_with(".bin") {
                            let _ = std::fs::remove_file(entry.path());
                        }
                    }
                }
                Ok(())
            }
            Err(e) => {
                self.wal.poison();
                Err(e)
            }
        }
    }

    /// Incremental checkpoint: seal the current WAL tail into an
    /// immutable `delta-<e+1>.bin` file and reset the WAL to epoch `e+1`,
    /// without rewriting the snapshot — O(changes since last checkpoint)
    /// instead of O(`enc(I)`). A no-op when nothing changed. The crash
    /// windows mirror [`Db::save`]: the delta rename is the single
    /// publication point, and a crash between it and the WAL reset leaves
    /// a stale-epoch WAL that recovery discards (its frames live in the
    /// delta file).
    pub fn save_incremental(&mut self) -> Result<(), StorageError> {
        if self.tail.is_empty() {
            return Ok(());
        }
        // The sealed frames must be durable before the log is reset.
        if self.sync == SyncPolicy::Manual {
            self.wal.sync()?;
        }
        let next = self.epoch + 1;
        let payloads: Vec<Vec<u8>> = self.tail.iter().map(|(p, _)| p.clone()).collect();
        let bytes = encode_delta(next, &payloads);
        let tmp_path = self.dir.join(DELTA_TMP);
        let delta_path = self.dir.join(delta_file_name(next));

        // Phase 1: stage. Failure here changes nothing visible.
        let stage = (|| {
            let mut f = fsio::create(&self.faults, &tmp_path)?;
            fsio::write_all(&self.faults, &mut f, &tmp_path, &bytes)?;
            fsio::sync(&self.faults, &f, &tmp_path)
        })();
        if let Err(e) = stage {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }

        // Phase 2: publish. The rename is the commit point.
        if let Err(e) = fsio::rename(&self.faults, &tmp_path, &delta_path) {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }

        // Phase 3: from here the old WAL is stale; any failure leaves the
        // writer unusable until reopen (recovery handles every window).
        let finish = (|| {
            fsio::sync_dir(&self.faults, &self.dir)?;
            let mut wal = WalWriter::create(&self.dir.join(WAL_FILE), next, &self.faults)?;
            wal.sync()?;
            Ok(wal)
        })();
        match finish {
            Ok(wal) => {
                self.wal = wal;
                self.epoch = next;
                self.tail.clear();
                Ok(())
            }
            Err(e) => {
                self.wal.poison();
                Err(e)
            }
        }
    }

    /// Checkpoint the maintenance engine's serialised view states,
    /// stamped with the current epoch and WAL frame count. Written with
    /// the same atomic staging as every checkpoint; on open,
    /// [`Db::load_views`] plus [`Db::epoch_clauses`] tell the caller
    /// exactly which tail to replay over the stored states.
    pub fn save_views(&mut self, body: &[u8]) -> Result<(), StorageError> {
        let bytes = encode_views(self.epoch, self.wal.frames(), body);
        let tmp_path = self.dir.join(VIEWS_TMP);
        let views_path = self.dir.join(VIEWS_FILE);
        let stage = (|| {
            let mut f = fsio::create(&self.faults, &tmp_path)?;
            fsio::write_all(&self.faults, &mut f, &tmp_path, &bytes)?;
            fsio::sync(&self.faults, &f, &tmp_path)
        })();
        if let Err(e) = stage {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }
        if let Err(e) = fsio::rename(&self.faults, &tmp_path, &views_path) {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }
        fsio::sync_dir(&self.faults, &self.dir)
    }

    /// Load the view checkpoint, if one exists. Returns `Ok(None)` when
    /// no checkpoint was ever written **or** when the stored one belongs
    /// to an older epoch (a checkpoint happened without a view save, so
    /// the states are stale and must be recomputed). Corrupt bytes are a
    /// structured error, like every on-disk validation failure.
    pub fn load_views(&self) -> Result<Option<ViewsCheckpoint>, StorageError> {
        let views_path = self.dir.join(VIEWS_FILE);
        if !views_path.exists() {
            return Ok(None);
        }
        let bytes =
            std::fs::read(&views_path).map_err(|e| StorageError::io("read", &views_path, e))?;
        let ck = decode_views(&bytes, &views_path)?;
        if ck.epoch != self.epoch || ck.frames > self.tail.len() as u64 {
            return Ok(None);
        }
        Ok(Some(ck))
    }

    /// The clauses of the current epoch, replayed or appended, in log
    /// order — the maintenance engine's change feed. Index `i` is WAL
    /// frame `i`; a view checkpoint at frame count `f` catches up by
    /// replaying `epoch_clauses()[f..]`.
    pub fn epoch_clauses(&self) -> impl ExactSizeIterator<Item = &Clause> {
        self.tail.iter().map(|(_, c)| c)
    }

    /// `fsync` the WAL — makes every mutation so far durable under
    /// [`SyncPolicy::Manual`].
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The atom universe. Mutable access is sound: the universe is
    /// append-only and fact clauses re-intern their atom names on replay,
    /// so extra atoms (e.g. interned while parsing queries) never affect
    /// recovery.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Mutable universe access (for query parsing against this database).
    pub fn universe_mut(&mut self) -> &mut Universe {
        &mut self.universe
    }

    /// The current instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The current epoch (bumped by every successful [`Db::save`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Frames in the live WAL (replayed plus appended this session).
    pub fn wal_frames(&self) -> u64 {
        self.wal.frames()
    }

    /// What recovery found when this handle was opened.
    pub fn open_stats(&self) -> &OpenStats {
        &self.stats
    }

    /// The durability policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }
}

/// Write `bytes` as the snapshot via temp-file + fsync + rename + dir
/// fsync.
fn write_snapshot_atomically(
    dir: &Path,
    bytes: &[u8],
    faults: &IoFaults,
) -> Result<(), StorageError> {
    let tmp_path = dir.join(SNAPSHOT_TMP);
    let snap_path = dir.join(SNAPSHOT_FILE);
    let mut f = fsio::create(faults, &tmp_path)?;
    fsio::write_all(faults, &mut f, &tmp_path, bytes)?;
    fsio::sync(faults, &f, &tmp_path)?;
    drop(f);
    fsio::rename(faults, &tmp_path, &snap_path)?;
    fsio::sync_dir(faults, dir)
}

/// Extend the instance's schema with one more relation, carrying every
/// existing relation over (the schema inside an [`Instance`] is fixed, so
/// declaration rebuilds it).
fn apply_declare(instance: &mut Instance, rel: RelationSchema) {
    let mut schema = Schema::new();
    for r in instance.schema().relations() {
        schema.add(r.clone());
    }
    schema.add(rel);
    let mut next = Instance::empty(schema);
    for r in instance.schema().relations() {
        next.set_relation(&r.name, instance.relation(&r.name).clone());
    }
    *instance = next;
}

/// Check a row against the schema without panicking.
fn validate_row(schema: &Schema, name: &str, row: &[Value]) -> Result<(), String> {
    let rel = schema
        .get(name)
        .ok_or_else(|| format!("unknown relation {name:?}"))?;
    if rel.arity() != row.len() {
        return Err(format!(
            "relation {name:?} has arity {} but the tuple has {} values",
            rel.arity(),
            row.len()
        ));
    }
    for (v, t) in row.iter().zip(rel.column_types.iter()) {
        if !v.has_type(t) {
            return Err(format!("value {v} is not of type {t} in relation {name:?}"));
        }
    }
    Ok(())
}

/// Parse one replayed WAL frame. Frames passed their checksum, so any
/// failure here means the log was tampered with below CRC granularity or
/// written by something else — corruption, not a caller mistake.
fn parse_frame(
    universe: &mut Universe,
    frame: &[u8],
    wal_path: &Path,
    index: usize,
) -> Result<Clause, StorageError> {
    let text = std::str::from_utf8(frame).map_err(|e| {
        StorageError::corrupt(wal_path, 0, format!("frame {index} is not utf-8: {e}"))
    })?;
    parse_clause(text, universe).map_err(|e| {
        StorageError::corrupt(wal_path, 0, format!("frame {index} does not parse: {e}"))
    })
}

/// Apply one replayed clause. Mutations are validated before logging and
/// no-ops are never logged, so replay from the same starting state must
/// apply cleanly — anything else is corruption.
fn apply_clause(
    instance: &mut Instance,
    clause: &Clause,
    path: &Path,
    index: usize,
) -> Result<(), StorageError> {
    match clause {
        Clause::Schema(rel) => {
            if instance.schema().get(&rel.name).is_some() {
                return Err(StorageError::corrupt(
                    path,
                    0,
                    format!("frame {index} redeclares relation {:?}", rel.name),
                ));
            }
            apply_declare(instance, rel.clone());
        }
        Clause::Fact(name, row) => {
            validate_row(instance.schema(), name, row).map_err(|detail| {
                StorageError::corrupt(path, 0, format!("frame {index}: {detail}"))
            })?;
            instance.insert(name, row.clone());
        }
        Clause::Retract(name, row) => {
            validate_row(instance.schema(), name, row).map_err(|detail| {
                StorageError::corrupt(path, 0, format!("frame {index}: {detail}"))
            })?;
            if !instance.delete(name, row) {
                return Err(StorageError::corrupt(
                    path,
                    0,
                    format!("frame {index} retracts an absent tuple from {name:?}"),
                ));
            }
        }
    }
    Ok(())
}

/// Read-only integrity check of the database at `dir`: validates the
/// snapshot, scans and replays the WAL in memory, and reports what
/// recovery would do — without modifying a byte on disk.
pub fn verify(dir: &Path) -> Result<VerifyReport, StorageError> {
    let snap_path = dir.join(SNAPSHOT_FILE);
    let wal_path = dir.join(WAL_FILE);
    if !snap_path.exists() {
        return Err(StorageError::Invalid {
            detail: format!(
                "{} is not a database directory (no {SNAPSHOT_FILE})",
                dir.display()
            ),
        });
    }
    let snap_bytes =
        std::fs::read(&snap_path).map_err(|e| StorageError::io("read", &snap_path, e))?;
    let snap = decode_snapshot(&snap_bytes, &snap_path)?;
    let mut universe = snap.universe;
    let mut instance = snap.instance;
    let mut epoch = snap.epoch;

    let mut report = VerifyReport {
        snapshot_epoch: snap.epoch,
        snapshot_bytes: snap_bytes.len() as u64,
        wal_epoch: None,
        wal_frames: 0,
        stale_wal: false,
        torn_tail_bytes: 0,
        delta_files: 0,
        atoms: 0,
        relations: 0,
        tuples: 0,
    };

    loop {
        let delta_path = dir.join(delta_file_name(epoch + 1));
        if !delta_path.exists() {
            break;
        }
        let delta_bytes =
            std::fs::read(&delta_path).map_err(|e| StorageError::io("read", &delta_path, e))?;
        let clauses = decode_delta(&delta_bytes, epoch + 1, &delta_path)?;
        for (i, text) in clauses.iter().enumerate() {
            let clause = parse_clause(text, &mut universe).map_err(|e| {
                StorageError::corrupt(&delta_path, 0, format!("clause {i} does not parse: {e}"))
            })?;
            apply_clause(&mut instance, &clause, &delta_path, i)?;
        }
        epoch += 1;
        report.delta_files += 1;
    }

    if wal_path.exists() {
        let wal_bytes =
            std::fs::read(&wal_path).map_err(|e| StorageError::io("read", &wal_path, e))?;
        let scan = scan_wal(&wal_bytes, &wal_path)?;
        report.wal_epoch = scan.epoch;
        report.torn_tail_bytes = wal_bytes.len() as u64 - scan.keep_len;
        match scan.epoch {
            Some(we) if we > epoch => {
                return Err(StorageError::corrupt(
                    &wal_path,
                    8,
                    format!("write-ahead log epoch {we} is ahead of recovered epoch {epoch}"),
                ));
            }
            Some(we) if we == epoch => {
                for (i, frame) in scan.frames.iter().enumerate() {
                    let clause = parse_frame(&mut universe, frame, &wal_path, i)?;
                    apply_clause(&mut instance, &clause, &wal_path, i)?;
                }
                report.wal_frames = scan.frames.len() as u64;
            }
            _ => report.stale_wal = scan.epoch.is_some(),
        }
    }

    report.atoms = universe.len() as u64;
    report.relations = instance.schema().len() as u64;
    report.tuples = instance
        .schema()
        .relations()
        .map(|r| instance.relation(&r.name).len() as u64)
        .sum();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::Type;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let p =
                std::env::temp_dir().join(format!("no_storage_db_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn populated(dir: &Path) -> Db {
        let mut db = Db::open(dir, DbOptions::default()).unwrap();
        db.declare(RelationSchema::new("G", vec![Type::Atom, Type::Atom]))
            .unwrap();
        let a = db.universe_mut().intern("a");
        let b = db.universe_mut().intern("b");
        db.insert("G", vec![Value::Atom(a), Value::Atom(b)])
            .unwrap();
        db.insert("G", vec![Value::Atom(b), Value::Atom(a)])
            .unwrap();
        db
    }

    #[test]
    fn create_mutate_reopen() {
        let t = TempDir::new("basic");
        let db = populated(&t.0);
        assert!(db.open_stats().created);
        assert_eq!(db.wal_frames(), 3);
        drop(db);

        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert!(!db.open_stats().created);
        assert_eq!(db.open_stats().replayed_frames, 3);
        assert_eq!(db.instance().relation("G").len(), 2);
        assert_eq!(db.epoch(), 0);
    }

    #[test]
    fn save_folds_wal_into_snapshot() {
        let t = TempDir::new("save");
        let mut db = populated(&t.0);
        db.save().unwrap();
        assert_eq!(db.epoch(), 1);
        assert_eq!(db.wal_frames(), 0);
        drop(db);

        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert_eq!(db.open_stats().snapshot_epoch, 1);
        assert_eq!(db.open_stats().replayed_frames, 0);
        assert_eq!(db.instance().relation("G").len(), 2);

        let report = verify(&t.0).unwrap();
        assert_eq!(report.snapshot_epoch, 1);
        assert_eq!(report.wal_frames, 0);
        assert_eq!(report.tuples, 2);
        assert_eq!(report.relations, 1);
    }

    #[test]
    fn invalid_mutations_change_nothing() {
        let t = TempDir::new("invalid");
        let mut db = populated(&t.0);
        let frames = db.wal_frames();
        let a = db.universe_mut().intern("a");

        let err = db.insert("H", vec![Value::Atom(a)]).unwrap_err();
        assert!(matches!(err, StorageError::Invalid { .. }));
        let err = db.insert("G", vec![Value::Atom(a)]).unwrap_err();
        assert!(err.to_string().contains("arity"));
        let err = db
            .insert("G", vec![Value::empty_set(), Value::Atom(a)])
            .unwrap_err();
        assert!(err.to_string().contains("not of type"));
        let err = db
            .declare(RelationSchema::new("G", vec![Type::Atom]))
            .unwrap_err();
        assert!(matches!(err, StorageError::Invalid { .. }));

        assert_eq!(db.wal_frames(), frames, "nothing was logged");
    }

    #[test]
    fn duplicate_insert_is_not_logged() {
        let t = TempDir::new("dup");
        let mut db = populated(&t.0);
        let frames = db.wal_frames();
        let a = db.universe_mut().intern("a");
        let b = db.universe_mut().intern("b");
        assert!(!db
            .insert("G", vec![Value::Atom(a), Value::Atom(b)])
            .unwrap());
        assert_eq!(db.wal_frames(), frames);
    }

    #[test]
    fn import_text_roundtrip() {
        let t = TempDir::new("import");
        let mut db = Db::open(&t.0, DbOptions::default()).unwrap();
        let stats = db
            .import_text("schema E(U, U).\nE('x', 'y').\nE('y', 'z').\n")
            .unwrap();
        assert_eq!(stats.relations_added, 1);
        assert_eq!(stats.tuples_added, 2);
        // Importing the same text again is a no-op.
        let stats = db
            .import_text("schema E(U, U).\nE('x', 'y').\nE('y', 'z').\n")
            .unwrap();
        assert_eq!(stats.relations_added, 0);
        assert_eq!(stats.tuples_added, 0);
        drop(db);
        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert_eq!(db.instance().relation("E").len(), 2);
    }

    #[test]
    fn delete_logs_and_replays() {
        let t = TempDir::new("delete");
        let mut db = populated(&t.0);
        let a = db.universe_mut().intern("a");
        let b = db.universe_mut().intern("b");
        assert!(db.delete("G", &[Value::Atom(a), Value::Atom(b)]).unwrap());
        assert!(!db.delete("G", &[Value::Atom(a), Value::Atom(b)]).unwrap());
        assert_eq!(db.wal_frames(), 4, "no-op delete not logged");
        assert_eq!(db.instance().relation("G").len(), 1);
        drop(db);

        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert_eq!(db.instance().relation("G").len(), 1);
        let a = db.universe().get("a").unwrap();
        let b = db.universe().get("b").unwrap();
        assert!(!db
            .instance()
            .relation("G")
            .contains(&[Value::Atom(a), Value::Atom(b)]));
        assert!(db
            .instance()
            .relation("G")
            .contains(&[Value::Atom(b), Value::Atom(a)]));
    }

    #[test]
    fn incremental_checkpoint_seals_and_replays() {
        let t = TempDir::new("incr");
        let mut db = populated(&t.0);
        db.save_incremental().unwrap();
        assert_eq!(db.epoch(), 1);
        assert_eq!(db.wal_frames(), 0);
        assert!(t.0.join(delta_file_name(1)).exists());
        // Second incremental checkpoint over fresh mutations.
        let c = db.universe_mut().intern("c");
        let a = db.universe().get("a").unwrap();
        db.insert("G", vec![Value::Atom(a), Value::Atom(c)])
            .unwrap();
        db.save_incremental().unwrap();
        assert_eq!(db.epoch(), 2);
        // Empty tail: a no-op, no delta file.
        db.save_incremental().unwrap();
        assert_eq!(db.epoch(), 2);
        assert!(!t.0.join(delta_file_name(3)).exists());
        drop(db);

        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert_eq!(db.open_stats().snapshot_epoch, 0);
        assert_eq!(db.open_stats().delta_files, 2);
        assert_eq!(db.epoch(), 2);
        assert_eq!(db.instance().relation("G").len(), 3);

        let report = verify(&t.0).unwrap();
        assert_eq!(report.delta_files, 2);
        assert_eq!(report.tuples, 3);
    }

    #[test]
    fn full_save_removes_delta_chain() {
        let t = TempDir::new("fold");
        let mut db = populated(&t.0);
        db.save_incremental().unwrap();
        assert!(t.0.join(delta_file_name(1)).exists());
        db.save().unwrap();
        assert_eq!(db.epoch(), 2);
        assert!(!t.0.join(delta_file_name(1)).exists());
        drop(db);
        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert_eq!(db.open_stats().snapshot_epoch, 2);
        assert_eq!(db.open_stats().delta_files, 0);
        assert_eq!(db.instance().relation("G").len(), 2);
    }

    #[test]
    fn epoch_clauses_feed_and_view_checkpoint_roundtrip() {
        let t = TempDir::new("views");
        let mut db = populated(&t.0);
        assert_eq!(db.epoch_clauses().len(), 3);
        db.save_views(b"view state v1").unwrap();
        let ck = db.load_views().unwrap().unwrap();
        assert_eq!(ck.epoch, 0);
        assert_eq!(ck.frames, 3);
        assert_eq!(ck.body, b"view state v1");
        let a = db.universe().get("a").unwrap();
        let c = db.universe_mut().intern("c");
        db.insert("G", vec![Value::Atom(a), Value::Atom(c)])
            .unwrap();
        drop(db);

        // Reopen: the checkpoint is current-epoch; the caller replays the
        // tail past its frame count.
        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        let ck = db.load_views().unwrap().unwrap();
        assert_eq!(ck.frames, 3);
        let tail: Vec<_> = db.epoch_clauses().skip(ck.frames as usize).collect();
        assert_eq!(tail.len(), 1);
        assert!(matches!(tail[0], Clause::Fact(name, _) if name == "G"));
    }

    #[test]
    fn stale_view_checkpoint_is_discarded() {
        let t = TempDir::new("viewstale");
        let mut db = populated(&t.0);
        db.save_views(b"old").unwrap();
        db.save_incremental().unwrap();
        // Epoch moved past the checkpoint without a view save.
        assert_eq!(db.load_views().unwrap(), None);
        drop(db);
        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert_eq!(db.load_views().unwrap(), None);
    }

    #[test]
    fn stale_wal_is_discarded() {
        let t = TempDir::new("stale");
        let mut db = populated(&t.0);
        db.save().unwrap();
        drop(db);
        // Forge the crash window: put back a WAL with an older epoch.
        let wal_path = t.0.join(WAL_FILE);
        let mut bytes = crate::wal::header_bytes(0).to_vec();
        bytes.extend_from_slice(&crate::wal::frame_bytes(b"G('a', 'b')."));
        std::fs::write(&wal_path, &bytes).unwrap();

        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert!(db.open_stats().stale_wal_discarded);
        assert_eq!(db.open_stats().replayed_frames, 0);
        assert_eq!(db.instance().relation("G").len(), 2);
        assert_eq!(db.epoch(), 1);
    }

    #[test]
    fn future_wal_is_corruption() {
        let t = TempDir::new("future");
        let db = populated(&t.0);
        drop(db);
        let wal_path = t.0.join(WAL_FILE);
        std::fs::write(&wal_path, crate::wal::header_bytes(99)).unwrap();
        let err = Db::open(&t.0, DbOptions::default()).unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn governor_budget_trips_on_replay() {
        use no_object::Limits;
        let t = TempDir::new("gov");
        let db = populated(&t.0);
        drop(db);
        let limits = Limits {
            max_memory_bytes: 8,
            ..Limits::default()
        };
        let options = DbOptions {
            governor: Some(Governor::new(limits)),
            ..DbOptions::default()
        };
        let err = Db::open(&t.0, options).unwrap_err();
        assert!(matches!(err, StorageError::Resource(_)), "got {err}");
    }

    #[test]
    fn wal_without_snapshot_is_corruption() {
        let t = TempDir::new("orphan");
        std::fs::write(t.0.join(WAL_FILE), crate::wal::header_bytes(0)).unwrap();
        let err = Db::open(&t.0, DbOptions::default()).unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn leftover_tmp_snapshot_is_cleaned_up() {
        let t = TempDir::new("tmpclean");
        let db = populated(&t.0);
        drop(db);
        std::fs::write(t.0.join(SNAPSHOT_TMP), b"half-written garbage").unwrap();
        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert!(!t.0.join(SNAPSHOT_TMP).exists());
        assert_eq!(db.instance().relation("G").len(), 2);
    }
}
