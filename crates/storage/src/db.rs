//! The durable database: a directory with one snapshot and one WAL,
//! opened with full recovery, mutated through logged operations, and
//! checkpointed with an epoch-sequenced atomic snapshot rotation.
//!
//! ## Crash windows
//!
//! Every mutation follows *validate → log → apply*: the in-memory state
//! changes only after the WAL append succeeded, so an I/O failure leaves
//! memory and disk telling the same story. `save()` has exactly one
//! publication point — the atomic rename of `snapshot.tmp` over
//! `snapshot.bin`:
//!
//! * crash **before** the rename — the old snapshot and the full WAL
//!   survive; recovery replays everything;
//! * crash **after** the rename but before the WAL reset — the new
//!   snapshot is live and the old WAL's epoch is stale; recovery discards
//!   it (its frames are already folded into the snapshot);
//! * crash **during** the WAL reset — a torn WAL header is recovered as
//!   an empty log at the snapshot's epoch.
//!
//! If `save()` fails after the rename succeeded, the writer poisons
//! itself: continuing to append to a stale-epoch log would silently lose
//! those appends on the next open, so the database refuses further
//! mutations until reopened.

use crate::fault::IoFaults;
use crate::snapshot::{decode_snapshot, encode_snapshot};
use crate::wal::{scan_wal, WalWriter};
use crate::{fsio, StorageError, SNAPSHOT_FILE, SNAPSHOT_TMP, WAL_FILE};
use no_object::text::{parse_clause, parse_database, render_fact, render_schema_decl, Clause};
use no_object::{Governor, Instance, RelationSchema, Schema, Universe, Value};
use std::path::{Path, PathBuf};

/// When WAL appends are made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every logged mutation — the default; a mutation that
    /// returns `Ok` survives any crash.
    #[default]
    Always,
    /// `fsync` only on an explicit [`Db::sync`] or [`Db::save`] — faster
    /// bulk loading; a crash may lose the unsynced suffix (but never
    /// corrupts what was synced).
    Manual,
}

/// Options for opening a durable database.
#[derive(Debug, Clone, Default)]
pub struct DbOptions {
    /// Durability policy for logged mutations.
    pub sync: SyncPolicy,
    /// Governor charged for the arenas rebuilt during recovery (snapshot
    /// bytes plus every replayed frame), so `:open` on a huge store trips
    /// the same memory budget as building the instance any other way.
    pub governor: Option<Governor>,
    /// Fault-injection handle shared by every I/O this database performs.
    pub faults: IoFaults,
}

/// What recovery found and did while opening a database.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpenStats {
    /// True when the directory held no database and a fresh one was
    /// initialised.
    pub created: bool,
    /// Epoch of the snapshot that was loaded.
    pub snapshot_epoch: u64,
    /// WAL frames replayed over the snapshot.
    pub replayed_frames: u64,
    /// Bytes of torn WAL tail truncated away.
    pub truncated_bytes: u64,
    /// True when the WAL belonged to an older epoch (a crash landed
    /// between snapshot rename and WAL reset) and was discarded.
    pub stale_wal_discarded: bool,
    /// Bytes charged to the governor for replayed state.
    pub replayed_bytes: u64,
}

/// Counts from a bulk text import.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImportStats {
    /// Relations newly declared.
    pub relations_added: u64,
    /// Tuples newly inserted (duplicates don't count).
    pub tuples_added: u64,
}

/// The result of a read-only integrity check of a database directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Epoch of the snapshot.
    pub snapshot_epoch: u64,
    /// Size of the snapshot file in bytes.
    pub snapshot_bytes: u64,
    /// Epoch of the WAL header, if the WAL exists and its header is
    /// intact.
    pub wal_epoch: Option<u64>,
    /// Valid frames the WAL holds for the current epoch.
    pub wal_frames: u64,
    /// True when the WAL is from an older epoch and would be discarded.
    pub stale_wal: bool,
    /// Bytes of torn tail that recovery would truncate.
    pub torn_tail_bytes: u64,
    /// Atoms in the recovered universe.
    pub atoms: u64,
    /// Relations in the recovered schema.
    pub relations: u64,
    /// Tuples across all relations after replay.
    pub tuples: u64,
}

/// A durable complex-object database.
#[derive(Debug)]
pub struct Db {
    dir: PathBuf,
    universe: Universe,
    instance: Instance,
    epoch: u64,
    wal: WalWriter,
    sync: SyncPolicy,
    faults: IoFaults,
    stats: OpenStats,
}

impl Db {
    /// Open the database at `dir`, creating a fresh empty one if the
    /// directory holds none. Runs full recovery: loads the latest valid
    /// snapshot, discards a stale WAL, replays current-epoch frames,
    /// truncates a torn tail, and refuses with a structured error on
    /// mid-log or snapshot corruption.
    pub fn open(dir: &Path, options: DbOptions) -> Result<Db, StorageError> {
        std::fs::create_dir_all(dir).map_err(|e| StorageError::io("mkdir", dir, e))?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);
        let tmp_path = dir.join(SNAPSHOT_TMP);
        // A leftover temp snapshot is a save that never reached its
        // rename; the staging bytes are dead either way.
        if tmp_path.exists() {
            let _ = std::fs::remove_file(&tmp_path);
        }

        if !snap_path.exists() {
            if wal_path.exists() {
                return Err(StorageError::corrupt(
                    &wal_path,
                    0,
                    "write-ahead log present without a snapshot",
                ));
            }
            return Db::init_fresh(dir, options);
        }

        let snap_bytes =
            std::fs::read(&snap_path).map_err(|e| StorageError::io("read", &snap_path, e))?;
        let mut replayed_bytes = snap_bytes.len() as u64;
        if let Some(g) = &options.governor {
            g.charge_mem("storage.replay", snap_bytes.len() as u64)?;
        }
        let snap = decode_snapshot(&snap_bytes, &snap_path)?;
        let mut universe = snap.universe;
        let mut instance = snap.instance;
        let epoch = snap.epoch;

        let mut stats = OpenStats {
            created: false,
            snapshot_epoch: epoch,
            ..OpenStats::default()
        };

        let wal = if !wal_path.exists() {
            let mut w = WalWriter::create(&wal_path, epoch, &options.faults)?;
            w.sync()?;
            w
        } else {
            let wal_bytes =
                std::fs::read(&wal_path).map_err(|e| StorageError::io("read", &wal_path, e))?;
            let scan = scan_wal(&wal_bytes, &wal_path)?;
            match scan.epoch {
                Some(we) if we > epoch => {
                    return Err(StorageError::corrupt(
                        &wal_path,
                        8,
                        format!("write-ahead log epoch {we} is ahead of snapshot epoch {epoch}"),
                    ));
                }
                Some(we) if we == epoch => {
                    for (i, frame) in scan.frames.iter().enumerate() {
                        if let Some(g) = &options.governor {
                            g.charge_mem("storage.replay", frame.len() as u64)?;
                        }
                        replayed_bytes += frame.len() as u64;
                        apply_frame(&mut universe, &mut instance, frame, &wal_path, i)?;
                    }
                    stats.replayed_frames = scan.frames.len() as u64;
                    stats.truncated_bytes = wal_bytes.len() as u64 - scan.keep_len;
                    WalWriter::open_append(
                        &wal_path,
                        scan.keep_len,
                        scan.frames.len() as u64,
                        scan.torn,
                        &options.faults,
                    )?
                }
                // Older epoch (crash between rename and WAL reset) or a
                // torn header (crash during the reset): the log carries
                // nothing the snapshot doesn't already hold.
                _ => {
                    stats.stale_wal_discarded = scan.epoch.is_some();
                    let mut w = WalWriter::create(&wal_path, epoch, &options.faults)?;
                    w.sync()?;
                    w
                }
            }
        };
        stats.replayed_bytes = replayed_bytes;

        Ok(Db {
            dir: dir.to_path_buf(),
            universe,
            instance,
            epoch,
            wal,
            sync: options.sync,
            faults: options.faults,
            stats,
        })
    }

    /// Initialise an empty database: snapshot at epoch 0 (written with
    /// the same atomic staging as any checkpoint) plus an empty WAL.
    fn init_fresh(dir: &Path, options: DbOptions) -> Result<Db, StorageError> {
        let universe = Universe::default();
        let instance = Instance::empty(Schema::new());
        let bytes = encode_snapshot(0, &universe, &instance);
        write_snapshot_atomically(dir, &bytes, &options.faults)?;
        let mut wal = WalWriter::create(&dir.join(WAL_FILE), 0, &options.faults)?;
        wal.sync()?;
        Ok(Db {
            dir: dir.to_path_buf(),
            universe,
            instance,
            epoch: 0,
            wal,
            sync: options.sync,
            faults: options.faults,
            stats: OpenStats {
                created: true,
                ..OpenStats::default()
            },
        })
    }

    /// Declare a new relation. Logged, then applied.
    pub fn declare(&mut self, rel: RelationSchema) -> Result<(), StorageError> {
        if self.instance.schema().get(&rel.name).is_some() {
            return Err(StorageError::Invalid {
                detail: format!("relation {:?} is already declared", rel.name),
            });
        }
        let clause = render_schema_decl(&rel);
        self.wal.append(clause.as_bytes())?;
        if self.sync == SyncPolicy::Always {
            self.wal.sync()?;
        }
        apply_declare(&mut self.instance, rel);
        Ok(())
    }

    /// Insert one tuple. Validated against the schema (structured error,
    /// never a panic), logged, then applied. Returns `Ok(false)` without
    /// logging when the tuple was already present.
    pub fn insert(&mut self, name: &str, row: Vec<Value>) -> Result<bool, StorageError> {
        validate_row(self.instance.schema(), name, &row)
            .map_err(|detail| StorageError::Invalid { detail })?;
        if self.instance.relation(name).contains(&row) {
            return Ok(false);
        }
        let clause = render_fact(&self.universe, name, &row);
        self.wal.append(clause.as_bytes())?;
        if self.sync == SyncPolicy::Always {
            self.wal.sync()?;
        }
        self.instance.insert(name, row);
        Ok(true)
    }

    /// Bulk-import a text-format database (`schema R(U).` declarations
    /// and facts). New relations are declared, new tuples inserted;
    /// existing duplicates are skipped. One `fsync` at the end covers the
    /// whole batch under [`SyncPolicy::Always`].
    pub fn import_text(&mut self, src: &str) -> Result<ImportStats, StorageError> {
        let (schema, parsed) =
            parse_database(src, &mut self.universe).map_err(|e| StorageError::Invalid {
                detail: format!("cannot parse database text: {e}"),
            })?;
        let mut stats = ImportStats::default();
        for rel in schema.relations() {
            if self.instance.schema().get(&rel.name).is_none() {
                let clause = render_schema_decl(rel);
                self.wal.append(clause.as_bytes())?;
                apply_declare(&mut self.instance, rel.clone());
                stats.relations_added += 1;
            }
        }
        for rel in schema.relations() {
            for row in parsed.relation(&rel.name).sorted_rows() {
                validate_row(self.instance.schema(), &rel.name, row)
                    .map_err(|detail| StorageError::Invalid { detail })?;
                if self.instance.relation(&rel.name).contains(row) {
                    continue;
                }
                let clause = render_fact(&self.universe, &rel.name, row);
                self.wal.append(clause.as_bytes())?;
                self.instance.insert(&rel.name, row.clone());
                stats.tuples_added += 1;
            }
        }
        if self.sync == SyncPolicy::Always && (stats.relations_added + stats.tuples_added) > 0 {
            self.wal.sync()?;
        }
        Ok(stats)
    }

    /// Checkpoint: write a snapshot of the current state at epoch `e+1`,
    /// publish it with an atomic rename, and reset the WAL to the new
    /// epoch. A failure before the rename leaves the database fully
    /// usable; a failure after it poisons the writer (reopen to recover —
    /// nothing acknowledged is lost, the snapshot holds everything).
    pub fn save(&mut self) -> Result<(), StorageError> {
        // Make the WAL tail durable first: if the checkpoint dies before
        // publishing, the log must already hold every acknowledged write.
        if self.sync == SyncPolicy::Manual {
            self.wal.sync()?;
        }
        let next = self.epoch + 1;
        let bytes = encode_snapshot(next, &self.universe, &self.instance);
        let tmp_path = self.dir.join(SNAPSHOT_TMP);
        let snap_path = self.dir.join(SNAPSHOT_FILE);

        // Phase 1: stage. Failure here changes nothing visible.
        let stage = (|| {
            let mut f = fsio::create(&self.faults, &tmp_path)?;
            fsio::write_all(&self.faults, &mut f, &tmp_path, &bytes)?;
            fsio::sync(&self.faults, &f, &tmp_path)
        })();
        if let Err(e) = stage {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }

        // Phase 2: publish. The rename is the commit point.
        if let Err(e) = fsio::rename(&self.faults, &tmp_path, &snap_path) {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e);
        }

        // Phase 3: from here the old WAL is stale; any failure leaves the
        // writer unusable until reopen (recovery handles every window).
        let finish = (|| {
            fsio::sync_dir(&self.faults, &self.dir)?;
            let mut wal = WalWriter::create(&self.dir.join(WAL_FILE), next, &self.faults)?;
            wal.sync()?;
            Ok(wal)
        })();
        match finish {
            Ok(wal) => {
                self.wal = wal;
                self.epoch = next;
                Ok(())
            }
            Err(e) => {
                self.wal.poison();
                Err(e)
            }
        }
    }

    /// `fsync` the WAL — makes every mutation so far durable under
    /// [`SyncPolicy::Manual`].
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The atom universe. Mutable access is sound: the universe is
    /// append-only and fact clauses re-intern their atom names on replay,
    /// so extra atoms (e.g. interned while parsing queries) never affect
    /// recovery.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Mutable universe access (for query parsing against this database).
    pub fn universe_mut(&mut self) -> &mut Universe {
        &mut self.universe
    }

    /// The current instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The current epoch (bumped by every successful [`Db::save`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Frames in the live WAL (replayed plus appended this session).
    pub fn wal_frames(&self) -> u64 {
        self.wal.frames()
    }

    /// What recovery found when this handle was opened.
    pub fn open_stats(&self) -> &OpenStats {
        &self.stats
    }

    /// The durability policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }
}

/// Write `bytes` as the snapshot via temp-file + fsync + rename + dir
/// fsync.
fn write_snapshot_atomically(
    dir: &Path,
    bytes: &[u8],
    faults: &IoFaults,
) -> Result<(), StorageError> {
    let tmp_path = dir.join(SNAPSHOT_TMP);
    let snap_path = dir.join(SNAPSHOT_FILE);
    let mut f = fsio::create(faults, &tmp_path)?;
    fsio::write_all(faults, &mut f, &tmp_path, bytes)?;
    fsio::sync(faults, &f, &tmp_path)?;
    drop(f);
    fsio::rename(faults, &tmp_path, &snap_path)?;
    fsio::sync_dir(faults, dir)
}

/// Extend the instance's schema with one more relation, carrying every
/// existing relation over (the schema inside an [`Instance`] is fixed, so
/// declaration rebuilds it).
fn apply_declare(instance: &mut Instance, rel: RelationSchema) {
    let mut schema = Schema::new();
    for r in instance.schema().relations() {
        schema.add(r.clone());
    }
    schema.add(rel);
    let mut next = Instance::empty(schema);
    for r in instance.schema().relations() {
        next.set_relation(&r.name, instance.relation(&r.name).clone());
    }
    *instance = next;
}

/// Check a row against the schema without panicking.
fn validate_row(schema: &Schema, name: &str, row: &[Value]) -> Result<(), String> {
    let rel = schema
        .get(name)
        .ok_or_else(|| format!("unknown relation {name:?}"))?;
    if rel.arity() != row.len() {
        return Err(format!(
            "relation {name:?} has arity {} but the tuple has {} values",
            rel.arity(),
            row.len()
        ));
    }
    for (v, t) in row.iter().zip(rel.column_types.iter()) {
        if !v.has_type(t) {
            return Err(format!("value {v} is not of type {t} in relation {name:?}"));
        }
    }
    Ok(())
}

/// Parse and apply one replayed WAL frame. Frames passed their checksum,
/// so any failure here means the log was tampered with below CRC
/// granularity or written by something else — corruption, not a caller
/// mistake.
fn apply_frame(
    universe: &mut Universe,
    instance: &mut Instance,
    frame: &[u8],
    wal_path: &Path,
    index: usize,
) -> Result<(), StorageError> {
    let text = std::str::from_utf8(frame).map_err(|e| {
        StorageError::corrupt(wal_path, 0, format!("frame {index} is not utf-8: {e}"))
    })?;
    let clause = parse_clause(text, universe).map_err(|e| {
        StorageError::corrupt(wal_path, 0, format!("frame {index} does not parse: {e}"))
    })?;
    match clause {
        Clause::Schema(rel) => {
            if instance.schema().get(&rel.name).is_some() {
                return Err(StorageError::corrupt(
                    wal_path,
                    0,
                    format!("frame {index} redeclares relation {:?}", rel.name),
                ));
            }
            apply_declare(instance, rel);
        }
        Clause::Fact(name, row) => {
            validate_row(instance.schema(), &name, &row).map_err(|detail| {
                StorageError::corrupt(wal_path, 0, format!("frame {index}: {detail}"))
            })?;
            instance.insert(&name, row);
        }
    }
    Ok(())
}

/// Read-only integrity check of the database at `dir`: validates the
/// snapshot, scans and replays the WAL in memory, and reports what
/// recovery would do — without modifying a byte on disk.
pub fn verify(dir: &Path) -> Result<VerifyReport, StorageError> {
    let snap_path = dir.join(SNAPSHOT_FILE);
    let wal_path = dir.join(WAL_FILE);
    if !snap_path.exists() {
        return Err(StorageError::Invalid {
            detail: format!(
                "{} is not a database directory (no {SNAPSHOT_FILE})",
                dir.display()
            ),
        });
    }
    let snap_bytes =
        std::fs::read(&snap_path).map_err(|e| StorageError::io("read", &snap_path, e))?;
    let snap = decode_snapshot(&snap_bytes, &snap_path)?;
    let mut universe = snap.universe;
    let mut instance = snap.instance;

    let mut report = VerifyReport {
        snapshot_epoch: snap.epoch,
        snapshot_bytes: snap_bytes.len() as u64,
        wal_epoch: None,
        wal_frames: 0,
        stale_wal: false,
        torn_tail_bytes: 0,
        atoms: 0,
        relations: 0,
        tuples: 0,
    };

    if wal_path.exists() {
        let wal_bytes =
            std::fs::read(&wal_path).map_err(|e| StorageError::io("read", &wal_path, e))?;
        let scan = scan_wal(&wal_bytes, &wal_path)?;
        report.wal_epoch = scan.epoch;
        report.torn_tail_bytes = wal_bytes.len() as u64 - scan.keep_len;
        match scan.epoch {
            Some(we) if we > snap.epoch => {
                return Err(StorageError::corrupt(
                    &wal_path,
                    8,
                    format!(
                        "write-ahead log epoch {we} is ahead of snapshot epoch {}",
                        snap.epoch
                    ),
                ));
            }
            Some(we) if we == snap.epoch => {
                for (i, frame) in scan.frames.iter().enumerate() {
                    apply_frame(&mut universe, &mut instance, frame, &wal_path, i)?;
                }
                report.wal_frames = scan.frames.len() as u64;
            }
            _ => report.stale_wal = scan.epoch.is_some(),
        }
    }

    report.atoms = universe.len() as u64;
    report.relations = instance.schema().len() as u64;
    report.tuples = instance
        .schema()
        .relations()
        .map(|r| instance.relation(&r.name).len() as u64)
        .sum();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::Type;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let p =
                std::env::temp_dir().join(format!("no_storage_db_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn populated(dir: &Path) -> Db {
        let mut db = Db::open(dir, DbOptions::default()).unwrap();
        db.declare(RelationSchema::new("G", vec![Type::Atom, Type::Atom]))
            .unwrap();
        let a = db.universe_mut().intern("a");
        let b = db.universe_mut().intern("b");
        db.insert("G", vec![Value::Atom(a), Value::Atom(b)])
            .unwrap();
        db.insert("G", vec![Value::Atom(b), Value::Atom(a)])
            .unwrap();
        db
    }

    #[test]
    fn create_mutate_reopen() {
        let t = TempDir::new("basic");
        let db = populated(&t.0);
        assert!(db.open_stats().created);
        assert_eq!(db.wal_frames(), 3);
        drop(db);

        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert!(!db.open_stats().created);
        assert_eq!(db.open_stats().replayed_frames, 3);
        assert_eq!(db.instance().relation("G").len(), 2);
        assert_eq!(db.epoch(), 0);
    }

    #[test]
    fn save_folds_wal_into_snapshot() {
        let t = TempDir::new("save");
        let mut db = populated(&t.0);
        db.save().unwrap();
        assert_eq!(db.epoch(), 1);
        assert_eq!(db.wal_frames(), 0);
        drop(db);

        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert_eq!(db.open_stats().snapshot_epoch, 1);
        assert_eq!(db.open_stats().replayed_frames, 0);
        assert_eq!(db.instance().relation("G").len(), 2);

        let report = verify(&t.0).unwrap();
        assert_eq!(report.snapshot_epoch, 1);
        assert_eq!(report.wal_frames, 0);
        assert_eq!(report.tuples, 2);
        assert_eq!(report.relations, 1);
    }

    #[test]
    fn invalid_mutations_change_nothing() {
        let t = TempDir::new("invalid");
        let mut db = populated(&t.0);
        let frames = db.wal_frames();
        let a = db.universe_mut().intern("a");

        let err = db.insert("H", vec![Value::Atom(a)]).unwrap_err();
        assert!(matches!(err, StorageError::Invalid { .. }));
        let err = db.insert("G", vec![Value::Atom(a)]).unwrap_err();
        assert!(err.to_string().contains("arity"));
        let err = db
            .insert("G", vec![Value::empty_set(), Value::Atom(a)])
            .unwrap_err();
        assert!(err.to_string().contains("not of type"));
        let err = db
            .declare(RelationSchema::new("G", vec![Type::Atom]))
            .unwrap_err();
        assert!(matches!(err, StorageError::Invalid { .. }));

        assert_eq!(db.wal_frames(), frames, "nothing was logged");
    }

    #[test]
    fn duplicate_insert_is_not_logged() {
        let t = TempDir::new("dup");
        let mut db = populated(&t.0);
        let frames = db.wal_frames();
        let a = db.universe_mut().intern("a");
        let b = db.universe_mut().intern("b");
        assert!(!db
            .insert("G", vec![Value::Atom(a), Value::Atom(b)])
            .unwrap());
        assert_eq!(db.wal_frames(), frames);
    }

    #[test]
    fn import_text_roundtrip() {
        let t = TempDir::new("import");
        let mut db = Db::open(&t.0, DbOptions::default()).unwrap();
        let stats = db
            .import_text("schema E(U, U).\nE('x', 'y').\nE('y', 'z').\n")
            .unwrap();
        assert_eq!(stats.relations_added, 1);
        assert_eq!(stats.tuples_added, 2);
        // Importing the same text again is a no-op.
        let stats = db
            .import_text("schema E(U, U).\nE('x', 'y').\nE('y', 'z').\n")
            .unwrap();
        assert_eq!(stats.relations_added, 0);
        assert_eq!(stats.tuples_added, 0);
        drop(db);
        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert_eq!(db.instance().relation("E").len(), 2);
    }

    #[test]
    fn stale_wal_is_discarded() {
        let t = TempDir::new("stale");
        let mut db = populated(&t.0);
        db.save().unwrap();
        drop(db);
        // Forge the crash window: put back a WAL with an older epoch.
        let wal_path = t.0.join(WAL_FILE);
        let mut bytes = crate::wal::header_bytes(0).to_vec();
        bytes.extend_from_slice(&crate::wal::frame_bytes(b"G('a', 'b')."));
        std::fs::write(&wal_path, &bytes).unwrap();

        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert!(db.open_stats().stale_wal_discarded);
        assert_eq!(db.open_stats().replayed_frames, 0);
        assert_eq!(db.instance().relation("G").len(), 2);
        assert_eq!(db.epoch(), 1);
    }

    #[test]
    fn future_wal_is_corruption() {
        let t = TempDir::new("future");
        let db = populated(&t.0);
        drop(db);
        let wal_path = t.0.join(WAL_FILE);
        std::fs::write(&wal_path, crate::wal::header_bytes(99)).unwrap();
        let err = Db::open(&t.0, DbOptions::default()).unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn governor_budget_trips_on_replay() {
        use no_object::Limits;
        let t = TempDir::new("gov");
        let db = populated(&t.0);
        drop(db);
        let limits = Limits {
            max_memory_bytes: 8,
            ..Limits::default()
        };
        let options = DbOptions {
            governor: Some(Governor::new(limits)),
            ..DbOptions::default()
        };
        let err = Db::open(&t.0, options).unwrap_err();
        assert!(matches!(err, StorageError::Resource(_)), "got {err}");
    }

    #[test]
    fn wal_without_snapshot_is_corruption() {
        let t = TempDir::new("orphan");
        std::fs::write(t.0.join(WAL_FILE), crate::wal::header_bytes(0)).unwrap();
        let err = Db::open(&t.0, DbOptions::default()).unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn leftover_tmp_snapshot_is_cleaned_up() {
        let t = TempDir::new("tmpclean");
        let db = populated(&t.0);
        drop(db);
        std::fs::write(t.0.join(SNAPSHOT_TMP), b"half-written garbage").unwrap();
        let db = Db::open(&t.0, DbOptions::default()).unwrap();
        assert!(!t.0.join(SNAPSHOT_TMP).exists());
        assert_eq!(db.instance().relation("G").len(), 2);
    }
}
