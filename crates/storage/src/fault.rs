//! Deterministic I/O fault injection — PR 1's governor fault machinery
//! extended to the storage layer.
//!
//! Every I/O operation the storage layer performs (file creation, write,
//! fsync, rename, truncate) consults a shared [`IoFaults`] handle before
//! touching the OS. With the `faultinject` feature (or inside this
//! crate's own tests), [`IoFaults::arm`] plants a deterministic fault at
//! the *n*-th subsequent matching operation:
//!
//! * [`FaultMode::Crash`] — the operation fails without side effects,
//!   modelling a process kill before the syscall;
//! * [`FaultMode::ShortWrite`] — a write persists only its first `k`
//!   bytes and then fails, modelling a torn write at the kill point;
//! * [`FaultMode::FlipByte`] — a write silently persists with one bit of
//!   the chosen byte inverted, modelling latent media corruption that
//!   only the checksums can catch later.
//!
//! Injected failures surface as ordinary [`StorageError::Io`] values
//! whose message starts with [`INJECTED`], so the crash-point sweep can
//! tell an injected kill from a real environmental failure. Without the
//! feature every hook compiles to an inlined no-op.
//!
//! [`StorageError::Io`]: crate::StorageError::Io

use std::sync::Arc;

/// Marker prefix on the message of injected I/O errors.
pub const INJECTED: &str = "injected fault";

/// Which class of I/O operation a fault is armed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Appending or writing file bytes.
    Write,
    /// `fsync` of a file or directory.
    Sync,
    /// Atomic rename (snapshot publication).
    Rename,
    /// File creation/truncation (WAL reset, snapshot temp).
    Create,
    /// Truncation of a torn WAL tail during recovery.
    Truncate,
}

/// What happens when the armed operation is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail the operation with no side effects.
    Crash,
    /// For writes: persist only the first `k` bytes, then fail. Other
    /// operations treat this as [`FaultMode::Crash`].
    ShortWrite(usize),
    /// For writes: persist the buffer with bit 0 of byte `i` (modulo the
    /// buffer length) inverted, and report success. Other operations
    /// ignore the fault. The corruption stays latent until a checksum
    /// trips over it.
    FlipByte(usize),
}

/// Shared handle arming deterministic I/O faults. Cheap to clone; clones
/// share one countdown, like [`no_object::Governor`] clones share one
/// budget.
///
/// [`no_object::Governor`]: no_object::Governor
#[derive(Debug, Clone, Default)]
pub struct IoFaults {
    #[cfg(any(test, feature = "faultinject"))]
    inner: Arc<imp::Inner>,
    #[cfg(not(any(test, feature = "faultinject")))]
    _inner: Arc<()>,
}

/// The outcome of consulting the fault handle before a write. Without
/// the `faultinject` feature only [`WriteOutcome::Ok`] is ever built.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(not(any(test, feature = "faultinject")), allow(dead_code))]
pub(crate) enum WriteOutcome {
    /// Proceed normally.
    Ok,
    /// Persist only this many bytes, then fail.
    Short(usize),
    /// Persist this (corrupted) buffer instead and report success.
    Corrupted(Vec<u8>),
    /// Fail without writing.
    Crash,
}

impl IoFaults {
    /// A handle with no fault armed.
    pub fn none() -> Self {
        IoFaults::default()
    }

    /// Arm a fault at the `n`-th (1-based) subsequent operation of `kind`
    /// (`None` counts every operation). Replaces any previously armed
    /// fault. Compiled only under `cfg(test)` or the `faultinject`
    /// feature.
    #[cfg(any(test, feature = "faultinject"))]
    pub fn arm(&self, kind: Option<OpKind>, n: u64, mode: FaultMode) {
        self.inner.arm(kind, n, mode);
    }

    /// Disarm any pending fault.
    #[cfg(any(test, feature = "faultinject"))]
    pub fn disarm(&self) {
        self.inner.disarm();
    }

    /// Total I/O operations observed by this handle (armed or not) — the
    /// sweep uses a fault-free run to size its crash-point loop.
    #[cfg(any(test, feature = "faultinject"))]
    pub fn ops(&self) -> u64 {
        self.inner.ops()
    }

    /// Consult the handle before a non-write operation of `kind`.
    /// `Ok(())` means proceed; `Err(())` means the operation must fail as
    /// an injected crash.
    #[cfg(any(test, feature = "faultinject"))]
    pub(crate) fn before(&self, kind: OpKind) -> Result<(), ()> {
        match self.inner.fire(kind) {
            Some(FaultMode::FlipByte(_)) | None => Ok(()),
            Some(_) => Err(()),
        }
    }

    #[cfg(not(any(test, feature = "faultinject")))]
    #[inline(always)]
    pub(crate) fn before(&self, _kind: OpKind) -> Result<(), ()> {
        Ok(())
    }

    /// Consult the handle before writing `buf`.
    #[cfg(any(test, feature = "faultinject"))]
    pub(crate) fn before_write(&self, buf: &[u8]) -> WriteOutcome {
        match self.inner.fire(OpKind::Write) {
            None => WriteOutcome::Ok,
            Some(FaultMode::Crash) => WriteOutcome::Crash,
            Some(FaultMode::ShortWrite(k)) => WriteOutcome::Short(k.min(buf.len())),
            Some(FaultMode::FlipByte(i)) => {
                if buf.is_empty() {
                    return WriteOutcome::Ok;
                }
                let mut owned = buf.to_vec();
                let idx = i % owned.len();
                owned[idx] ^= 1;
                WriteOutcome::Corrupted(owned)
            }
        }
    }

    #[cfg(not(any(test, feature = "faultinject")))]
    #[inline(always)]
    pub(crate) fn before_write(&self, _buf: &[u8]) -> WriteOutcome {
        WriteOutcome::Ok
    }
}

#[cfg(any(test, feature = "faultinject"))]
mod imp {
    use super::{FaultMode, OpKind};
    use conc::{AtomicU64, Mutex};
    use std::sync::atomic::Ordering;

    #[derive(Debug, Default)]
    pub(super) struct Inner {
        /// Total operations observed, armed or not.
        ops: AtomicU64,
        plan: Mutex<Option<Plan>>,
    }

    #[derive(Debug)]
    struct Plan {
        kind: Option<OpKind>,
        /// Matching operations remaining until the fault fires.
        countdown: u64,
        mode: FaultMode,
    }

    impl Inner {
        pub(super) fn arm(&self, kind: Option<OpKind>, n: u64, mode: FaultMode) {
            *self.plan.lock() = Some(Plan {
                kind,
                countdown: n.max(1),
                mode,
            });
        }

        pub(super) fn disarm(&self) {
            *self.plan.lock() = None;
        }

        pub(super) fn ops(&self) -> u64 {
            self.ops.load(Ordering::Relaxed)
        }

        pub(super) fn fire(&self, kind: OpKind) -> Option<FaultMode> {
            self.ops.fetch_add(1, Ordering::Relaxed);
            let mut guard = self.plan.lock();
            let plan = guard.as_mut()?;
            if plan.kind.is_some_and(|k| k != kind) {
                return None;
            }
            plan.countdown -= 1;
            if plan.countdown == 0 {
                let mode = plan.mode;
                *guard = None;
                Some(mode)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_fires_on_nth_matching_op() {
        let f = IoFaults::none();
        f.arm(Some(OpKind::Sync), 2, FaultMode::Crash);
        assert_eq!(f.before(OpKind::Write), Ok(())); // non-matching
        assert_eq!(f.before(OpKind::Sync), Ok(())); // 1st sync
        assert_eq!(f.before(OpKind::Sync), Err(())); // 2nd sync: crash
        assert_eq!(f.before(OpKind::Sync), Ok(())); // disarmed after firing
        assert_eq!(f.ops(), 4);
    }

    #[test]
    fn short_write_and_flip() {
        let f = IoFaults::none();
        f.arm(Some(OpKind::Write), 1, FaultMode::ShortWrite(3));
        assert_eq!(f.before_write(b"hello"), WriteOutcome::Short(3));
        f.arm(Some(OpKind::Write), 1, FaultMode::ShortWrite(99));
        assert_eq!(f.before_write(b"hi"), WriteOutcome::Short(2));
        f.arm(Some(OpKind::Write), 1, FaultMode::FlipByte(6));
        assert_eq!(
            f.before_write(b"abcd"),
            WriteOutcome::Corrupted(vec![b'a', b'b', b'c' ^ 1, b'd'])
        );
    }

    #[test]
    fn any_kind_filter_counts_everything() {
        let f = IoFaults::none();
        f.arm(None, 3, FaultMode::Crash);
        assert_eq!(f.before(OpKind::Create), Ok(()));
        assert_eq!(f.before_write(b"x"), WriteOutcome::Ok);
        assert_eq!(f.before(OpKind::Rename), Err(()));
    }

    #[test]
    fn clones_share_the_countdown() {
        let f = IoFaults::none();
        let g = f.clone();
        f.arm(None, 2, FaultMode::Crash);
        assert_eq!(g.before(OpKind::Sync), Ok(()));
        assert_eq!(f.before(OpKind::Sync), Err(()));
    }
}
