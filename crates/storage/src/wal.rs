//! The write-ahead log: an append-only file of length-prefixed,
//! CRC32-checksummed frames.
//!
//! ## On-disk layout
//!
//! ```text
//! header  := magic "NDBWAL01" (8 bytes) ++ epoch (u64 LE)
//! frame   := len (u32 LE) ++ crc (u32 LE) ++ payload (len bytes)
//! wal.log := header ++ frame*
//! ```
//!
//! `crc` is the CRC32 of the four length bytes followed by the payload,
//! so a frame whose length field was torn mid-write cannot masquerade as
//! a shorter valid frame. Payloads are clauses of the text format
//! (`schema R(U).` / `R('a', 'b').`): self-describing, so replay does not
//! depend on the atom numbering that `enc(I)` rows would bake in.
//!
//! [`scan_wal`] is a pure function over the file bytes — all torn-tail /
//! mid-log-corruption classification lives there, where proptests can
//! reach it without touching a filesystem.

use crate::fault::IoFaults;
use crate::{fsio, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"NDBWAL01";
/// Bytes of header before the first frame: magic plus the epoch.
pub const WAL_HEADER_LEN: u64 = 16;
/// Bytes of frame overhead before the payload: length plus checksum.
pub const FRAME_OVERHEAD: u64 = 8;

/// The result of scanning a WAL file's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedWal {
    /// The epoch from the header, or `None` if the header itself was torn
    /// (the crash hit the WAL reset; the log holds no frames).
    pub epoch: Option<u64>,
    /// Payloads of every intact frame, in log order.
    pub frames: Vec<Vec<u8>>,
    /// Length of the valid prefix; bytes past this are a torn tail.
    pub keep_len: u64,
    /// True when a torn tail (or torn header) was found past `keep_len`.
    pub torn: bool,
}

/// Scan the raw bytes of a WAL file, separating the valid frame prefix
/// from a torn tail, and refusing outright on mid-log corruption.
///
/// Classification rules:
///
/// * fewer than [`FRAME_OVERHEAD`] bytes remain, or the length field
///   points past end-of-file → **torn tail** (an append was killed
///   mid-write); the prefix before it is valid;
/// * checksum mismatch on the *final* frame of the file → **torn tail**
///   (the payload bytes themselves were torn);
/// * checksum mismatch with more bytes after the frame → **mid-log
///   corruption**: later data proves the log continued past this frame,
///   so the damage is not a torn append and recovery would silently drop
///   acknowledged writes. Refuse with [`StorageError::Corrupt`].
pub fn scan_wal(bytes: &[u8], path: &Path) -> Result<ScannedWal, StorageError> {
    // Header: a short or absent header is a torn WAL reset — valid crash
    // state, no frames. Wrong magic bytes are corruption.
    if bytes.len() < WAL_HEADER_LEN as usize {
        let n = bytes.len().min(WAL_MAGIC.len());
        if bytes[..n] != WAL_MAGIC[..n] {
            return Err(StorageError::corrupt(path, 0, "bad write-ahead log magic"));
        }
        return Ok(ScannedWal {
            epoch: None,
            frames: Vec::new(),
            keep_len: 0,
            torn: true,
        });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(StorageError::corrupt(path, 0, "bad write-ahead log magic"));
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));

    let mut frames = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    loop {
        let rem = bytes.len() - pos;
        if rem == 0 {
            return Ok(ScannedWal {
                epoch: Some(epoch),
                frames,
                keep_len: pos as u64,
                torn: false,
            });
        }
        let torn = |frames: Vec<Vec<u8>>| ScannedWal {
            epoch: Some(epoch),
            frames,
            keep_len: pos as u64,
            torn: true,
        };
        if rem < FRAME_OVERHEAD as usize {
            return Ok(torn(frames));
        }
        let len_bytes: [u8; 4] = bytes[pos..pos + 4].try_into().expect("4 bytes");
        let len = u32::from_le_bytes(len_bytes) as usize;
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > rem - FRAME_OVERHEAD as usize {
            // Length points past EOF: either a torn append, or a torn
            // length field. Both truncate to the same valid prefix.
            return Ok(torn(frames));
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        let mut c = crate::crc::Crc32::new();
        c.update(&len_bytes);
        c.update(payload);
        if c.finish() != stored_crc {
            if pos + 8 + len == bytes.len() {
                // Final frame of the file: a torn append.
                return Ok(torn(frames));
            }
            return Err(StorageError::corrupt(
                path,
                pos as u64,
                "frame checksum mismatch with live data after it",
            ));
        }
        frames.push(payload.to_vec());
        pos += 8 + len;
    }
}

/// Build the on-disk bytes of one frame for `payload`.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("frame payload fits in u32");
    let len_bytes = len.to_le_bytes();
    let mut c = crate::crc::Crc32::new();
    c.update(&len_bytes);
    c.update(payload);
    let crc = c.finish();
    let mut out = Vec::with_capacity(FRAME_OVERHEAD as usize + payload.len());
    out.extend_from_slice(&len_bytes);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Build the 16-byte header for `epoch`.
pub fn header_bytes(epoch: u64) -> [u8; 16] {
    let mut h = [0u8; 16];
    h[..8].copy_from_slice(WAL_MAGIC);
    h[8..].copy_from_slice(&epoch.to_le_bytes());
    h
}

/// An open WAL with append access. All I/O is routed through the shared
/// [`IoFaults`] handle. After any I/O failure the writer is *poisoned*:
/// the on-disk tail is in an unknown state, so further appends refuse
/// until the database is reopened (which truncates the torn tail).
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: File,
    faults: IoFaults,
    frames: u64,
    len: u64,
    poisoned: bool,
}

impl WalWriter {
    /// Create (truncating) a fresh WAL at `path` with `epoch`. Does not
    /// sync; callers decide when the header must be durable.
    pub fn create(path: &Path, epoch: u64, faults: &IoFaults) -> Result<Self, StorageError> {
        let mut file = fsio::create(faults, path)?;
        fsio::write_all(faults, &mut file, path, &header_bytes(epoch))?;
        Ok(WalWriter {
            path: path.to_path_buf(),
            file,
            faults: faults.clone(),
            frames: 0,
            len: WAL_HEADER_LEN,
            poisoned: false,
        })
    }

    /// Open an existing WAL for appending after a scan decided that the
    /// first `keep_len` bytes (holding `frames` frames) are valid. Any
    /// torn tail past `keep_len` is truncated away first.
    pub fn open_append(
        path: &Path,
        keep_len: u64,
        frames: u64,
        truncate: bool,
        faults: &IoFaults,
    ) -> Result<Self, StorageError> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StorageError::io("open", path, e))?;
        if truncate {
            fsio::set_len(faults, &file, path, keep_len)?;
        }
        file.seek(SeekFrom::Start(keep_len))
            .map_err(|e| StorageError::io("seek", path, e))?;
        Ok(WalWriter {
            path: path.to_path_buf(),
            file,
            faults: faults.clone(),
            frames,
            len: keep_len,
            poisoned: false,
        })
    }

    /// Append one frame. On failure the writer poisons itself — the tail
    /// may be torn, so accepting further appends would turn a torn tail
    /// into mid-log corruption.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StorageError> {
        if self.poisoned {
            return Err(StorageError::Invalid {
                detail: "write-ahead log is in an unknown state after an i/o failure; \
                         reopen the database to recover"
                    .to_string(),
            });
        }
        if u32::try_from(payload.len()).is_err() {
            return Err(StorageError::Invalid {
                detail: format!(
                    "frame payload of {} bytes exceeds the u32 limit",
                    payload.len()
                ),
            });
        }
        let frame = frame_bytes(payload);
        if let Err(e) = fsio::write_all(&self.faults, &mut self.file, &self.path, &frame) {
            self.poisoned = true;
            return Err(e);
        }
        self.frames += 1;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// `fsync` the log.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        if let Err(e) = fsio::sync(&self.faults, &self.file, &self.path) {
            self.poisoned = true;
            return Err(e);
        }
        Ok(())
    }

    /// Mark the writer unusable (the database's save sequence failed
    /// partway; only a reopen can re-establish a consistent tail).
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Number of frames written through or accounted to this writer.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Current valid length of the log in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal_with(epoch: u64, payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = header_bytes(epoch).to_vec();
        for p in payloads {
            bytes.extend_from_slice(&frame_bytes(p));
        }
        bytes
    }

    #[test]
    fn scan_roundtrips_frames() {
        let bytes = wal_with(7, &[b"schema G(U, U).", b"G('a', 'b').", b""]);
        let scan = scan_wal(&bytes, Path::new("w")).unwrap();
        assert_eq!(scan.epoch, Some(7));
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.frames[0], b"schema G(U, U).");
        assert_eq!(scan.frames[2], b"");
        assert_eq!(scan.keep_len, bytes.len() as u64);
        assert!(!scan.torn);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let good = wal_with(1, &[b"G('a').", b"G('b')."]);
        // Chop the file at every byte boundary inside the final frame:
        // always a torn tail keeping exactly the first frame.
        let first_end = WAL_HEADER_LEN as usize + FRAME_OVERHEAD as usize + b"G('a').".len();
        for cut in first_end + 1..good.len() {
            let scan = scan_wal(&good[..cut], Path::new("w")).unwrap();
            assert_eq!(scan.frames.len(), 1, "cut at {cut}");
            assert_eq!(scan.keep_len, first_end as u64, "cut at {cut}");
            assert!(scan.torn, "cut at {cut}");
        }
    }

    #[test]
    fn torn_header_is_empty_wal() {
        let good = wal_with(3, &[]);
        for cut in 0..WAL_HEADER_LEN as usize {
            let scan = scan_wal(&good[..cut], Path::new("w")).unwrap();
            assert_eq!(scan.epoch, None, "cut at {cut}");
            assert!(scan.frames.is_empty());
            assert_eq!(scan.keep_len, 0);
            assert!(scan.torn);
        }
    }

    #[test]
    fn corrupt_final_frame_is_torn_but_mid_log_is_fatal() {
        let mut bytes = wal_with(1, &[b"G('a').", b"G('b')."]);
        let second_start = WAL_HEADER_LEN as usize + FRAME_OVERHEAD as usize + b"G('a').".len();
        // Flip a payload byte of the final frame: torn tail.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let scan = scan_wal(&bytes, Path::new("w")).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.keep_len, second_start as u64);
        assert!(scan.torn);

        // Flip a byte of the *first* frame: live data follows, so this is
        // mid-log corruption and must refuse.
        let mut bytes = wal_with(1, &[b"G('a').", b"G('b')."]);
        bytes[second_start - 1] ^= 0x40;
        let err = scan_wal(&bytes, Path::new("w")).unwrap_err();
        assert!(err.is_corruption(), "got {err}");
    }

    #[test]
    fn bad_magic_is_corruption() {
        let mut bytes = wal_with(1, &[]);
        bytes[0] = b'X';
        assert!(scan_wal(&bytes, Path::new("w"))
            .unwrap_err()
            .is_corruption());
        assert!(scan_wal(b"XYZ", Path::new("w"))
            .unwrap_err()
            .is_corruption());
    }

    #[test]
    fn length_field_past_eof_is_torn() {
        let mut bytes = wal_with(1, &[b"G('a')."]);
        let mut frame = frame_bytes(b"G('b').");
        frame[0] = 0xFF;
        frame[1] = 0xFF; // length now far past EOF
        let valid_len = bytes.len() as u64;
        bytes.extend_from_slice(&frame);
        let scan = scan_wal(&bytes, Path::new("w")).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.keep_len, valid_len);
        assert!(scan.torn);
    }

    #[test]
    fn writer_appends_scannable_frames() {
        let dir = std::env::temp_dir().join(format!("no_storage_walw_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let faults = IoFaults::none();
        let mut w = WalWriter::create(&path, 5, &faults).unwrap();
        w.append(b"schema G(U).").unwrap();
        w.append(b"G('a').").unwrap();
        w.sync().unwrap();
        assert_eq!(w.frames(), 2);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, w.len());
        let scan = scan_wal(&bytes, &path).unwrap();
        assert_eq!(scan.epoch, Some(5));
        assert_eq!(
            scan.frames,
            vec![b"schema G(U).".to_vec(), b"G('a').".to_vec()]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_poisons_after_injected_failure() {
        let dir = std::env::temp_dir().join(format!("no_storage_walp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let faults = IoFaults::none();
        let mut w = WalWriter::create(&path, 1, &faults).unwrap();
        w.append(b"G('a').").unwrap();
        faults.arm(Some(crate::OpKind::Write), 1, crate::FaultMode::Crash);
        let err = w.append(b"G('b').").unwrap_err();
        assert!(err.to_string().contains(crate::fault::INJECTED));
        // Disarmed now, but the writer must still refuse.
        let err = w.append(b"G('c').").unwrap_err();
        assert!(matches!(err, StorageError::Invalid { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
