//! Snapshots: the whole database — atom universe, schema, and relations —
//! serialised with the paper's tape encoding `enc(I)` and guarded by a
//! CRC32 over the body.
//!
//! ## On-disk layout
//!
//! ```text
//! snapshot := magic "NDBSNAP1" (8 bytes)
//!           ++ epoch    (u64 LE)
//!           ++ body_len (u64 LE)
//!           ++ crc      (u32 LE, CRC32 of epoch ++ body_len ++ body)
//!           ++ body
//! body     := atom_count (u32 LE)
//!           ++ (name_len (u32 LE) ++ name utf-8)*      -- universe, in order
//!           ++ schema_len (u64 LE) ++ schema decl text -- `schema R(T…).` lines
//!           ++ enc_len    (u64 LE) ++ enc(I) tape      -- ASCII {0,1,(,),{,},,}
//! ```
//!
//! The universe section pins the atom numbering, so the `enc(I)` tape is
//! decoded with [`AtomOrder::identity`] over exactly that universe — the
//! snapshot is self-contained and byte-stable for a given database state.
//! Decoding is cursor-based with every length checked against the bytes
//! actually present: hostile or truncated input yields a structured
//! [`StorageError::Corrupt`], never a panic or an oversized allocation.

use crate::StorageError;
use no_object::encoding::{decode_instance, encode_instance};
use no_object::text::parse_database;
use no_object::{AtomOrder, Instance, Universe};
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"NDBSNAP1";
/// Bytes of header before the body: magic, epoch, body length, body CRC.
pub const SNAP_HEADER_LEN: usize = 8 + 8 + 8 + 4;

/// A decoded snapshot: the database state at the moment it was written.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The epoch this snapshot was written at.
    pub epoch: u64,
    /// The atom universe, with the numbering the `enc(I)` tape was
    /// encoded under.
    pub universe: Universe,
    /// The decoded instance (its schema travels inside).
    pub instance: Instance,
}

/// Serialise a snapshot of `(universe, instance)` at `epoch`.
pub fn encode_snapshot(epoch: u64, universe: &Universe, instance: &Instance) -> Vec<u8> {
    let mut body = Vec::new();
    let atom_count = u32::try_from(universe.len()).expect("universe fits in u32");
    body.extend_from_slice(&atom_count.to_le_bytes());
    for a in universe.atoms() {
        let name = universe.name(a).as_bytes();
        let len = u32::try_from(name.len()).expect("atom name fits in u32");
        body.extend_from_slice(&len.to_le_bytes());
        body.extend_from_slice(name);
    }

    let mut schema_text = String::new();
    for rel in instance.schema().relations() {
        schema_text.push_str(&no_object::text::render_schema_decl(rel));
        schema_text.push('\n');
    }
    body.extend_from_slice(&(schema_text.len() as u64).to_le_bytes());
    body.extend_from_slice(schema_text.as_bytes());

    let order = AtomOrder::identity(universe);
    let enc = encode_instance(&order, instance);
    body.extend_from_slice(&(enc.len() as u64).to_le_bytes());
    body.extend_from_slice(enc.as_bytes());

    let mut out = Vec::with_capacity(SNAP_HEADER_LEN + body.len());
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&snap_crc(epoch, &body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// The snapshot checksum covers the epoch and length fields as well as
/// the body, so a bit flip anywhere outside the CRC field itself is
/// detected (and a flip inside it trivially mismatches).
fn snap_crc(epoch: u64, body: &[u8]) -> u32 {
    let mut c = crate::crc::Crc32::new();
    c.update(&epoch.to_le_bytes());
    c.update(&(body.len() as u64).to_le_bytes());
    c.update(body);
    c.finish()
}

/// A checked cursor over untrusted bytes: every read verifies the bytes
/// are present before touching them, so corrupt length fields produce
/// errors instead of panics or absurd allocations.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StorageError> {
        if self.bytes.len() - self.pos < n {
            return Err(StorageError::corrupt(
                self.path,
                self.pos as u64,
                format!(
                    "truncated {what}: wanted {n} bytes, {} remain",
                    self.bytes.len() - self.pos
                ),
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn len_checked(&mut self, what: &str) -> Result<usize, StorageError> {
        let n = self.u64(what)?;
        let rem = (self.bytes.len() - self.pos) as u64;
        if n > rem {
            return Err(StorageError::corrupt(
                self.path,
                self.pos as u64 - 8,
                format!("{what} length {n} exceeds the {rem} bytes remaining"),
            ));
        }
        Ok(n as usize)
    }

    fn str(&mut self, n: usize, what: &str) -> Result<&'a str, StorageError> {
        let at = self.pos as u64;
        std::str::from_utf8(self.take(n, what)?)
            .map_err(|e| StorageError::corrupt(self.path, at, format!("{what} is not utf-8: {e}")))
    }
}

/// Decode a snapshot file's bytes, verifying magic, length, checksum, and
/// every interior structure.
pub fn decode_snapshot(bytes: &[u8], path: &Path) -> Result<Snapshot, StorageError> {
    if bytes.len() < SNAP_HEADER_LEN {
        return Err(StorageError::corrupt(
            path,
            0,
            format!("snapshot header truncated at {} bytes", bytes.len()),
        ));
    }
    if &bytes[..8] != SNAP_MAGIC {
        return Err(StorageError::corrupt(path, 0, "bad snapshot magic"));
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let body_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    let body = &bytes[SNAP_HEADER_LEN..];
    if body_len != body.len() as u64 {
        return Err(StorageError::corrupt(
            path,
            16,
            format!(
                "snapshot body is {} bytes but header claims {body_len}",
                body.len()
            ),
        ));
    }
    if snap_crc(epoch, body) != stored_crc {
        return Err(StorageError::corrupt(
            path,
            24,
            "snapshot checksum mismatch",
        ));
    }

    let mut cur = Cursor {
        bytes: body,
        pos: 0,
        path,
    };
    let atom_count = cur.u32("atom count")?;
    let mut universe = Universe::default();
    for i in 0..atom_count {
        let n = cur.u32("atom name length")? as usize;
        let name = cur.str(n, "atom name")?.to_string();
        universe.intern(&name);
        if universe.len() != i as usize + 1 {
            return Err(StorageError::corrupt(
                cur.path,
                cur.pos as u64,
                format!("duplicate atom name {name:?} in snapshot universe"),
            ));
        }
    }

    let schema_len = cur.len_checked("schema section")?;
    let schema_text = cur.str(schema_len, "schema section")?;
    let before = universe.len();
    let (schema, decls_instance) = parse_database(schema_text, &mut universe)
        .map_err(|e| StorageError::corrupt(path, 0, format!("snapshot schema section: {e}")))?;
    if universe.len() != before
        || decls_instance
            .schema()
            .relations()
            .any(|r| !decls_instance.relation(&r.name).is_empty())
    {
        return Err(StorageError::corrupt(
            path,
            0,
            "snapshot schema section contains facts",
        ));
    }

    let enc_len = cur.len_checked("enc(I) section")?;
    let enc = cur.str(enc_len, "enc(I) section")?;
    if cur.pos != body.len() {
        return Err(StorageError::corrupt(
            path,
            cur.pos as u64,
            format!(
                "{} trailing bytes after enc(I) section",
                body.len() - cur.pos
            ),
        ));
    }
    let order = AtomOrder::identity(&universe);
    let instance = decode_instance(&order, &schema, enc)
        .map_err(|e| StorageError::corrupt(path, 0, format!("snapshot enc(I) section: {e}")))?;

    Ok(Snapshot {
        epoch,
        universe,
        instance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{RelationSchema, Schema, Type, Value};

    fn sample() -> (Universe, Instance) {
        let mut u = Universe::default();
        let a = u.intern("a");
        let b = u.intern("b");
        let mut schema = Schema::new();
        schema.add(RelationSchema::new("G", vec![Type::Atom, Type::Atom]));
        schema.add(RelationSchema::new("S", vec![Type::set(Type::Atom)]));
        let mut inst = Instance::empty(schema);
        inst.insert("G", vec![Value::Atom(a), Value::Atom(b)]);
        inst.insert("G", vec![Value::Atom(b), Value::Atom(b)]);
        inst.insert("S", vec![Value::set(vec![Value::Atom(a), Value::Atom(b)])]);
        (u, inst)
    }

    #[test]
    fn roundtrip() {
        let (u, inst) = sample();
        let bytes = encode_snapshot(9, &u, &inst);
        let snap = decode_snapshot(&bytes, Path::new("s")).unwrap();
        assert_eq!(snap.epoch, 9);
        assert_eq!(snap.universe.len(), u.len());
        assert_eq!(snap.instance, inst);
        // Deterministic: re-encoding the decoded state is byte-identical.
        assert_eq!(encode_snapshot(9, &snap.universe, &snap.instance), bytes);
    }

    #[test]
    fn empty_database_roundtrips() {
        let u = Universe::default();
        let inst = Instance::empty(Schema::new());
        let bytes = encode_snapshot(0, &u, &inst);
        let snap = decode_snapshot(&bytes, Path::new("s")).unwrap();
        assert_eq!(snap.epoch, 0);
        assert!(snap.universe.is_empty());
        assert!(snap.instance.schema().is_empty());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let (u, inst) = sample();
        let good = encode_snapshot(1, &u, &inst);
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            let err = decode_snapshot(&bad, Path::new("s")).unwrap_err();
            assert!(err.is_corruption(), "flip at {i}: {err}");
        }
    }

    #[test]
    fn truncations_never_panic() {
        let (u, inst) = sample();
        let good = encode_snapshot(1, &u, &inst);
        for cut in 0..good.len() {
            let err = decode_snapshot(&good[..cut], Path::new("s")).unwrap_err();
            assert!(err.is_corruption(), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A body claiming 2^60 atoms must fail on the bytes, not OOM.
        let mut body = Vec::new();
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAP_MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&(body.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&snap_crc(0, &body).to_le_bytes());
        bytes.extend_from_slice(&body);
        let err = decode_snapshot(&bytes, Path::new("s")).unwrap_err();
        assert!(err.is_corruption());
    }
}
