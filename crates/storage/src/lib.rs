//! Durable storage for complex-object databases: a checksummed
//! write-ahead log, `enc(I)` snapshots, and crash-anywhere recovery.
//!
//! A durable database is a directory holding exactly two long-lived
//! files:
//!
//! * **`snapshot.bin`** — the whole database (atom universe, schema, and
//!   every relation) in the paper's standard tape encoding `enc(I)`
//!   (Section 2, reproduced byte-for-byte by `no_object::encoding`), with
//!   a CRC32 over the body. Written atomically: a temp file is fsynced
//!   and renamed over the old snapshot, so a crash leaves either the old
//!   or the new snapshot, never a half-written one.
//! * **`wal.log`** — an append-only write-ahead log of mutations since
//!   the snapshot. Each frame is length-prefixed and CRC32-checksummed
//!   and carries one clause of the text format (`schema R(U).` or
//!   `R('a').`), so replay is parse + apply in log order and the log is
//!   legible with a hex dump and the paper in hand.
//!
//! Snapshot and WAL are sequenced by an **epoch** number: `save()` writes
//! snapshot `e+1`, then resets the WAL to epoch `e+1`. On open, a WAL
//! whose epoch is older than the snapshot's is stale (the crash landed
//! between the rename and the WAL reset) and is discarded — its frames
//! are already folded into the snapshot.
//!
//! Recovery on open replays the WAL over the snapshot and classifies
//! damage precisely:
//!
//! * an incomplete frame at the physical end of the log is a **torn
//!   tail** — the tail is truncated and the prefix recovered;
//! * a checksum mismatch with valid data *after* it is **mid-log
//!   corruption** — open refuses with a structured
//!   [`StorageError::Corrupt`], never a panic, and never serves silently
//!   wrong data.
//!
//! The `faultinject` feature extends PR 1's deterministic fault machinery
//! to the I/O layer: [`IoFaults`] fails the Nth write/fsync/rename,
//! performs short writes, or flips a chosen byte, so tests can kill the
//! writer at every I/O operation and prove that reopening always yields a
//! prefix-consistent database.

pub mod crc;
pub mod db;
pub mod delta;
pub mod fault;
mod fsio;
pub mod snapshot;
pub mod wal;

pub use db::{verify, Db, DbOptions, ImportStats, OpenStats, SyncPolicy, VerifyReport};
pub use delta::ViewsCheckpoint;
pub use fault::{FaultMode, IoFaults, OpKind};

use no_object::ResourceError;
use std::fmt;

/// The name of the snapshot file inside a database directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// The name of the temporary snapshot written before the atomic rename.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";
/// The name of the write-ahead log inside a database directory.
pub const WAL_FILE: &str = "wal.log";
/// The name of the temporary delta file written before its atomic rename.
pub const DELTA_TMP: &str = "delta.tmp";
/// The name of the view-checkpoint file inside a database directory.
pub const VIEWS_FILE: &str = "views.bin";
/// The name of the temporary view checkpoint before its atomic rename.
pub const VIEWS_TMP: &str = "views.tmp";

/// Any failure from the storage layer. Structured, cloneable, and — like
/// every other error in this workspace — never a panic: corrupted bytes
/// on disk surface as [`StorageError::Corrupt`] with the offending file
/// and offset.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// An operating-system I/O failure (including injected crash points).
    Io {
        /// The operation that failed (`"write"`, `"fsync"`, `"rename"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: String,
        /// The OS error kind.
        kind: std::io::ErrorKind,
        /// The OS error message.
        message: String,
    },
    /// On-disk bytes failed validation: bad magic, checksum mismatch with
    /// live data after it, an undecodable snapshot, or a WAL frame whose
    /// clause cannot be applied. Opening refuses rather than serving a
    /// silently wrong database.
    Corrupt {
        /// The offending file.
        path: String,
        /// Byte offset where validation failed.
        at: u64,
        /// What failed.
        detail: String,
    },
    /// A caller mistake against the live database (unknown relation,
    /// arity or type mismatch on insert, duplicate declaration) — the
    /// database is unchanged and nothing was logged.
    Invalid {
        /// What was wrong.
        detail: String,
    },
    /// A governor budget tripped while accounting for replayed data
    /// (memory charged for the arenas rebuilt during recovery).
    Resource(ResourceError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io {
                op, path, message, ..
            } => write!(f, "i/o error during {op} on {path}: {message}"),
            StorageError::Corrupt { path, at, detail } => {
                write!(f, "corrupt store: {path} at byte {at}: {detail}")
            }
            StorageError::Invalid { detail } => write!(f, "invalid operation: {detail}"),
            StorageError::Resource(r) => write!(f, "storage recovery: {r}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Resource(r) => Some(r),
            _ => None,
        }
    }
}

impl From<ResourceError> for StorageError {
    fn from(r: ResourceError) -> Self {
        StorageError::Resource(r)
    }
}

impl StorageError {
    pub(crate) fn io(op: &'static str, path: &std::path::Path, e: std::io::Error) -> Self {
        StorageError::Io {
            op,
            path: path.display().to_string(),
            kind: e.kind(),
            message: e.to_string(),
        }
    }

    pub(crate) fn corrupt(path: &std::path::Path, at: u64, detail: impl Into<String>) -> Self {
        StorageError::Corrupt {
            path: path.display().to_string(),
            at,
            detail: detail.into(),
        }
    }

    /// True when this failure is corruption detected on disk (as opposed
    /// to an I/O failure, a caller mistake, or a budget trip).
    pub fn is_corruption(&self) -> bool {
        matches!(self, StorageError::Corrupt { .. })
    }
}
