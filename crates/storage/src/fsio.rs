//! Fault-aware filesystem primitives: every OS call the storage layer
//! makes goes through one of these wrappers, which consult the shared
//! [`IoFaults`] handle first. This is the single choke point that makes
//! the crash-anywhere sweep exhaustive — killing the writer at the Nth
//! operation here covers every I/O the layer can perform.

use crate::fault::{IoFaults, OpKind, WriteOutcome, INJECTED};
use crate::StorageError;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;

/// An injected failure, shaped like a real OS error but tagged so tests
/// can tell them apart.
fn injected(op: &'static str, path: &Path) -> StorageError {
    StorageError::Io {
        op,
        path: path.display().to_string(),
        kind: std::io::ErrorKind::Other,
        message: format!("{INJECTED}: {op} killed"),
    }
}

/// Create (truncating) a file.
pub(crate) fn create(faults: &IoFaults, path: &Path) -> Result<File, StorageError> {
    if faults.before(OpKind::Create).is_err() {
        return Err(injected("create", path));
    }
    File::create(path).map_err(|e| StorageError::io("create", path, e))
}

/// Write a whole buffer, honouring injected crashes, short writes, and
/// byte flips.
pub(crate) fn write_all(
    faults: &IoFaults,
    file: &mut File,
    path: &Path,
    buf: &[u8],
) -> Result<(), StorageError> {
    match faults.before_write(buf) {
        WriteOutcome::Ok => file
            .write_all(buf)
            .map_err(|e| StorageError::io("write", path, e)),
        WriteOutcome::Corrupted(owned) => file
            .write_all(&owned)
            .map_err(|e| StorageError::io("write", path, e)),
        WriteOutcome::Short(k) => {
            // Persist the torn prefix, then report the kill.
            let _ = file.write_all(&buf[..k]);
            let _ = file.sync_all();
            Err(injected("write", path))
        }
        WriteOutcome::Crash => Err(injected("write", path)),
    }
}

/// `fsync` a file.
pub(crate) fn sync(faults: &IoFaults, file: &File, path: &Path) -> Result<(), StorageError> {
    if faults.before(OpKind::Sync).is_err() {
        return Err(injected("fsync", path));
    }
    file.sync_all()
        .map_err(|e| StorageError::io("fsync", path, e))
}

/// Atomic rename.
pub(crate) fn rename(faults: &IoFaults, from: &Path, to: &Path) -> Result<(), StorageError> {
    if faults.before(OpKind::Rename).is_err() {
        return Err(injected("rename", from));
    }
    std::fs::rename(from, to).map_err(|e| StorageError::io("rename", from, e))
}

/// `fsync` a directory, making a preceding rename durable. On platforms
/// where directories cannot be opened as files this is a no-op.
pub(crate) fn sync_dir(faults: &IoFaults, dir: &Path) -> Result<(), StorageError> {
    if faults.before(OpKind::Sync).is_err() {
        return Err(injected("fsync-dir", dir));
    }
    #[cfg(unix)]
    {
        let f = File::open(dir).map_err(|e| StorageError::io("fsync-dir", dir, e))?;
        f.sync_all()
            .map_err(|e| StorageError::io("fsync-dir", dir, e))?;
    }
    Ok(())
}

/// Truncate a file to `len` bytes (torn-tail removal during recovery).
pub(crate) fn set_len(
    faults: &IoFaults,
    file: &File,
    path: &Path,
    len: u64,
) -> Result<(), StorageError> {
    if faults.before(OpKind::Truncate).is_err() {
        return Err(injected("truncate", path));
    }
    file.set_len(len)
        .map_err(|e| StorageError::io("truncate", path, e))
}
