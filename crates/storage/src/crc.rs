//! CRC32 (IEEE 802.3, polynomial `0xEDB88320`) — the per-frame and
//! per-snapshot checksum. Table-driven, built at compile time; no
//! dependencies (the build container has no crates.io access).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC32 computation.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feed bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"schema G(U, U). G('a', 'b').";
        let mut c = Crc32::new();
        for chunk in data.chunks(3) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_sum() {
        let data = b"G('a', 'b').";
        let base = crc32(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.to_vec();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
