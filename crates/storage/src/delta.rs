//! Incremental checkpoints and view checkpoints.
//!
//! A full [`Db::save`](crate::Db::save) rewrites the entire `enc(I)` tape
//! even when one tuple changed. An *incremental* checkpoint instead seals
//! the current WAL tail into an immutable **delta file** and resets the
//! log — O(changes since last checkpoint) instead of O(database):
//!
//! ```text
//! state = snapshot(e) ++ delta(e+1) ++ … ++ delta(k) ++ wal(k)
//! ```
//!
//! Each `delta-<epoch>.bin` holds the clause texts of the WAL frames it
//! replaced, newline-separated, under the same header discipline as the
//! snapshot (magic, epoch, length, CRC over all three plus the body).
//! Recovery loads the snapshot, then replays delta files at consecutive
//! epochs `e+1, e+2, …` for as long as they exist, then the WAL — whose
//! header epoch must equal `e + #deltas` (older → stale crash window,
//! discarded; newer → corruption, refused). A gap in the chain can only
//! be manufactured by deleting a file out from under the database and is
//! simply where replay stops; files past a gap are unreachable.
//!
//! **View checkpoints** (`views.bin`) piggyback on the same machinery:
//! an opaque body (the maintenance engine's serialised view states)
//! stamped with the epoch and WAL frame count it was consistent at. On
//! open, a view checkpoint from the current epoch is caught up by
//! replaying the WAL tail past its frame count; one from any older epoch
//! is stale and the views are recomputed from scratch — so a crash at
//! *any* point leaves views recoverable, at worst at recomputation cost.
//!
//! ## On-disk layout
//!
//! ```text
//! delta    := magic "NDBDELT1" (8) ++ epoch (u64 LE) ++ body_len (u64 LE)
//!           ++ crc (u32 LE, CRC32 of epoch ++ body_len ++ body) ++ body
//! body     := (clause text ++ '\n')*
//! views    := magic "NDBVIEW1" (8) ++ epoch (u64 LE) ++ frames (u64 LE)
//!           ++ body_len (u64 LE)
//!           ++ crc (u32 LE, CRC32 of epoch ++ frames ++ body_len ++ body)
//!           ++ body (opaque to this crate)
//! ```

use crate::StorageError;
use std::path::Path;

/// Magic bytes opening every incremental-checkpoint delta file.
pub const DELTA_MAGIC: &[u8; 8] = b"NDBDELT1";
/// Bytes of delta header: magic, epoch, body length, CRC.
pub const DELTA_HEADER_LEN: usize = 8 + 8 + 8 + 4;
/// Magic bytes opening the view-checkpoint file.
pub const VIEWS_MAGIC: &[u8; 8] = b"NDBVIEW1";
/// Bytes of views header: magic, epoch, frame count, body length, CRC.
pub const VIEWS_HEADER_LEN: usize = 8 + 8 + 8 + 8 + 4;

/// File name of the delta sealed at `epoch`.
pub fn delta_file_name(epoch: u64) -> String {
    format!("delta-{epoch}.bin")
}

fn delta_crc(epoch: u64, body: &[u8]) -> u32 {
    let mut c = crate::crc::Crc32::new();
    c.update(&epoch.to_le_bytes());
    c.update(&(body.len() as u64).to_le_bytes());
    c.update(body);
    c.finish()
}

/// Serialise a delta file sealing `clauses` (one text clause per WAL
/// frame, in log order) at `epoch`.
pub fn encode_delta(epoch: u64, clauses: &[Vec<u8>]) -> Vec<u8> {
    let mut body = Vec::new();
    for c in clauses {
        body.extend_from_slice(c);
        body.push(b'\n');
    }
    let mut out = Vec::with_capacity(DELTA_HEADER_LEN + body.len());
    out.extend_from_slice(DELTA_MAGIC);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&delta_crc(epoch, &body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode a delta file, verifying magic, expected epoch, length, and
/// checksum. Returns the clause texts in log order.
pub fn decode_delta(
    bytes: &[u8],
    expect_epoch: u64,
    path: &Path,
) -> Result<Vec<String>, StorageError> {
    if bytes.len() < DELTA_HEADER_LEN {
        return Err(StorageError::corrupt(
            path,
            0,
            format!("delta header truncated at {} bytes", bytes.len()),
        ));
    }
    if &bytes[..8] != DELTA_MAGIC {
        return Err(StorageError::corrupt(path, 0, "bad delta magic"));
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let body_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    let body = &bytes[DELTA_HEADER_LEN..];
    if epoch != expect_epoch {
        return Err(StorageError::corrupt(
            path,
            8,
            format!("delta file claims epoch {epoch}, chain expects {expect_epoch}"),
        ));
    }
    if body_len != body.len() as u64 {
        return Err(StorageError::corrupt(
            path,
            16,
            format!(
                "delta body is {} bytes but header claims {body_len}",
                body.len()
            ),
        ));
    }
    if delta_crc(epoch, body) != stored_crc {
        return Err(StorageError::corrupt(path, 24, "delta checksum mismatch"));
    }
    let text = std::str::from_utf8(body)
        .map_err(|e| StorageError::corrupt(path, 0, format!("delta body is not utf-8: {e}")))?;
    Ok(text
        .lines()
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect())
}

/// A decoded view checkpoint: an opaque body consistent with the
/// database state at `epoch` after `frames` WAL frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewsCheckpoint {
    /// The epoch the views were consistent with.
    pub epoch: u64,
    /// WAL frames of that epoch already folded into the views.
    pub frames: u64,
    /// The maintenance engine's serialised view states.
    pub body: Vec<u8>,
}

/// Serialise a view checkpoint.
pub fn encode_views(epoch: u64, frames: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(VIEWS_HEADER_LEN + body.len());
    out.extend_from_slice(VIEWS_MAGIC);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&frames.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&views_crc(epoch, frames, body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

fn views_crc(epoch: u64, frames: u64, body: &[u8]) -> u32 {
    let mut c = crate::crc::Crc32::new();
    c.update(&epoch.to_le_bytes());
    c.update(&frames.to_le_bytes());
    c.update(&(body.len() as u64).to_le_bytes());
    c.update(body);
    c.finish()
}

/// Decode a view checkpoint, verifying magic, length, and checksum.
pub fn decode_views(bytes: &[u8], path: &Path) -> Result<ViewsCheckpoint, StorageError> {
    if bytes.len() < VIEWS_HEADER_LEN {
        return Err(StorageError::corrupt(
            path,
            0,
            format!("view checkpoint header truncated at {} bytes", bytes.len()),
        ));
    }
    if &bytes[..8] != VIEWS_MAGIC {
        return Err(StorageError::corrupt(path, 0, "bad view checkpoint magic"));
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let frames = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let body_len = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(bytes[32..36].try_into().expect("4 bytes"));
    let body = &bytes[VIEWS_HEADER_LEN..];
    if body_len != body.len() as u64 {
        return Err(StorageError::corrupt(
            path,
            24,
            format!(
                "view checkpoint body is {} bytes but header claims {body_len}",
                body.len()
            ),
        ));
    }
    if views_crc(epoch, frames, body) != stored_crc {
        return Err(StorageError::corrupt(
            path,
            32,
            "view checkpoint checksum mismatch",
        ));
    }
    Ok(ViewsCheckpoint {
        epoch,
        frames,
        body: body.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_roundtrips() {
        let clauses = vec![b"schema G(U, U).".to_vec(), b"G('a', 'b').".to_vec()];
        let bytes = encode_delta(3, &clauses);
        let back = decode_delta(&bytes, 3, Path::new("d")).unwrap();
        assert_eq!(back, vec!["schema G(U, U).", "G('a', 'b')."]);
    }

    #[test]
    fn delta_epoch_mismatch_refused() {
        let bytes = encode_delta(3, &[b"G('a').".to_vec()]);
        let err = decode_delta(&bytes, 4, Path::new("d")).unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn delta_every_byte_flip_detected() {
        let bytes = encode_delta(7, &[b"G('a').".to_vec(), b"delete G('a').".to_vec()]);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            // A flip may corrupt the header fields or the body; either
            // way decode must refuse (epoch flips fail the chain check).
            let r = decode_delta(&bad, 7, Path::new("d"));
            assert!(r.is_err(), "flip at {i} was accepted");
        }
        for cut in 0..bytes.len() {
            assert!(decode_delta(&bytes[..cut], 7, Path::new("d")).is_err());
        }
    }

    #[test]
    fn views_roundtrip_and_flips_detected() {
        let bytes = encode_views(5, 12, b"opaque view state");
        let ck = decode_views(&bytes, Path::new("v")).unwrap();
        assert_eq!(ck.epoch, 5);
        assert_eq!(ck.frames, 12);
        assert_eq!(ck.body, b"opaque view state");
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode_views(&bad, Path::new("v")).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn empty_delta_and_views() {
        let bytes = encode_delta(1, &[]);
        assert!(decode_delta(&bytes, 1, Path::new("d")).unwrap().is_empty());
        let v = decode_views(&encode_views(0, 0, b""), Path::new("v")).unwrap();
        assert!(v.body.is_empty());
    }
}
