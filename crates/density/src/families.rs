//! Instance-family generators for the density/sparsity experiments
//! (Section 4).
//!
//! A *family* is a parameterised sequence of instances on which density or
//! sparsity w.r.t. `⟨i,k⟩`-types holds by construction:
//!
//! * [`subset_family`] — `R[{U}]` containing **all** subsets of the
//!   constants: dense w.r.t. `⟨1,1⟩`-types (`|I| = 2ⁿ ≈ |dom|`). The
//!   "no prerequisite structure" reading of Example 4.2.
//! * [`pair_subset_family`] — `R[{[U,U]}]` containing all (or a fixed
//!   fraction of) sets of pairs: dense w.r.t. `⟨1,2⟩`-types. Only tiny
//!   `n` are feasible — dense complex-object databases are *enormous*,
//!   which is exactly why Theorem 4.1 can afford to build orders on the fly.
//! * [`verso_family`] — `R[U, {U}]` with the atomic column a key
//!   (Example 4.1's VERSO discipline): `|I| = n`, sparse w.r.t. all
//!   higher types.
//! * [`bounded_enrollment_family`] — Example 4.2 with a tight prerequisite
//!   structure: only course sets of size ≤ b occur, `|I| = O(n^b)`:
//!   sparse.
//! * graph families ([`path_graph`], [`cycle_graph`], [`random_graph`],
//!   and their nested `{U}`-node variants) for the transitive-closure
//!   benchmarks.

use no_object::domain::DomainIter;
use no_object::{AtomOrder, Instance, RelationSchema, Schema, Type, Universe, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated instance together with its universe and enumeration.
pub struct Generated {
    /// The universe of atom names.
    pub universe: Universe,
    /// The enumeration of the instance's atoms.
    pub order: AtomOrder,
    /// The instance.
    pub instance: Instance,
}

fn fresh_universe(n: usize) -> (Universe, AtomOrder) {
    let names: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
    let u = Universe::with_names(names.iter().map(String::as_str));
    let order = AtomOrder::identity(&u);
    (u, order)
}

/// `R[{U}]` holding every subset of `n` constants — dense w.r.t.
/// `⟨1,1⟩`-types. `n ≤ 20` to bound memory.
pub fn subset_family(n: usize) -> Generated {
    assert!(n <= 20, "subset_family: 2^{n} rows is too large");
    let (universe, order) = fresh_universe(n);
    let schema = Schema::from_relations([RelationSchema::new("R", vec![Type::set(Type::Atom)])]);
    let mut instance = Instance::empty(schema);
    let ty = Type::set(Type::Atom);
    for v in DomainIter::new(&order, &ty).expect("2^n under cap") {
        instance.insert("R", vec![v]);
    }
    Generated {
        universe,
        order,
        instance,
    }
}

/// `R[{[U,U]}]` holding every `keep`-th set of pairs over `n` constants —
/// dense w.r.t. `⟨1,2⟩`-types (any constant stride keeps the cardinality
/// within a constant factor of the domain). `n ≤ 4`.
pub fn pair_subset_family(n: usize, keep_every: usize) -> Generated {
    assert!(n <= 4, "pair_subset_family: 2^(n^2) rows is too large");
    assert!(keep_every >= 1);
    let (universe, order) = fresh_universe(n);
    let ty = Type::set(Type::tuple(vec![Type::Atom, Type::Atom]));
    let schema = Schema::from_relations([RelationSchema::new("R", vec![ty.clone()])]);
    let mut instance = Instance::empty(schema);
    for (idx, v) in DomainIter::new(&order, &ty).expect("under cap").enumerate() {
        if idx % keep_every == 0 {
            instance.insert("R", vec![v]);
        }
    }
    Generated {
        universe,
        order,
        instance,
    }
}

/// VERSO-keyed nested relation `R[U, {U}]`: one row per constant, the
/// atomic column a key (Example 4.1) — sparse w.r.t. `⟨1,k⟩`-types.
pub fn verso_family(n: usize, seed: u64) -> Generated {
    let (universe, order) = fresh_universe(n);
    let schema = Schema::from_relations([RelationSchema::new(
        "R",
        vec![Type::Atom, Type::set(Type::Atom)],
    )]);
    let mut instance = Instance::empty(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    for key in order.iter() {
        let members: Vec<Value> = order
            .iter()
            .filter(|_| rng.random_bool(0.5))
            .map(Value::Atom)
            .collect();
        instance.insert("R", vec![Value::Atom(key), Value::set(members)]);
    }
    Generated {
        universe,
        order,
        instance,
    }
}

/// Example 4.2 with a tight prerequisite structure: `Takes[{U}]` holding
/// every course set of size at most `bound` — `O(n^bound)` rows, sparse
/// w.r.t. sets of courses.
pub fn bounded_enrollment_family(n: usize, bound: usize) -> Generated {
    let (universe, order) = fresh_universe(n);
    let schema =
        Schema::from_relations([RelationSchema::new("Takes", vec![Type::set(Type::Atom)])]);
    let mut instance = Instance::empty(schema);
    // enumerate subsets of size ≤ bound by recursion
    let atoms: Vec<Value> = order.iter().map(Value::Atom).collect();
    let mut stack: Vec<(usize, Vec<Value>)> = vec![(0, Vec::new())];
    while let Some((from, chosen)) = stack.pop() {
        instance.insert("Takes", vec![Value::set(chosen.iter().cloned())]);
        if chosen.len() < bound {
            for (i, atom) in atoms.iter().enumerate().skip(from) {
                let mut next = chosen.clone();
                next.push(atom.clone());
                stack.push((i + 1, next));
            }
        }
    }
    Generated {
        universe,
        order,
        instance,
    }
}

/// Example 4.2 without prerequisites: every course combination occurs —
/// an alias of [`subset_family`] with the `Takes` relation name.
pub fn free_enrollment_family(n: usize) -> Generated {
    assert!(n <= 20);
    let (universe, order) = fresh_universe(n);
    let schema =
        Schema::from_relations([RelationSchema::new("Takes", vec![Type::set(Type::Atom)])]);
    let mut instance = Instance::empty(schema);
    for v in DomainIter::new(&order, &Type::set(Type::Atom)).expect("under cap") {
        instance.insert("Takes", vec![v]);
    }
    Generated {
        universe,
        order,
        instance,
    }
}

/// The flat graph schema `G[U, U]`.
pub fn flat_graph_schema() -> Schema {
    Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])])
}

/// A directed path `a0 → a1 → … → a(n−1)`.
pub fn path_graph(n: usize) -> Generated {
    let (universe, order) = fresh_universe(n);
    let mut instance = Instance::empty(flat_graph_schema());
    for w in order.as_slice().windows(2) {
        instance.insert("G", vec![Value::Atom(w[0]), Value::Atom(w[1])]);
    }
    Generated {
        universe,
        order,
        instance,
    }
}

/// A directed cycle over `n` nodes.
pub fn cycle_graph(n: usize) -> Generated {
    let g = path_graph(n);
    let mut instance = g.instance;
    if n > 1 {
        instance.insert(
            "G",
            vec![Value::Atom(g.order.at(n - 1)), Value::Atom(g.order.at(0))],
        );
    }
    Generated {
        universe: g.universe,
        order: g.order,
        instance,
    }
}

/// A random directed graph with the given edge probability.
pub fn random_graph(n: usize, p: f64, seed: u64) -> Generated {
    let (universe, order) = fresh_universe(n);
    let mut instance = Instance::empty(flat_graph_schema());
    let mut rng = StdRng::seed_from_u64(seed);
    for a in order.iter() {
        for b in order.iter() {
            if a != b && rng.random_bool(p) {
                instance.insert("G", vec![Value::Atom(a), Value::Atom(b)]);
            }
        }
    }
    Generated {
        universe,
        order,
        instance,
    }
}

/// The nested graph schema `G[{U}, {U}]` of Example 3.1.
pub fn nested_graph_schema() -> Schema {
    let su = Type::set(Type::Atom);
    Schema::from_relations([RelationSchema::new("G", vec![su.clone(), su])])
}

/// A path graph whose nodes are the singleton sets `{a0} → {a1} → …` —
/// the input type of Example 3.1.
pub fn nested_path_graph(n: usize) -> Generated {
    let (universe, order) = fresh_universe(n);
    let mut instance = Instance::empty(nested_graph_schema());
    let node = |a| Value::set([Value::Atom(a)]);
    for w in order.as_slice().windows(2) {
        instance.insert("G", vec![node(w[0]), node(w[1])]);
    }
    Generated {
        universe,
        order,
        instance,
    }
}

/// A random graph over *all* subset nodes: edges between random subsets of
/// the constants. With enough edges this is dense w.r.t. `{U}` while
/// staying generable (`2ⁿ` possible nodes, `edges` random pairs).
pub fn random_nested_graph(n: usize, edges: usize, seed: u64) -> Generated {
    assert!(n <= 20);
    let (universe, order) = fresh_universe(n);
    let mut instance = Instance::empty(nested_graph_schema());
    let mut rng = StdRng::seed_from_u64(seed);
    let random_subset = |rng: &mut StdRng| {
        let members: Vec<Value> = order
            .iter()
            .filter(|_| rng.random_bool(0.5))
            .map(Value::Atom)
            .collect();
        Value::set(members)
    };
    for _ in 0..edges {
        let a = random_subset(&mut rng);
        let b = random_subset(&mut rng);
        instance.insert("G", vec![a, b]);
    }
    Generated {
        universe,
        order,
        instance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_family_is_full_powerset() {
        let g = subset_family(4);
        assert_eq!(g.instance.cardinality(), 16);
        assert_eq!(g.instance.atoms().len(), 3 + 1); // {} row has no atoms; others cover all 4... atoms() unions rows
    }

    #[test]
    fn pair_subset_family_counts() {
        let g = pair_subset_family(2, 1);
        assert_eq!(g.instance.cardinality(), 16); // 2^(2^2)
        let h = pair_subset_family(2, 4);
        assert_eq!(h.instance.cardinality(), 4);
    }

    #[test]
    fn verso_family_key_discipline() {
        let g = verso_family(8, 7);
        assert_eq!(g.instance.cardinality(), 8);
        // keys are distinct by construction
        let keys: std::collections::BTreeSet<&Value> =
            g.instance.relation("R").iter().map(|row| &row[0]).collect();
        assert_eq!(keys.len(), 8);
    }

    #[test]
    fn bounded_enrollment_polynomial_size() {
        let g = bounded_enrollment_family(6, 2);
        // 1 + 6 + 15 = 22 course sets of size ≤ 2
        assert_eq!(g.instance.cardinality(), 22);
        let g3 = bounded_enrollment_family(6, 3);
        assert_eq!(g3.instance.cardinality(), 22 + 20);
    }

    #[test]
    fn free_enrollment_exponential_size() {
        let g = free_enrollment_family(5);
        assert_eq!(g.instance.cardinality(), 32);
    }

    #[test]
    fn graph_shapes() {
        assert_eq!(path_graph(5).instance.cardinality(), 4);
        assert_eq!(cycle_graph(5).instance.cardinality(), 5);
        assert_eq!(cycle_graph(1).instance.cardinality(), 0);
        let r = random_graph(6, 0.5, 42);
        assert!(r.instance.cardinality() <= 30);
        // determinism
        let r2 = random_graph(6, 0.5, 42);
        assert_eq!(r.instance, r2.instance);
    }

    #[test]
    fn nested_graphs_have_set_nodes() {
        let g = nested_path_graph(4);
        assert_eq!(g.instance.cardinality(), 3);
        for row in g.instance.relation("G").iter() {
            assert!(matches!(row[0], Value::Set(_)));
        }
        let rg = random_nested_graph(6, 40, 1);
        assert!(rg.instance.cardinality() <= 40);
        assert_eq!(
            rg.instance,
            random_nested_graph(6, 40, 1).instance,
            "seeded determinism"
        );
    }
}
