//! # `no-density` — instance families and density/sparsity analysis
//!
//! The empirical side of Section 4: generators for families that are
//! dense or sparse w.r.t. `⟨i,k⟩`-types by construction ([`families`]),
//! and measurement/classification of the Definition 4.1 inequalities on
//! real instances ([`analysis`]), including the Lemma 4.1 equivalence of
//! the cardinality- and size-based notions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod families;

pub use analysis::{
    classify, classify_both, classify_type, measure, measure_type, DensityClass, DensityReport,
    MeasureKind, Measurement, TypeMeasurement,
};
pub use families::Generated;
