//! Empirical density/sparsity classification (Definition 4.1, Lemma 4.1).
//!
//! Given a sequence of instances from a family, we measure for each the
//! cardinality `|I|`, the size `‖I‖`, and `log2 |dom(i,k,atom(I))|`, then
//! test the defining inequalities on a log scale:
//!
//! * **dense**: `|dom(i,k,D)| ≤ P(|I|)` — i.e. `log |dom|` grows at most
//!   linearly in `log |I|`;
//! * **sparse**: `|I| ≤ P(log |dom(i,k,D)|)` — i.e. `log |I|` grows at
//!   most linearly in `log log |dom|`.
//!
//! The classifier fits the growth exponent by least squares over the
//! measured points and compares against a tolerance. Lemma 4.1 (the
//! equivalence of the cardinality- and size-based notions) is checked by
//! classifying the same family under both measures — experiment E5.

use no_object::domain::ik_dom_card_log2;
use no_object::encoding::instance_size;
use no_object::{AtomOrder, Instance};

/// One measured instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Number of atoms.
    pub atoms: usize,
    /// Cardinality `|I|` (tuple count).
    pub cardinality: usize,
    /// Size `‖I‖` (encoding length).
    pub size: usize,
    /// `log2 |dom(i,k,atom(I))|`.
    pub dom_log2: f64,
    /// `log2 ‖dom(i,k,atom(I))‖` (approximated from the cardinality via
    /// Proposition 2.1's polylog factor; exact enough on a log scale).
    pub dom_size_log2: f64,
}

/// Measure an instance w.r.t. `⟨i,k⟩`-types.
pub fn measure(order: &AtomOrder, instance: &Instance, i: usize, k: usize) -> Measurement {
    let atoms = instance.atoms().len();
    let dom_log2 = ik_dom_card_log2(i, k, atoms.max(1));
    // ‖dom‖ ≤ |dom|·P(log|dom|): on a log2 scale the polylog factor is
    // log2(polylog) = O(log log) — add one representative term.
    let dom_size_log2 = dom_log2 + (dom_log2.max(2.0)).log2();
    Measurement {
        atoms,
        cardinality: instance.cardinality(),
        size: instance_size(order, instance),
        dom_log2,
        dom_size_log2,
    }
}

/// The verdict for one family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DensityClass {
    /// `log|dom|` bounded by a polynomial in `log|I|` (slope fit).
    Dense,
    /// `log|I|` bounded by a polynomial in `log log|dom|`.
    Sparse,
    /// Neither inequality fits within tolerance.
    Neither,
}

/// Which measure to classify on (Lemma 4.1 says the answers coincide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureKind {
    /// Use `|I|` and `|dom|`.
    Cardinality,
    /// Use `‖I‖` and `‖dom‖`.
    Size,
}

/// Least-squares slope of `ys` against `xs`.
fn fit_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    (n * sxy - sx * sy) / denom
}

/// Report of a classification: the fitted exponents and the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityReport {
    /// Fitted exponent of `|dom|` as a power of `|I|` (density test):
    /// slope of `log log|dom|` against `log log|I|`... practically, the
    /// slope of `log2 dom_log2` vs `log2 log2|I|`; ≤ `tolerance` ⇒ dense.
    pub density_exponent: f64,
    /// Fitted exponent of `|I|` as a power of `log|dom|` (sparsity test).
    pub sparsity_exponent: f64,
    /// The verdict.
    pub class: DensityClass,
}

/// Classify a measured family.
///
/// Density (`|dom| ≤ |I|^c`) means `dom_log2 ≤ c · log2|I|`, so the ratio
/// `dom_log2 / log2|I|` stays bounded: we fit the slope of `dom_log2`
/// against `log2|I|` and call the family dense when the *growth* of the
/// ratio is flat (the fitted exponent of the ratio against `atoms` ≈ 0).
/// Sparsity (`|I| ≤ polylog|dom|`) similarly bounds
/// `log2|I| / log2(dom_log2)`.
pub fn classify(points: &[Measurement], kind: MeasureKind) -> DensityReport {
    assert!(points.len() >= 3, "need at least 3 points to classify");
    let (inst, dom): (Vec<f64>, Vec<f64>) = points
        .iter()
        .map(|m| match kind {
            MeasureKind::Cardinality => (m.cardinality.max(2) as f64, m.dom_log2),
            MeasureKind::Size => (m.size.max(2) as f64, m.dom_size_log2),
        })
        .unzip();
    let xs: Vec<f64> = points.iter().map(|m| m.atoms as f64).collect();
    // density ratio r_d = dom_log2 / log2|I|; sparsity ratio
    // r_s = log2|I| / log2(dom_log2)
    let density_ratio: Vec<f64> = inst
        .iter()
        .zip(&dom)
        .map(|(i, d)| d / i.log2().max(1e-9))
        .collect();
    let sparsity_ratio: Vec<f64> = inst
        .iter()
        .zip(&dom)
        .map(|(i, d)| i.log2() / d.max(2.0).log2())
        .collect();
    // A bounded ratio has ~zero slope against the scale parameter on a
    // log-log plot; a polynomially growing one has positive slope.
    let lx: Vec<f64> = xs.iter().map(|x| x.max(1.0).ln()).collect();
    let density_exponent = fit_slope(
        &lx,
        &density_ratio
            .iter()
            .map(|r| r.max(1e-9).ln())
            .collect::<Vec<_>>(),
    );
    let sparsity_exponent = fit_slope(
        &lx,
        &sparsity_ratio
            .iter()
            .map(|r| r.max(1e-9).ln())
            .collect::<Vec<_>>(),
    );
    const TOL: f64 = 0.35;
    let class = if density_exponent < TOL {
        DensityClass::Dense
    } else if sparsity_exponent < TOL + 1.0 {
        // |I| ≤ P(log|dom|) allows ratio growth up to the polynomial
        // degree; a linear-in-log family like VERSO has exponent ≈ 1
        DensityClass::Sparse
    } else {
        DensityClass::Neither
    };
    DensityReport {
        density_exponent,
        sparsity_exponent,
        class,
    }
}

/// A per-type measurement (the individual-type variant of Definition 4.1,
/// and the multi-sorted reading of Remark 4.1): how many *distinct
/// sub-objects* of type `ty` the instance contains, against `|dom(ty, D)|`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeMeasurement {
    /// Number of atoms in the instance.
    pub atoms: usize,
    /// Distinct sub-objects of the type occurring in the instance.
    pub occurrences: usize,
    /// `log2 |dom(ty, atom(I))|`.
    pub dom_log2: f64,
}

/// Measure one instance against one type.
pub fn measure_type(instance: &Instance, ty: &no_object::Type) -> TypeMeasurement {
    let atoms = instance.atoms().len();
    TypeMeasurement {
        atoms,
        occurrences: instance.subobject_count(ty),
        dom_log2: no_object::domain::card_log2(ty, atoms.max(1)),
    }
}

/// Classify a family w.r.t. one specific type: dense when the occurrence
/// count tracks the domain cardinality polynomially, sparse when it stays
/// polylogarithmic in it. The practical reading is Remark 4.1: quantify
/// over a type only where the database is dense in it.
pub fn classify_type(points: &[TypeMeasurement]) -> DensityReport {
    let converted: Vec<Measurement> = points
        .iter()
        .map(|m| Measurement {
            atoms: m.atoms,
            cardinality: m.occurrences,
            size: m.occurrences.max(1),
            dom_log2: m.dom_log2,
            dom_size_log2: m.dom_log2,
        })
        .collect();
    classify(&converted, MeasureKind::Cardinality)
}

/// Classify under both measures and check they agree (Lemma 4.1).
pub fn classify_both(points: &[Measurement]) -> (DensityReport, DensityReport, bool) {
    let by_card = classify(points, MeasureKind::Cardinality);
    let by_size = classify(points, MeasureKind::Size);
    let agree = by_card.class == by_size.class;
    (by_card, by_size, agree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    fn measure_family(
        gens: impl IntoIterator<Item = families::Generated>,
        i: usize,
        k: usize,
    ) -> Vec<Measurement> {
        gens.into_iter()
            .map(|g| measure(&g.order, &g.instance, i, k))
            .collect()
    }

    #[test]
    fn subset_family_is_dense_wrt_1_1() {
        let points = measure_family((6..=12).map(families::subset_family), 1, 1);
        let report = classify(&points, MeasureKind::Cardinality);
        assert_eq!(report.class, DensityClass::Dense, "{report:?}");
    }

    #[test]
    fn verso_family_is_sparse_wrt_1_1() {
        let points = measure_family((6..=16).map(|n| families::verso_family(n, 3)), 1, 1);
        let report = classify(&points, MeasureKind::Cardinality);
        assert_eq!(report.class, DensityClass::Sparse, "{report:?}");
    }

    #[test]
    fn verso_family_is_sparse_wrt_1_2() {
        let points = measure_family((6..=16).map(|n| families::verso_family(n, 3)), 1, 2);
        let report = classify(&points, MeasureKind::Cardinality);
        assert_eq!(report.class, DensityClass::Sparse, "{report:?}");
    }

    #[test]
    fn bounded_enrollment_is_sparse() {
        let points = measure_family(
            (6..=14).map(|n| families::bounded_enrollment_family(n, 2)),
            1,
            1,
        );
        let report = classify(&points, MeasureKind::Cardinality);
        assert_eq!(report.class, DensityClass::Sparse, "{report:?}");
    }

    #[test]
    fn free_enrollment_is_dense() {
        let points = measure_family((6..=12).map(families::free_enrollment_family), 1, 1);
        let report = classify(&points, MeasureKind::Cardinality);
        assert_eq!(report.class, DensityClass::Dense, "{report:?}");
    }

    #[test]
    fn lemma_4_1_measures_agree() {
        // dense family: agreement
        let dense = measure_family((6..=12).map(families::subset_family), 1, 1);
        let (_, _, agree) = classify_both(&dense);
        assert!(agree, "dense family: card/size classifications diverge");
        // sparse family: agreement
        let sparse = measure_family((6..=16).map(|n| families::verso_family(n, 9)), 1, 1);
        let (_, _, agree) = classify_both(&sparse);
        assert!(agree, "sparse family: card/size classifications diverge");
    }

    #[test]
    fn flat_graphs_are_sparse_wrt_higher_types() {
        // Section 6: flat inputs are sparse w.r.t. all higher types
        let points = measure_family((6..=16).map(families::path_graph), 1, 2);
        let report = classify(&points, MeasureKind::Cardinality);
        assert_eq!(report.class, DensityClass::Sparse, "{report:?}");
    }

    #[test]
    fn remark_4_1_per_type_density() {
        use no_object::Type;
        // VERSO family: dense w.r.t. U (all atoms occur) but sparse w.r.t.
        // {U} (only n of the 2^n sets occur) — the multi-sorted situation
        // Remark 4.1 describes.
        let su = Type::set(Type::Atom);
        let atom_points: Vec<TypeMeasurement> = (6..=16)
            .step_by(2)
            .map(|n| measure_type(&crate::families::verso_family(n, 5).instance, &Type::Atom))
            .collect();
        let set_points: Vec<TypeMeasurement> = (6..=16)
            .step_by(2)
            .map(|n| measure_type(&crate::families::verso_family(n, 5).instance, &su))
            .collect();
        assert_eq!(classify_type(&atom_points).class, DensityClass::Dense);
        assert_eq!(classify_type(&set_points).class, DensityClass::Sparse);
    }

    #[test]
    fn subset_family_is_dense_per_type_too() {
        use no_object::Type;
        let su = Type::set(Type::Atom);
        let points: Vec<TypeMeasurement> = (6..=12)
            .map(|n| measure_type(&crate::families::subset_family(n).instance, &su))
            .collect();
        assert_eq!(classify_type(&points).class, DensityClass::Dense);
    }

    #[test]
    fn measurements_expose_expected_magnitudes() {
        let g = families::subset_family(8);
        let m = measure(&g.order, &g.instance, 1, 1);
        assert_eq!(m.atoms, 8);
        assert_eq!(m.cardinality, 256);
        assert!(m.dom_log2 >= 8.0, "{}", m.dom_log2);
        assert!(m.size > m.cardinality, "encodings are longer than counts");
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn too_few_points_rejected() {
        let g = families::subset_family(4);
        let m = measure(&g.order, &g.instance, 1, 1);
        classify(&[m.clone(), m], MeasureKind::Cardinality);
    }
}
