//! Deterministic single-tape Turing machines.
//!
//! The machine model of the paper's complexity framework (Section 2): a
//! query is in PTIME if some TM maps `enc(I)` to `enc(q(I))` in polynomial
//! time. The tape is semi-infinite to the right, with the head starting on
//! the first cell; symbols are `char`s so instance encodings
//! (`0 1 { } [ ] #` plus relation names) are tape words directly.

use no_object::{Governor, Limits, ResourceError};
use std::collections::HashMap;
use std::fmt;

/// A machine state; resolve its name with [`Machine::state_name`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct State(pub u16);

/// Head movement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Move {
    /// One cell left (no-op at the left end, as usual).
    Left,
    /// One cell right.
    Right,
    /// Stay put.
    Stay,
}

/// One transition: on `(state, read)` write, move, switch state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Action {
    /// Symbol to write.
    pub write: char,
    /// Head movement.
    pub mv: Move,
    /// Next state.
    pub next: State,
}

/// Errors in machine construction or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmError {
    /// No transition for the current `(state, symbol)` and the state is
    /// not halting — the machine is stuck (a construction bug).
    Stuck {
        /// State the machine was in.
        state: String,
        /// Symbol under the head.
        read: char,
    },
    /// A governor budget (step fuel, memory, deadline, or cancellation)
    /// was exhausted before halting; the payload names which, where, and
    /// how much was consumed.
    Resource(ResourceError),
    /// A state name was referenced before being declared.
    UnknownState(String),
}

impl fmt::Display for TmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmError::Stuck { state, read } => {
                write!(f, "machine stuck in state {state} reading {read:?}")
            }
            TmError::Resource(e) => write!(f, "{e}"),
            TmError::UnknownState(s) => write!(f, "unknown state {s:?}"),
        }
    }
}

impl std::error::Error for TmError {}

impl From<ResourceError> for TmError {
    fn from(e: ResourceError) -> Self {
        TmError::Resource(e)
    }
}

/// A deterministic Turing machine.
#[derive(Clone, Debug)]
pub struct Machine {
    state_names: Vec<String>,
    start: State,
    halting: Vec<State>,
    blank: char,
    delta: HashMap<(State, char), Action>,
}

/// Builder for [`Machine`].
pub struct MachineBuilder {
    state_names: Vec<String>,
    blank: char,
    halting: Vec<String>,
    rules: Vec<(String, char, char, Move, String)>,
}

impl MachineBuilder {
    /// Start building a machine with the given blank symbol.
    pub fn new(blank: char) -> Self {
        MachineBuilder {
            state_names: Vec::new(),
            blank,
            halting: Vec::new(),
            rules: Vec::new(),
        }
    }

    /// Declare a (possibly new) state by name.
    pub fn state(&mut self, name: &str) -> &mut Self {
        if !self.state_names.iter().any(|n| n == name) {
            self.state_names.push(name.to_string());
        }
        self
    }

    /// Mark a state as halting.
    pub fn halting(&mut self, name: &str) -> &mut Self {
        self.state(name);
        self.halting.push(name.to_string());
        self
    }

    /// Add a transition `state --read/write,move--> next`.
    pub fn rule(
        &mut self,
        state: &str,
        read: char,
        write: char,
        mv: Move,
        next: &str,
    ) -> &mut Self {
        self.state(state);
        self.state(next);
        self.rules
            .push((state.to_string(), read, write, mv, next.to_string()));
        self
    }

    /// Add the same transition for every symbol in `reads`, writing the
    /// symbol back unchanged.
    pub fn pass_through(&mut self, state: &str, reads: &str, mv: Move, next: &str) -> &mut Self {
        for c in reads.chars() {
            self.rule(state, c, c, mv, next);
        }
        self
    }

    /// Finish; the first declared state is the start state.
    pub fn build(&self) -> Result<Machine, TmError> {
        let index = |name: &str| -> Result<State, TmError> {
            self.state_names
                .iter()
                .position(|n| n == name)
                .map(|i| State(i as u16))
                .ok_or_else(|| TmError::UnknownState(name.to_string()))
        };
        let start = State(0);
        let mut delta = HashMap::new();
        for (s, r, w, m, n) in &self.rules {
            delta.insert(
                (index(s)?, *r),
                Action {
                    write: *w,
                    mv: *m,
                    next: index(n)?,
                },
            );
        }
        let halting = self
            .halting
            .iter()
            .map(|n| index(n))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Machine {
            state_names: self.state_names.clone(),
            start,
            halting,
            blank: self.blank,
            delta,
        })
    }
}

impl Machine {
    /// Begin building a machine.
    pub fn builder(blank: char) -> MachineBuilder {
        MachineBuilder::new(blank)
    }

    /// The start state.
    pub fn start(&self) -> State {
        self.start
    }

    /// Whether a state halts the machine.
    pub fn is_halting(&self, s: State) -> bool {
        self.halting.contains(&s)
    }

    /// Name of a state.
    pub fn state_name(&self, s: State) -> &str {
        &self.state_names[s.0 as usize]
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_names.len()
    }

    /// The blank symbol.
    pub fn blank(&self) -> char {
        self.blank
    }

    /// The transition for `(state, read)`, if any.
    pub fn action(&self, s: State, read: char) -> Option<Action> {
        self.delta.get(&(s, read)).copied()
    }

    /// All `(state, read) → action` transitions (deterministic ordering).
    pub fn transitions(&self) -> Vec<((State, char), Action)> {
        let mut v: Vec<_> = self.delta.iter().map(|(k, a)| (*k, *a)).collect();
        v.sort_by_key(|((s, c), _)| (*s, *c));
        v
    }

    /// The tape alphabet actually used: blank plus all read/written symbols.
    pub fn alphabet(&self) -> Vec<char> {
        let mut out = vec![self.blank];
        for ((_, r), a) in self.delta.iter() {
            if !out.contains(r) {
                out.push(*r);
            }
            if !out.contains(&a.write) {
                out.push(a.write);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Run from the given input until halting. Returns the halting
    /// configuration. `max_steps` is enforced through a fresh [`Governor`]
    /// whose only binding limit is step fuel.
    pub fn run(&self, input: &str, max_steps: u64) -> Result<Halt, TmError> {
        self.run_governed(
            input,
            &Governor::new(Limits {
                max_steps,
                ..Limits::unlimited()
            }),
        )
    }

    /// Run from the given input until halting under an existing
    /// [`Governor`] — each machine move costs one unit of step fuel, and
    /// cancellation/deadline are honoured between moves.
    pub fn run_governed(&self, input: &str, governor: &Governor) -> Result<Halt, TmError> {
        let mut run = Run::new(self, input);
        run.run_to_halt_governed(governor)?;
        Ok(Halt {
            state: run.state,
            steps: run.steps,
            output: run.tape_string(),
        })
    }
}

/// The result of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Halt {
    /// The halting state.
    pub state: State,
    /// Steps taken.
    pub steps: u64,
    /// Tape contents at halt, trailing blanks trimmed.
    pub output: String,
}

/// A live machine run — one configuration, steppable, inspectable.
#[derive(Clone, Debug)]
pub struct Run<'m> {
    machine: &'m Machine,
    /// Tape cells; indices past the end read as blank.
    pub cells: Vec<char>,
    /// Head position.
    pub head: usize,
    /// Current state.
    pub state: State,
    /// Steps taken so far.
    pub steps: u64,
}

impl<'m> Run<'m> {
    /// Load the input at the left end of a fresh tape.
    pub fn new(machine: &'m Machine, input: &str) -> Self {
        Run {
            machine,
            cells: input.chars().collect(),
            head: 0,
            state: machine.start,
            steps: 0,
        }
    }

    /// Symbol under the head.
    pub fn read(&self) -> char {
        self.cells
            .get(self.head)
            .copied()
            .unwrap_or(self.machine.blank)
    }

    /// Whether the machine has halted.
    pub fn halted(&self) -> bool {
        self.machine.is_halting(self.state)
    }

    /// Perform one step. No-op when already halted.
    pub fn step(&mut self) -> Result<(), TmError> {
        if self.halted() {
            return Ok(());
        }
        let read = self.read();
        let action = self
            .machine
            .action(self.state, read)
            .ok_or_else(|| TmError::Stuck {
                state: self.machine.state_name(self.state).to_string(),
                read,
            })?;
        if self.head >= self.cells.len() {
            self.cells.resize(self.head + 1, self.machine.blank);
        }
        self.cells[self.head] = action.write;
        match action.mv {
            Move::Left => self.head = self.head.saturating_sub(1),
            Move::Right => self.head += 1,
            Move::Stay => {}
        }
        self.state = action.next;
        self.steps += 1;
        Ok(())
    }

    /// Step until halting, within a fresh step-fuel budget of `max_steps`.
    pub fn run_to_halt(&mut self, max_steps: u64) -> Result<(), TmError> {
        let governor = Governor::new(Limits {
            max_steps,
            ..Limits::unlimited()
        });
        // account for steps already taken on this run
        if self.steps > 0 {
            governor.tick_n("tm.step", self.steps)?;
        }
        self.run_to_halt_governed(&governor)
    }

    /// Step until halting under an existing [`Governor`]: one unit of step
    /// fuel per machine move, cancellation and deadline honoured between
    /// moves.
    pub fn run_to_halt_governed(&mut self, governor: &Governor) -> Result<(), TmError> {
        while !self.halted() {
            governor.tick("tm.step")?;
            self.step()?;
        }
        Ok(())
    }

    /// Tape contents with trailing blanks trimmed.
    pub fn tape_string(&self) -> String {
        let mut s: String = self.cells.iter().collect();
        while s.ends_with(self.machine.blank) {
            s.pop();
        }
        s
    }

    /// A one-line rendering `state | tape-with-[head]` for traces.
    pub fn render(&self) -> String {
        let mut out = format!("{:<8} | ", self.machine.state_name(self.state));
        for (i, c) in self.cells.iter().enumerate() {
            if i == self.head {
                out.push('[');
                out.push(*c);
                out.push(']');
            } else {
                out.push(*c);
            }
        }
        if self.head >= self.cells.len() {
            out.push_str("[_]");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A machine that flips every bit and halts at the first blank.
    fn flipper() -> Machine {
        let mut b = Machine::builder('_');
        b.state("scan")
            .rule("scan", '0', '1', Move::Right, "scan")
            .rule("scan", '1', '0', Move::Right, "scan")
            .rule("scan", '_', '_', Move::Stay, "done")
            .halting("done");
        b.build().unwrap()
    }

    #[test]
    fn flipper_flips() {
        let halt = flipper().run("0110", 100).unwrap();
        assert_eq!(halt.output, "1001");
        assert_eq!(halt.steps, 5);
    }

    #[test]
    fn empty_input_halts_immediately_after_one_step() {
        let halt = flipper().run("", 10).unwrap();
        assert_eq!(halt.output, "");
        assert_eq!(halt.steps, 1);
    }

    #[test]
    fn step_limit_enforced() {
        // a one-state machine that loops forever on blanks
        let mut b = Machine::builder('_');
        b.state("loop").rule("loop", '_', '_', Move::Stay, "loop");
        let m = b.build().unwrap();
        match m.run("", 25) {
            Err(TmError::Resource(e)) => {
                assert_eq!(e.budget, no_object::BudgetKind::Steps);
                assert_eq!(e.limit, 25);
                assert_eq!(e.site, "tm.step");
            }
            other => panic!("expected a step Resource error, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_machine() {
        let mut b = Machine::builder('_');
        b.state("loop").rule("loop", '_', '_', Move::Stay, "loop");
        let m = b.build().unwrap();
        let g = Governor::unlimited();
        g.cancel();
        match m.run_governed("", &g) {
            Err(TmError::Resource(e)) => {
                assert_eq!(e.budget, no_object::BudgetKind::Cancelled)
            }
            other => panic!("expected a cancellation error, got {other:?}"),
        }
    }

    #[test]
    fn stuck_reported() {
        let mut b = Machine::builder('_');
        b.state("s").rule("s", '0', '0', Move::Right, "s");
        let m = b.build().unwrap();
        match m.run("01", 10) {
            Err(TmError::Stuck { read, .. }) => assert_eq!(read, '1'),
            other => panic!("expected Stuck, got {other:?}"),
        }
    }

    #[test]
    fn left_move_at_edge_is_noop() {
        let mut b = Machine::builder('_');
        b.state("s")
            .rule("s", '0', 'x', Move::Left, "t")
            .rule("t", 'x', 'y', Move::Stay, "done")
            .halting("done");
        let m = b.build().unwrap();
        let halt = m.run("0", 10).unwrap();
        assert_eq!(halt.output, "y");
    }

    #[test]
    fn pass_through_rules() {
        let mut b = Machine::builder('_');
        b.state("skip");
        b.pass_through("skip", "abc", Move::Right, "skip")
            .rule("skip", '_', '!', Move::Stay, "done")
            .halting("done");
        let m = b.build().unwrap();
        assert_eq!(m.run("cab", 10).unwrap().output, "cab!");
    }

    #[test]
    fn alphabet_and_transitions_enumerate() {
        let m = flipper();
        let alpha = m.alphabet();
        assert_eq!(alpha, vec!['0', '1', '_']);
        assert_eq!(m.transitions().len(), 3);
        assert_eq!(m.state_count(), 2);
        assert_eq!(m.state_name(m.start()), "scan");
    }

    #[test]
    fn run_render_shows_head() {
        let m = flipper();
        let mut run = Run::new(&m, "01");
        assert!(run.render().contains("[0]"));
        run.step().unwrap();
        assert!(run.render().contains("[1]"), "{}", run.render());
    }
}
