//! The relational representation of machine runs — the `R_M` relation of
//! Theorem 4.1's proof.
//!
//! A configuration at time `t` is stored as rows `[⃗t, ⃗i, x, y]`: the
//! first `m` columns timestamp the configuration, the next `m` identify a
//! tape cell, column `2m+1` holds the cell's content, and column `2m+2`
//! the machine state when the head is on that cell (a "no head" marker
//! otherwise). Timestamps and cell indices are `m`-tuples of atoms in the
//! induced order; since computations are inflationary under `IFP`, *all*
//! configurations are kept, timestamped — exactly the paper's device for
//! working around the inflationary semantics.
//!
//! [`RelationalRun`] executes the run in this representation: phase (†)
//! loads the initial configuration from `enc(I)`; phase (‡) applies the
//! instruction cases (a)–(c) of the proof to produce each successor
//! configuration. The test-suite checks, step by step, that this agrees
//! with the direct runner in [`crate::machine`] — the semantic content of
//! the simulation lemma. The *formula-level* version (the `CALC+IFP`
//! formula that the proof actually constructs) lives in [`crate::formula`]
//! and is validated against this one.

use crate::machine::{Machine, Move, State, TmError};
use no_object::{AtomOrder, Governor, Instance, Relation, ResourceError, Value};
use std::fmt;

/// Errors of the relational simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// `n^m` cells are not enough for the input plus working space.
    TapeTooSmall {
        /// Cells available (`n^m`).
        capacity: usize,
        /// Cells required.
        needed: usize,
    },
    /// `n^m` timestamps were exhausted before the machine halted.
    OutOfTimestamps {
        /// Timestamps available.
        capacity: usize,
    },
    /// The underlying machine failed.
    Machine(TmError),
    /// Symbol or state tables don't fit in tuples of the given width.
    AlphabetTooLarge {
        /// Values needed (alphabet or states + marker).
        needed: usize,
        /// Slots available.
        capacity: usize,
    },
    /// A governor budget (step fuel, memory, deadline, or cancellation)
    /// was exhausted mid-simulation.
    Resource(ResourceError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TapeTooSmall { capacity, needed } => {
                write!(f, "tape capacity {capacity} < required {needed} cells")
            }
            SimError::OutOfTimestamps { capacity } => {
                write!(f, "ran out of {capacity} timestamps before halting")
            }
            SimError::Machine(e) => write!(f, "{e}"),
            SimError::AlphabetTooLarge { needed, capacity } => {
                write!(f, "alphabet/state table needs {needed} > {capacity} slots")
            }
            SimError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<TmError> for SimError {
    fn from(e: TmError) -> Self {
        SimError::Machine(e)
    }
}

impl From<ResourceError> for SimError {
    fn from(e: ResourceError) -> Self {
        SimError::Resource(e)
    }
}

/// One tape cell in a configuration slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// The symbol in the cell.
    pub symbol: char,
    /// The machine state, when the head is on this cell.
    pub head: Option<State>,
}

/// A machine run in the `R_M` representation.
pub struct RelationalRun<'m> {
    machine: &'m Machine,
    order: AtomOrder,
    /// Index width `m`: `n^m` cells and `n^m` timestamps.
    pub m: usize,
    /// All configuration slices so far, by timestamp (inflationary: old
    /// configurations are never removed).
    pub history: Vec<Vec<Cell>>,
}

impl<'m> RelationalRun<'m> {
    /// Phase (†): the initial configuration of `machine` on `input`,
    /// represented relationally with index width `m`.
    pub fn new(
        machine: &'m Machine,
        order: &AtomOrder,
        m: usize,
        input: &str,
    ) -> Result<Self, SimError> {
        let capacity = order.len().pow(m as u32);
        if input.len() > capacity {
            return Err(SimError::TapeTooSmall {
                capacity,
                needed: input.len(),
            });
        }
        let mut slice: Vec<Cell> = input
            .chars()
            .map(|c| Cell {
                symbol: c,
                head: None,
            })
            .collect();
        slice.resize(
            capacity,
            Cell {
                symbol: machine.blank(),
                head: None,
            },
        );
        if capacity > 0 {
            slice[0].head = Some(machine.start());
        }
        Ok(RelationalRun {
            machine,
            order: order.clone(),
            m,
            history: vec![slice],
        })
    }

    /// Number of cells per configuration.
    pub fn tape_capacity(&self) -> usize {
        self.order.len().pow(self.m as u32)
    }

    /// The current (latest) configuration slice.
    pub fn current(&self) -> &[Cell] {
        self.history.last().expect("history never empty")
    }

    /// The head position and state in the latest configuration.
    pub fn head(&self) -> Option<(usize, State)> {
        self.current()
            .iter()
            .enumerate()
            .find_map(|(i, c)| c.head.map(|s| (i, s)))
    }

    /// Whether the latest configuration is halting.
    pub fn halted(&self) -> bool {
        match self.head() {
            Some((_, s)) => self.machine.is_halting(s),
            None => true,
        }
    }

    /// Phase (‡), one move: build the successor configuration from the
    /// current one by the proof's cases:
    ///
    /// * (a) cells other than the head cell and its move target copy over;
    /// * (b) the head cell gets the written symbol, and keeps or loses the
    ///   head marker depending on the move;
    /// * (c) the move target keeps its content and gains the head marker
    ///   with the new state.
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.halted() {
            return Ok(());
        }
        let capacity = self.tape_capacity();
        if self.history.len() >= capacity {
            return Err(SimError::OutOfTimestamps { capacity });
        }
        let current = self.current().to_vec();
        let (j, q) = self.head().expect("not halted implies a head");
        let read = current[j].symbol;
        let action = self.machine.action(q, read).ok_or(TmError::Stuck {
            state: self.machine.state_name(q).to_string(),
            read,
        })?;
        let target = match action.mv {
            Move::Left => j.saturating_sub(1),
            Move::Right => j + 1,
            Move::Stay => j,
        };
        if target >= capacity {
            return Err(SimError::TapeTooSmall {
                capacity,
                needed: target + 1,
            });
        }
        let mut next = Vec::with_capacity(capacity);
        for (i, cell) in current.iter().enumerate() {
            let mut c = if i == j {
                // case (b): rewrite the head cell
                Cell {
                    symbol: action.write,
                    head: None,
                }
            } else {
                // case (a): copy
                Cell {
                    symbol: cell.symbol,
                    head: None,
                }
            };
            if i == target {
                // case (c): the head arrives here in the new state
                c.head = Some(action.next);
            }
            next.push(c);
        }
        self.history.push(next);
        Ok(())
    }

    /// Run phase (‡) to halting, within the timestamp capacity.
    pub fn run_to_halt(&mut self) -> Result<(), SimError> {
        self.run_to_halt_governed(&Governor::default())
    }

    /// Run phase (‡) to halting under an existing [`Governor`]: each move
    /// costs one unit of step fuel, and every materialised configuration
    /// slice is charged against the memory budget (a [`Cell`] is a symbol
    /// plus an optional head marker — 8 bytes is a fair approximation).
    pub fn run_to_halt_governed(&mut self, governor: &Governor) -> Result<(), SimError> {
        let slice_bytes = 8 * self.tape_capacity() as u64;
        while !self.halted() {
            governor.tick("tm.sim.step")?;
            governor.charge_mem("tm.sim.history", slice_bytes)?;
            self.step()?;
        }
        Ok(())
    }

    /// The tape word of the latest configuration, trailing blanks trimmed
    /// — the decoded output of the simulation.
    pub fn output(&self) -> String {
        let mut s: String = self.current().iter().map(|c| c.symbol).collect();
        while s.ends_with(self.machine.blank()) {
            s.pop();
        }
        s
    }

    /// Total rows in the `R_M` relation (all timestamps).
    pub fn row_count(&self) -> usize {
        self.history.len() * self.tape_capacity()
    }

    /// Materialise `R_M` as a pure complex-object relation of arity
    /// `2m + 4`: `m` timestamp atoms, `m` cell atoms, then the symbol and
    /// the state/head marker, each as an atom pair (index into the symbol
    /// and state tables, encoded by rank).
    ///
    /// Symbols use the machine alphabet in sorted order; states use the
    /// machine's state numbering with one extra "no head" marker at the
    /// end. Fails when `n^2` cannot index those tables.
    pub fn to_relation(&self) -> Result<Relation, SimError> {
        let n = self.order.len();
        let alphabet = self.machine.alphabet();
        let pair_capacity = n * n;
        let states_needed = self.machine.state_count() + 1;
        if alphabet.len() > pair_capacity || states_needed > pair_capacity {
            return Err(SimError::AlphabetTooLarge {
                needed: alphabet.len().max(states_needed),
                capacity: pair_capacity,
            });
        }
        let pair = |idx: usize| -> Vec<Value> {
            vec![
                Value::Atom(self.order.at(idx / n)),
                Value::Atom(self.order.at(idx % n)),
            ]
        };
        let index_tuple = |mut idx: usize| -> Vec<Value> {
            let mut digits = vec![0usize; self.m];
            for d in (0..self.m).rev() {
                digits[d] = idx % n;
                idx /= n;
            }
            digits
                .into_iter()
                .map(|d| Value::Atom(self.order.at(d)))
                .collect()
        };
        let no_head = self.machine.state_count();
        let mut rel = Relation::new();
        for (t, slice) in self.history.iter().enumerate() {
            for (i, cell) in slice.iter().enumerate() {
                let mut row = index_tuple(t);
                row.extend(index_tuple(i));
                let sym_idx = alphabet
                    .iter()
                    .position(|&c| c == cell.symbol)
                    .expect("cell symbols come from the machine alphabet");
                row.extend(pair(sym_idx));
                let state_idx = cell.head.map_or(no_head, |s| s.0 as usize);
                row.extend(pair(state_idx));
                rel.insert(row);
            }
        }
        Ok(rel)
    }

    /// Render a configuration in the paper's table layout (the worked
    /// figure on p. 17): one line per cell, `⃗i_j`-style position labels,
    /// the symbol, and the state or `0`.
    pub fn render_configuration(&self, t: usize) -> String {
        let slice = &self.history[t];
        let mut out = String::new();
        for (i, cell) in slice.iter().enumerate() {
            let state = match cell.head {
                Some(s) => self.machine.state_name(s).to_string(),
                None => "0".to_string(),
            };
            let sym = if cell.symbol == self.machine.blank() {
                ' '
            } else {
                cell.symbol
            };
            out.push_str(&format!(
                "i_{:<3} i_{:<3} {}  {}\n",
                t + 1,
                i + 1,
                sym,
                state
            ));
        }
        out
    }
}

/// Simulate a machine on the encoding of an instance and return the output
/// tape, running entirely in the relational representation.
pub fn simulate_on_instance(
    machine: &Machine,
    order: &AtomOrder,
    instance: &Instance,
    m: usize,
) -> Result<String, SimError> {
    simulate_on_instance_governed(machine, order, instance, m, &Governor::default())
}

/// [`simulate_on_instance`] under an existing [`Governor`], so the
/// simulation draws from the same allowance as any surrounding query.
pub fn simulate_on_instance_governed(
    machine: &Machine,
    order: &AtomOrder,
    instance: &Instance,
    m: usize,
    governor: &Governor,
) -> Result<String, SimError> {
    let input = no_object::encoding::encode_instance(order, instance);
    let mut run = RelationalRun::new(machine, order, m, &input)?;
    run.run_to_halt_governed(governor)?;
    Ok(run.output())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Run;
    use crate::machines;
    use no_object::{RelationSchema, Schema, Type, Universe};

    fn order_n(n: usize) -> AtomOrder {
        let names: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let u = Universe::with_names(names.iter().map(String::as_str));
        AtomOrder::identity(&u)
    }

    #[test]
    fn relational_run_matches_direct_run_stepwise() {
        let m = machines::complement_bits();
        let order = order_n(4);
        let input = "01#10";
        let mut direct = Run::new(&m, input);
        let mut rel = RelationalRun::new(&m, &order, 2, input).unwrap();
        loop {
            // compare tape prefix, head, state
            let slice = rel.current();
            for (i, cell) in slice.iter().enumerate() {
                let direct_sym = direct.cells.get(i).copied().unwrap_or('_');
                assert_eq!(cell.symbol, direct_sym, "cell {i} at step {}", direct.steps);
            }
            match rel.head() {
                Some((pos, st)) => {
                    assert_eq!(pos, direct.head);
                    assert_eq!(st, direct.state);
                }
                None => panic!("head lost"),
            }
            if rel.halted() {
                assert!(direct.halted());
                break;
            }
            direct.step().unwrap();
            rel.step().unwrap();
        }
        assert_eq!(rel.output(), direct.tape_string());
    }

    #[test]
    fn simulates_figure2_instance_identity() {
        // the paper's instance, identity machine: output = enc(I)
        let mut u = Universe::new();
        let a = Value::Atom(u.intern("a"));
        let b = Value::Atom(u.intern("b"));
        let c = Value::Atom(u.intern("c"));
        let schema = Schema::from_relations([RelationSchema::new(
            "P",
            vec![
                Type::Atom,
                Type::set(Type::Atom),
                Type::tuple(vec![Type::Atom, Type::set(Type::Atom)]),
            ],
        )]);
        let mut i = Instance::empty(schema);
        i.insert(
            "P",
            vec![
                b.clone(),
                Value::set([a.clone(), b.clone()]),
                Value::tuple([c.clone(), Value::set([a.clone(), c.clone()])]),
            ],
        );
        i.insert(
            "P",
            vec![
                c.clone(),
                Value::set([c.clone()]),
                Value::tuple([a.clone(), Value::set([b, c])]),
            ],
        );
        let order = AtomOrder::identity(&u);
        // 47-char encoding + head run-off: m = 4 gives 81 cells/timestamps
        let out = simulate_on_instance(&machines::identity(), &order, &i, 4).unwrap();
        assert_eq!(out, "P[01#{00#01}#[10#{00#10}]][10#{10}#[00#{01#10}]]");
    }

    #[test]
    fn tape_capacity_errors() {
        let m = machines::identity();
        let order = order_n(2);
        assert!(matches!(
            RelationalRun::new(&m, &order, 1, "0000"),
            Err(SimError::TapeTooSmall { capacity: 2, .. })
        ));
    }

    #[test]
    fn timestamp_exhaustion_detected() {
        let m = machines::binary_increment();
        let order = order_n(2);
        // 4 cells, 4 timestamps with m=2; increment of "011" takes ~7 steps
        let mut run = RelationalRun::new(&m, &order, 2, "011").unwrap();
        match run.run_to_halt() {
            Err(SimError::OutOfTimestamps { capacity: 4 }) => {}
            other => panic!("expected OutOfTimestamps, got {other:?}"),
        }
    }

    #[test]
    fn governed_run_reports_step_and_memory_budgets() {
        use no_object::{BudgetKind, Limits};
        let m = machines::complement_bits();
        let order = order_n(3);
        let mut run = RelationalRun::new(&m, &order, 2, "01").unwrap();
        let g = Governor::new(Limits {
            max_steps: 1,
            ..Limits::unlimited()
        });
        match run.run_to_halt_governed(&g) {
            Err(SimError::Resource(e)) => {
                assert_eq!(e.budget, BudgetKind::Steps);
                assert_eq!(e.site, "tm.sim.step");
            }
            other => panic!("expected a step Resource error, got {other:?}"),
        }
        let mut run = RelationalRun::new(&m, &order, 2, "01").unwrap();
        let g = Governor::new(Limits {
            max_memory_bytes: 100, // one 9-cell slice = 72 bytes, two don't fit
            ..Limits::unlimited()
        });
        match run.run_to_halt_governed(&g) {
            Err(SimError::Resource(e)) => assert_eq!(e.budget, BudgetKind::Memory),
            other => panic!("expected a memory Resource error, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_simulation() {
        let m = machines::complement_bits();
        let order = order_n(3);
        let mut run = RelationalRun::new(&m, &order, 2, "01").unwrap();
        let g = Governor::unlimited();
        g.cancel();
        match run.run_to_halt_governed(&g) {
            Err(SimError::Resource(e)) => {
                assert_eq!(e.budget, no_object::BudgetKind::Cancelled)
            }
            other => panic!("expected a cancellation error, got {other:?}"),
        }
        // the run survives and can be resumed once the budget is lifted
        run.run_to_halt().unwrap();
        assert_eq!(run.output(), "10");
    }

    #[test]
    fn history_is_inflationary() {
        let m = machines::complement_bits();
        let order = order_n(3);
        let mut run = RelationalRun::new(&m, &order, 2, "01").unwrap();
        run.run_to_halt().unwrap();
        // 0 flips, 1 flips, blank transition: 3 steps + initial = 4 slices
        assert_eq!(run.history.len(), 4);
        // the initial configuration is still intact
        assert_eq!(run.history[0][0].symbol, '0');
        assert_eq!(run.history[0][0].head, Some(m.start()));
        assert_eq!(run.output(), "10");
        assert_eq!(run.row_count(), 4 * 9);
    }

    #[test]
    fn to_relation_round_trips_row_count() {
        // complement_bits has a 13-symbol alphabet: need n^2 >= 13
        let m = machines::complement_bits();
        let order = order_n(4);
        let mut run = RelationalRun::new(&m, &order, 2, "01").unwrap();
        run.run_to_halt().unwrap();
        let rel = run.to_relation().unwrap();
        assert_eq!(rel.len(), run.row_count());
        // arity 2m + 4
        assert_eq!(rel.iter().next().unwrap().len(), 2 * 2 + 4);
    }

    #[test]
    fn to_relation_rejects_small_universe() {
        let m = machines::balanced_scanner(); // big alphabet + many states
        let order = order_n(2);
        let mut run = RelationalRun::new(&m, &order, 5, "P{}").unwrap();
        run.run_to_halt().unwrap();
        assert!(matches!(
            run.to_relation(),
            Err(SimError::AlphabetTooLarge { .. })
        ));
    }

    #[test]
    fn configuration_rendering_shows_head_state() {
        let m = machines::identity();
        let order = order_n(3);
        let run = RelationalRun::new(&m, &order, 2, "P0").unwrap();
        let table = run.render_configuration(0);
        assert!(table.contains("P  scan"), "{table}");
        assert!(table.lines().count() == 9);
    }
}
