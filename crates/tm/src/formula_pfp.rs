//! The `CALC + PFP` variant of the machine simulation (Theorem 4.1(3)).
//!
//! The paper notes that the `PSPACE` direction "simplifies the simulation:
//! only the tuples corresponding to the *current* configuration of M are
//! kept in `R_M`, so no timestamping is required". This module implements
//! exactly that: a `PFP` fixpoint over rows `[⃗i, x, y]` — cell index,
//! symbol, head/state marker — whose iteration *replaces* the
//! configuration each round:
//!
//! ```text
//! φ(S)(i,x,y) =  (S = ∅            ∧ Init(i,x,y))        -- bootstrap
//!              ∨ (S ≠ ∅ ∧ halted(S) ∧ S(i,x,y))          -- fixpoint
//!              ∨ (S ≠ ∅ ∧ step cases (a)–(c) over S)     -- one move
//! ```
//!
//! Because `PFP` is non-inflationary the old configuration vanishes each
//! round — the space saving over the `IFP` construction is `R_M` row
//! count ÷ run length, measured in the tests.

use crate::formula::{index_value, lt_instance, tuple_type, value_index, width_for};
use crate::machine::{Machine, Move, State};
use crate::sim::SimError;
use no_core::ast::{FixOp, Fixpoint, Formula, Term};
use no_core::error::{EvalConfig, EvalError};
use no_core::eval::Evaluator;
use no_core::orders::{LtBase, OrderSynth};
use no_object::{AtomOrder, Relation};
use std::sync::Arc;

/// A compiled `PFP` machine simulation.
pub struct CompiledPfpSim {
    /// The `PFP` expression denoting the evolving configuration.
    pub fixpoint: Arc<Fixpoint>,
    /// Cell-index width (`n^m` cells).
    pub m: usize,
    /// The symbol table.
    pub alphabet: Vec<char>,
    /// Number of machine states.
    pub state_count: usize,
    order: AtomOrder,
    blank: char,
}

impl CompiledPfpSim {
    /// Compile the `PFP` simulation of `machine` on `input` with cell-index
    /// width `m`.
    pub fn compile(
        machine: &Machine,
        order: &AtomOrder,
        m: usize,
        input: &str,
    ) -> Result<CompiledPfpSim, SimError> {
        let n = order.len();
        let capacity = n.pow(m as u32);
        if input.len() >= capacity {
            return Err(SimError::TapeTooSmall {
                capacity,
                needed: input.len() + 1,
            });
        }
        let alphabet = machine.alphabet();
        let state_count = machine.state_count();
        let sym_width = width_for(n, alphabet.len());
        let state_width = width_for(n, state_count + 1);
        let i_ty = tuple_type(m);
        let s_ty = tuple_type(sym_width);
        let q_ty = tuple_type(state_width);

        let sym_const = |c: char| -> Term {
            let idx = alphabet
                .iter()
                .position(|&a| a == c)
                .expect("symbol in alphabet");
            Term::Const(index_value(order, sym_width, idx))
        };
        let state_const = |s: Option<State>| -> Term {
            let idx = s.map_or(state_count, |st| st.0 as usize);
            Term::Const(index_value(order, state_width, idx))
        };
        let pos_const = |p: usize| -> Term { Term::Const(index_value(order, m, p)) };
        let s_row = |i: Term, x: Term, y: Term| Formula::Rel("S".into(), vec![i, x, y]);

        let mut synth = OrderSynth::new(LtBase::Rel("ltU".into()));

        // S = ∅ : ¬∃i'∃x'∃y' S(i',x',y')
        let empty = Formula::exists(
            "ei",
            i_ty.clone(),
            Formula::exists(
                "ex",
                s_ty.clone(),
                Formula::exists(
                    "ey",
                    q_ty.clone(),
                    s_row(Term::var("ei"), Term::var("ex"), Term::var("ey")),
                ),
            ),
        )
        .not();

        // Init(i, x, y): the initial configuration
        let mut cell_cases: Vec<Formula> = Vec::new();
        for (p, c) in input.chars().enumerate() {
            cell_cases.push(Formula::and([
                Formula::Eq(Term::var("i"), pos_const(p)),
                Formula::Eq(Term::var("x"), sym_const(c)),
                Formula::Eq(
                    Term::var("y"),
                    state_const(if p == 0 { Some(machine.start()) } else { None }),
                ),
            ]));
        }
        if input.is_empty() {
            cell_cases.push(Formula::and([
                Formula::Eq(Term::var("i"), pos_const(0)),
                Formula::Eq(Term::var("x"), sym_const(machine.blank())),
                Formula::Eq(Term::var("y"), state_const(Some(machine.start()))),
            ]));
        }
        let last = if input.is_empty() { 0 } else { input.len() - 1 };
        cell_cases.push(Formula::and([
            synth.less(&i_ty, pos_const(last), Term::var("i")),
            Formula::Eq(Term::var("x"), sym_const(machine.blank())),
            Formula::Eq(Term::var("y"), state_const(None)),
        ]));
        let init = Formula::and([empty.clone(), Formula::or(cell_cases)]);

        // halted(S): the head sits on a cell in a halting state
        let halting: Vec<State> = (0..state_count as u16)
            .map(State)
            .filter(|s| machine.is_halting(*s))
            .collect();
        let halted = Formula::or(
            halting
                .iter()
                .map(|h| {
                    Formula::exists(
                        format!("h{}", h.0),
                        i_ty.clone(),
                        Formula::exists(
                            format!("hx{}", h.0),
                            s_ty.clone(),
                            s_row(
                                Term::var(format!("h{}", h.0)),
                                Term::var(format!("hx{}", h.0)),
                                state_const(Some(*h)),
                            ),
                        ),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let keep = Formula::and([
            halted.clone(),
            s_row(Term::var("i"), Term::var("x"), Term::var("y")),
        ]);

        // step: one disjunct per instruction, reading from S directly
        let mut instr_cases: Vec<Formula> = Vec::new();
        for ((q0, c), action) in machine.transitions() {
            let guard = s_row(Term::var("j"), sym_const(c), state_const(Some(q0)));
            let case_a = |synth: &mut OrderSynth, excl_succ: bool, excl_pred: bool| -> Formula {
                let mut parts = vec![
                    Formula::Eq(Term::var("i"), Term::var("j")).not(),
                    s_row(Term::var("i"), Term::var("x"), Term::var("y")),
                ];
                if excl_succ {
                    parts.push(
                        synth
                            .is_successor(&i_ty, Term::var("j"), Term::var("i"))
                            .not(),
                    );
                }
                if excl_pred {
                    parts.push(
                        synth
                            .is_successor(&i_ty, Term::var("i"), Term::var("j"))
                            .not(),
                    );
                }
                Formula::and(parts)
            };
            let body = match action.mv {
                Move::Stay => Formula::or([
                    case_a(&mut synth, false, false),
                    Formula::and([
                        Formula::Eq(Term::var("i"), Term::var("j")),
                        Formula::Eq(Term::var("x"), sym_const(action.write)),
                        Formula::Eq(Term::var("y"), state_const(Some(action.next))),
                    ]),
                ]),
                Move::Right => Formula::or([
                    case_a(&mut synth, true, false),
                    Formula::and([
                        Formula::Eq(Term::var("i"), Term::var("j")),
                        Formula::Eq(Term::var("x"), sym_const(action.write)),
                        Formula::Eq(Term::var("y"), state_const(None)),
                    ]),
                    Formula::and([
                        synth.is_successor(&i_ty, Term::var("j"), Term::var("i")),
                        s_row(Term::var("i"), Term::var("x"), state_const(None)),
                        Formula::Eq(Term::var("y"), state_const(Some(action.next))),
                    ]),
                ]),
                Move::Left => {
                    let at_edge = Formula::Eq(Term::var("j"), pos_const(0));
                    Formula::or([
                        Formula::and([
                            at_edge.clone().not(),
                            Formula::or([
                                case_a(&mut synth, false, true),
                                Formula::and([
                                    Formula::Eq(Term::var("i"), Term::var("j")),
                                    Formula::Eq(Term::var("x"), sym_const(action.write)),
                                    Formula::Eq(Term::var("y"), state_const(None)),
                                ]),
                                Formula::and([
                                    synth.is_successor(&i_ty, Term::var("i"), Term::var("j")),
                                    s_row(Term::var("i"), Term::var("x"), state_const(None)),
                                    Formula::Eq(Term::var("y"), state_const(Some(action.next))),
                                ]),
                            ]),
                        ]),
                        Formula::and([
                            at_edge,
                            Formula::or([
                                case_a(&mut synth, false, false),
                                Formula::and([
                                    Formula::Eq(Term::var("i"), Term::var("j")),
                                    Formula::Eq(Term::var("x"), sym_const(action.write)),
                                    Formula::Eq(Term::var("y"), state_const(Some(action.next))),
                                ]),
                            ]),
                        ]),
                    ])
                }
            };
            instr_cases.push(Formula::and([guard, body]));
        }
        let step = Formula::and([
            empty.not(),
            halted.not(),
            Formula::exists("j", i_ty.clone(), Formula::or(instr_cases)),
        ]);

        let fixpoint = Arc::new(Fixpoint {
            op: FixOp::Pfp,
            rel: "S".into(),
            vars: vec![("i".into(), i_ty), ("x".into(), s_ty), ("y".into(), q_ty)],
            body: Box::new(Formula::or([init, keep, step])),
        });
        Ok(CompiledPfpSim {
            fixpoint,
            m,
            alphabet,
            state_count,
            order: order.clone(),
            blank: machine.blank(),
        })
    }

    /// Evaluate the `PFP` fixpoint. The result holds exactly the halting
    /// configuration (`n^m` rows) — the space saving over IFP.
    pub fn run(&self, config: EvalConfig) -> Result<Relation, EvalError> {
        let instance = lt_instance(&self.order);
        let mut ev = Evaluator::new(&instance, self.order.clone(), config);
        let rel = ev.eval_fixpoint(&self.fixpoint)?;
        Ok(rel.as_ref().clone())
    }

    /// Decode the tape word from a configuration relation.
    pub fn decode_output(&self, rel: &Relation) -> Option<String> {
        let capacity = self.order.len().pow(self.m as u32);
        let mut cells = vec![None::<char>; capacity];
        for row in rel.iter() {
            let i = value_index(&self.order, &row[0])?;
            let s = value_index(&self.order, &row[1])?;
            cells[i] = Some(*self.alphabet.get(s)?);
        }
        if cells.iter().any(Option::is_none) {
            return None;
        }
        let mut out: String = cells.into_iter().map(|c| c.expect("checked")).collect();
        while out.ends_with(self.blank) {
            out.pop();
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::CompiledSim;
    use no_object::Universe;

    fn order_n(n: usize) -> AtomOrder {
        let names: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let u = Universe::with_names(names.iter().map(String::as_str));
        AtomOrder::identity(&u)
    }

    fn flipper() -> Machine {
        let mut b = Machine::builder('_');
        b.state("scan")
            .rule("scan", '0', '1', Move::Right, "scan")
            .rule("scan", '1', '0', Move::Right, "scan")
            .rule("scan", '_', '_', Move::Stay, "done")
            .halting("done");
        b.build().unwrap()
    }

    #[test]
    fn pfp_simulation_matches_direct_machine() {
        let machine = flipper();
        let order = order_n(4);
        for input in ["", "0", "10", "010"] {
            let sim = CompiledPfpSim::compile(&machine, &order, 1, input).unwrap();
            let rel = sim.run(EvalConfig::default()).unwrap();
            let direct = machine.run(input, 100).unwrap();
            assert_eq!(
                sim.decode_output(&rel).as_deref(),
                Some(direct.output.as_str()),
                "input {input:?}"
            );
        }
    }

    #[test]
    fn pfp_keeps_only_the_current_configuration() {
        // the paper's point: no timestamps — |R_M| = cells, not cells × time
        let machine = flipper();
        let order = order_n(4);
        // "01" halts in 3 moves: 4 configurations fit the 4 timestamps
        let input = "01";
        let pfp = CompiledPfpSim::compile(&machine, &order, 1, input).unwrap();
        let pfp_rel = pfp.run(EvalConfig::default()).unwrap();
        assert_eq!(pfp_rel.len(), 4, "one row per cell");
        let ifp = CompiledSim::compile(&machine, &order, 1, input).unwrap();
        let ifp_rel = ifp.run(EvalConfig::default()).unwrap();
        assert!(ifp.halted(&ifp_rel));
        // IFP keeps every timestamped configuration: 4 cells × 4 timestamps
        assert_eq!(ifp_rel.len(), 4 * 4);
    }

    #[test]
    fn pfp_simulation_with_left_moves() {
        let mut b = Machine::builder('_');
        b.state("s0")
            .rule("s0", '0', 'a', Move::Right, "s1")
            .rule("s1", '0', 'b', Move::Left, "s2")
            .rule("s2", 'a', 'c', Move::Stay, "done")
            .halting("done");
        let machine = b.build().unwrap();
        let order = order_n(4);
        let sim = CompiledPfpSim::compile(&machine, &order, 1, "00").unwrap();
        let rel = sim.run(EvalConfig::default()).unwrap();
        assert_eq!(sim.decode_output(&rel).as_deref(), Some("cb"));
    }

    #[test]
    fn tape_bound_checked() {
        let order = order_n(2);
        assert!(matches!(
            CompiledPfpSim::compile(&flipper(), &order, 1, "000"),
            Err(SimError::TapeTooSmall { .. })
        ));
    }
}
