//! A small library of concrete machines used by the simulation tests and
//! benchmarks.
//!
//! The Theorem 4.1 demonstration needs real machines operating on instance
//! encodings: an identity machine (the simplest query TM), a bit
//! complementer, a binary incrementer (the classic multi-pass machine,
//! good for longer traces), and an encoding well-formedness scanner.

use crate::machine::{Machine, Move};

/// The blank symbol used by all machines here.
pub const BLANK: char = '_';

/// A machine computing the identity query: scans to the end of the input
/// and halts, leaving the tape unchanged. `enc(q(I)) = enc(I)`.
pub fn identity() -> Machine {
    let mut b = Machine::builder(BLANK);
    b.state("scan");
    b.pass_through("scan", "01{}[]#PGRQS", Move::Right, "scan")
        .rule("scan", BLANK, BLANK, Move::Stay, "done")
        .halting("done");
    b.build().expect("identity machine is well-formed")
}

/// Complements every binary digit, leaving structure symbols unchanged.
pub fn complement_bits() -> Machine {
    let mut b = Machine::builder(BLANK);
    b.state("scan");
    b.rule("scan", '0', '1', Move::Right, "scan")
        .rule("scan", '1', '0', Move::Right, "scan");
    b.pass_through("scan", "{}[]#PGRQS", Move::Right, "scan")
        .rule("scan", BLANK, BLANK, Move::Stay, "done")
        .halting("done");
    b.build().expect("complement machine is well-formed")
}

/// Increments a binary numeral (most significant bit first): scans right
/// to the end, then carries left. Overflow prepends nothing (all-ones
/// becomes all-zeros with a lost carry at the left edge — inputs are
/// expected to have headroom, e.g. a leading 0).
pub fn binary_increment() -> Machine {
    let mut b = Machine::builder(BLANK);
    b.state("right");
    b.pass_through("right", "01", Move::Right, "right")
        .rule("right", BLANK, BLANK, Move::Left, "carry")
        .rule("carry", '1', '0', Move::Left, "carry")
        .rule("carry", '0', '1', Move::Stay, "done")
        .rule("carry", BLANK, BLANK, Move::Stay, "done")
        .halting("done");
    b.build().expect("increment machine is well-formed")
}

/// Checks that braces/brackets in an instance encoding nest properly.
/// Accepts by halting in `accept`, rejects in `reject`.
///
/// The leading relation-name letter of an encoding doubles as the
/// left-end marker, so inputs must start with one of `P G R Q S` (as
/// every `enc(I)` does). The machine repeatedly erases the innermost
/// matching pair, then verifies no opener survives — a quadratic-time
/// recognizer exercising long, non-trivial traces.
pub fn balanced_scanner() -> Machine {
    let mut b = Machine::builder(BLANK);
    b.state("seek"); // look rightward for the first closing symbol
    b.pass_through("seek", "01#xPGRQS", Move::Right, "seek");
    b.pass_through("seek", "{[", Move::Right, "seek");
    b.rule("seek", '}', 'x', Move::Left, "back_brace")
        .rule("seek", ']', 'x', Move::Left, "back_brack")
        .rule("seek", BLANK, BLANK, Move::Left, "verify");
    // walk back to the nearest opener; the wrong opener, or the left
    // marker, means a mismatched closer
    b.pass_through("back_brace", "01#x", Move::Left, "back_brace");
    b.rule("back_brace", '{', 'x', Move::Right, "seek").rule(
        "back_brace",
        '[',
        '[',
        Move::Stay,
        "reject",
    );
    b.pass_through("back_brack", "01#x", Move::Left, "back_brack");
    b.rule("back_brack", '[', 'x', Move::Right, "seek").rule(
        "back_brack",
        '{',
        '{',
        Move::Stay,
        "reject",
    );
    for c in "PGRQS".chars() {
        b.rule("back_brace", c, c, Move::Stay, "reject");
        b.rule("back_brack", c, c, Move::Stay, "reject");
    }
    // verify: walk back to the left marker; any surviving opener is
    // unmatched
    b.pass_through("verify", "01#x", Move::Left, "verify");
    b.rule("verify", '{', '{', Move::Stay, "reject")
        .rule("verify", '[', '[', Move::Stay, "reject")
        .rule("verify", BLANK, BLANK, Move::Stay, "accept");
    for c in "PGRQS".chars() {
        b.rule("verify", c, c, Move::Stay, "accept");
    }
    b.halting("accept").halting("reject");
    b.build().expect("scanner is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::TmError;

    #[test]
    fn identity_leaves_encoding_unchanged() {
        let enc = "P[01#{00#01}#[10#{00#10}]][10#{10}#[00#{01#10}]]";
        let halt = identity().run(enc, 10_000).unwrap();
        assert_eq!(halt.output, enc);
        assert_eq!(halt.steps as usize, enc.len() + 1);
    }

    #[test]
    fn complement_flips_digits_only() {
        let halt = complement_bits().run("P[01#{10}]", 1_000).unwrap();
        assert_eq!(halt.output, "P[10#{01}]");
    }

    #[test]
    fn increment_small_numbers() {
        let m = binary_increment();
        for (input, expect) in [("0", "1"), ("01", "10"), ("011", "100"), ("0111", "1000")] {
            let halt = m.run(input, 1_000).unwrap();
            assert_eq!(halt.output, expect, "inc({input})");
        }
    }

    #[test]
    fn increment_is_polynomial_steps() {
        let m = binary_increment();
        for len in [4usize, 8, 16, 32] {
            let input = format!("0{}", "1".repeat(len - 1));
            let halt = m.run(&input, 10_000).unwrap();
            assert!(
                halt.steps as usize <= 3 * len + 3,
                "len {len}: {} steps",
                halt.steps
            );
        }
    }

    #[test]
    fn scanner_accepts_wellformed() {
        let m = balanced_scanner();
        for good in [
            "P{}",
            "P{00#01}",
            "P[01#{00#01}#[10#{00#10}]]",
            "",
            "P01#10",
        ] {
            let halt = m.run(good, 100_000).unwrap();
            assert_eq!(
                m.state_name(halt.state),
                "accept",
                "input {good:?} ended in {}",
                m.state_name(halt.state)
            );
        }
    }

    #[test]
    fn scanner_rejects_malformed() {
        let m = balanced_scanner();
        for bad in ["P{", "P}", "P{[}]", "P[00}"] {
            let halt = m.run(bad, 100_000).unwrap();
            assert_eq!(
                m.state_name(halt.state),
                "reject",
                "input {bad:?} ended in {}",
                m.state_name(halt.state)
            );
        }
    }

    #[test]
    fn machines_never_get_stuck_on_their_domains() {
        // run the identity machine on every alphabet permutation snippet
        let m = identity();
        for c in "01{}[]#P".chars() {
            let input: String = std::iter::repeat_n(c, 5).collect();
            match m.run(&input, 100) {
                Ok(_) => {}
                Err(TmError::Stuck { .. }) => panic!("stuck on {c}"),
                Err(e) => panic!("{e}"),
            }
        }
    }
}
