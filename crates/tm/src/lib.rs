//! # `no-tm` — Turing machines over instance encodings
//!
//! The machine substrate behind Theorem 4.1: deterministic single-tape
//! machines ([`machine`]), a library of concrete machines on instance
//! encodings ([`machines`]), and the relational simulation of machine
//! runs in the `R_M` configuration relation ([`sim`], [`formula`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod formula;
pub mod formula_pfp;
pub mod machine;
pub mod machines;
pub mod sim;

pub use machine::{Action, Halt, Machine, MachineBuilder, Move, Run, State, TmError};
