//! The `CALC_i^k + IFP` formula of Theorem 4.1's proof, generated and
//! executed.
//!
//! The proof simulates a machine `M` by a fixpoint relation
//! `R_M(⃗t, ⃗i, x, y)` whose rows are produced by iterating a formula with
//! two disjuncts: the *initial configuration* (phase †, built from
//! `enc(I)` as in Lemma 4.4) and the *step* (phase ‡, one disjunct per
//! machine instruction implementing the cases (a)–(c)). This module
//! constructs that formula as an ordinary [`no_core::Formula`] value —
//! printable, parseable, type-checkable — and executes it with the
//! generic CALC evaluator, no machine-specific code in the loop.
//!
//! Representation choices (all from the proof):
//!
//! * timestamps and cell indices are `m`-tuples of atoms, ordered by the
//!   induced lexicographic order; successor is *definable* and synthesized
//!   by [`no_core::orders::OrderSynth`] from a base order relation `ltU`
//!   (the `L + <_U` setting of Theorem 5.2 — postulating the order instead
//!   adds one `∃<_U:{[U,U]}` wrapper, Theorem 4.1);
//! * tape symbols and machine states are indexed into fixed tables and
//!   encoded as width-`sw`/`qw` atom tuples, with one extra state slot for
//!   the "no head here" marker;
//! * the run is inflationary: every iteration of `IFP` adds the next
//!   timestamped configuration, old ones are never touched.
//!
//! Executing this formula is *hyperexponentially* wasteful by design —
//! that is the paper's point about expressibility, not efficiency — so
//! tests and benches drive it on tiny machines and inputs, and check it
//! cell-for-cell against the semantic simulation in [`crate::sim`].

use crate::machine::{Machine, Move, State};
use crate::sim::SimError;
use no_core::ast::{FixOp, Fixpoint, Formula, Term};
use no_core::error::{EvalConfig, EvalError};
use no_core::eval::Evaluator;
use no_core::orders::{LtBase, OrderSynth};
use no_object::{AtomOrder, Instance, Relation, RelationSchema, Schema, Type, Value};
use std::sync::Arc;

/// A compiled machine simulation: the fixpoint formula plus the encoding
/// tables needed to build inputs and decode outputs.
pub struct CompiledSim {
    /// The `IFP` expression denoting `R_M`.
    pub fixpoint: Arc<Fixpoint>,
    /// Index width for timestamps/cells (`n^m` of each).
    pub m: usize,
    /// Symbol-tuple width.
    pub sym_width: usize,
    /// State-tuple width.
    pub state_width: usize,
    /// The symbol table (index = encoding).
    pub alphabet: Vec<char>,
    /// Number of machine states (the "no head" marker is index
    /// `state_count`).
    pub state_count: usize,
    order: AtomOrder,
    blank: char,
    halting: Vec<State>,
}

/// The schema a compiled simulation evaluates against: just the base
/// order relation `ltU[U, U]`.
pub fn sim_schema() -> Schema {
    Schema::from_relations([RelationSchema::new("ltU", vec![Type::Atom, Type::Atom])])
}

/// An instance of [`sim_schema`] holding the strict order induced by the
/// atom enumeration.
pub fn lt_instance(order: &AtomOrder) -> Instance {
    let mut i = Instance::empty(sim_schema());
    for (ra, a) in order.iter().enumerate() {
        for (rb, b) in order.iter().enumerate() {
            if ra < rb {
                i.insert("ltU", vec![Value::Atom(a), Value::Atom(b)]);
            }
        }
    }
    i
}

pub(crate) fn width_for(n: usize, count: usize) -> usize {
    let mut w = 1;
    let mut cap = n;
    while cap < count {
        w += 1;
        cap *= n;
    }
    w
}

pub(crate) fn tuple_type(w: usize) -> Type {
    Type::tuple(vec![Type::Atom; w])
}

/// Encode `idx` as a width-`w` atom tuple, mixed radix base `n`, most
/// significant first — consistent with the induced order on `[U;w]`.
pub(crate) fn index_value(order: &AtomOrder, w: usize, mut idx: usize) -> Value {
    let n = order.len();
    let mut digits = vec![0usize; w];
    for d in (0..w).rev() {
        digits[d] = idx % n;
        idx /= n;
    }
    Value::Tuple(
        digits
            .into_iter()
            .map(|d| Value::Atom(order.at(d)))
            .collect(),
    )
}

/// Decode a width-`w` atom tuple back to its index.
pub(crate) fn value_index(order: &AtomOrder, v: &Value) -> Option<usize> {
    let Value::Tuple(vs) = v else { return None };
    let n = order.len();
    let mut idx = 0usize;
    for c in vs {
        let Value::Atom(a) = c else { return None };
        idx = idx * n + order.rank(*a);
    }
    Some(idx)
}

impl CompiledSim {
    /// Compile the `CALC+IFP` simulation of `machine` on the tape word
    /// `input` (typically `enc(I)`), with index width `m` over the atoms
    /// of `order`.
    pub fn compile(
        machine: &Machine,
        order: &AtomOrder,
        m: usize,
        input: &str,
    ) -> Result<CompiledSim, SimError> {
        let n = order.len();
        let capacity = n.pow(m as u32);
        if input.len() >= capacity {
            return Err(SimError::TapeTooSmall {
                capacity,
                needed: input.len() + 1,
            });
        }
        let alphabet = machine.alphabet();
        let state_count = machine.state_count();
        let sym_width = width_for(n, alphabet.len());
        let state_width = width_for(n, state_count + 1);

        let t_ty = tuple_type(m);
        let s_ty = tuple_type(sym_width);
        let q_ty = tuple_type(state_width);

        let sym_const = |c: char| -> Term {
            let idx = alphabet
                .iter()
                .position(|&a| a == c)
                .expect("symbol in alphabet");
            Term::Const(index_value(order, sym_width, idx))
        };
        let state_const = |s: Option<State>| -> Term {
            let idx = s.map_or(state_count, |st| st.0 as usize);
            Term::Const(index_value(order, state_width, idx))
        };
        let pos_const = |p: usize| -> Term { Term::Const(index_value(order, m, p)) };

        let mut synth = OrderSynth::new(LtBase::Rel("ltU".into()));

        // ---- Init: the initial configuration at timestamp 0 (phase †) ----
        let mut cell_cases: Vec<Formula> = Vec::new();
        for (p, c) in input.chars().enumerate() {
            cell_cases.push(Formula::and([
                Formula::Eq(Term::var("i"), pos_const(p)),
                Formula::Eq(Term::var("x"), sym_const(c)),
                Formula::Eq(
                    Term::var("y"),
                    state_const(if p == 0 { Some(machine.start()) } else { None }),
                ),
            ]));
        }
        if input.is_empty() {
            // head on a blank first cell
            cell_cases.push(Formula::and([
                Formula::Eq(Term::var("i"), pos_const(0)),
                Formula::Eq(Term::var("x"), sym_const(machine.blank())),
                Formula::Eq(Term::var("y"), state_const(Some(machine.start()))),
            ]));
        }
        // padding: every cell beyond the input is blank with no head
        let last = if input.is_empty() { 0 } else { input.len() - 1 };
        cell_cases.push(Formula::and([
            synth.less(&t_ty, pos_const(last), Term::var("i")),
            Formula::Eq(Term::var("x"), sym_const(machine.blank())),
            Formula::Eq(Term::var("y"), state_const(None)),
        ]));
        let init = Formula::and([
            Formula::Eq(Term::var("t"), pos_const(0)),
            Formula::or(cell_cases),
        ]);

        // ---- Step: one disjunct per instruction (phase ‡) ----
        // ∃tp (succ(tp, t) ∧ ∃j ⋁_instr (S(tp, j, c, q0) ∧ cases (a)–(c))).
        // The read symbol and source state of each instruction are
        // *constants*, so they are inlined rather than quantified — the
        // paper's "one such formula is needed for each instruction of M".
        let s_row = |t: Term, i: Term, x: Term, y: Term| Formula::Rel("S".into(), vec![t, i, x, y]);
        let mut instr_cases: Vec<Formula> = Vec::new();
        for ((q0, c), action) in machine.transitions() {
            let guard = s_row(
                Term::var("tp"),
                Term::var("j"),
                sym_const(c),
                state_const(Some(q0)),
            );
            // For each move direction, relate the new row (t, i, x, y) to
            // the old configuration at tp with head at j.
            let case_a_bound = |synth: &mut OrderSynth, exclude_succ: bool, exclude_pred: bool| {
                // cells untouched by the move: i ≠ j and not the target
                let mut parts = vec![
                    Formula::Eq(Term::var("i"), Term::var("j")).not(),
                    s_row(
                        Term::var("tp"),
                        Term::var("i"),
                        Term::var("x"),
                        Term::var("y"),
                    ),
                ];
                if exclude_succ {
                    parts.push(
                        synth
                            .is_successor(&t_ty, Term::var("j"), Term::var("i"))
                            .not(),
                    );
                }
                if exclude_pred {
                    parts.push(
                        synth
                            .is_successor(&t_ty, Term::var("i"), Term::var("j"))
                            .not(),
                    );
                }
                Formula::and(parts)
            };
            let body = match action.mv {
                Move::Stay => {
                    // (a) copy others; (b,c) head cell: new symbol, stays
                    Formula::or([
                        case_a_bound(&mut synth, false, false),
                        Formula::and([
                            Formula::Eq(Term::var("i"), Term::var("j")),
                            Formula::Eq(Term::var("x"), sym_const(action.write)),
                            Formula::Eq(Term::var("y"), state_const(Some(action.next))),
                        ]),
                    ])
                }
                Move::Right => {
                    Formula::or([
                        // (a)
                        case_a_bound(&mut synth, true, false),
                        // (b) the head cell is rewritten and released
                        Formula::and([
                            Formula::Eq(Term::var("i"), Term::var("j")),
                            Formula::Eq(Term::var("x"), sym_const(action.write)),
                            Formula::Eq(Term::var("y"), state_const(None)),
                        ]),
                        // (c) the successor cell keeps its symbol, gains the head
                        Formula::and([
                            synth.is_successor(&t_ty, Term::var("j"), Term::var("i")),
                            s_row(
                                Term::var("tp"),
                                Term::var("i"),
                                Term::var("x"),
                                state_const(None),
                            ),
                            Formula::Eq(Term::var("y"), state_const(Some(action.next))),
                        ]),
                    ])
                }
                Move::Left => {
                    // left move at the left edge is a stay — both cases
                    let at_edge = Formula::Eq(Term::var("j"), pos_const(0));
                    Formula::or([
                        // interior: (a) copy all but j and pred(j)
                        Formula::and([
                            at_edge.clone().not(),
                            Formula::or([
                                case_a_bound(&mut synth, false, true),
                                Formula::and([
                                    Formula::Eq(Term::var("i"), Term::var("j")),
                                    Formula::Eq(Term::var("x"), sym_const(action.write)),
                                    Formula::Eq(Term::var("y"), state_const(None)),
                                ]),
                                Formula::and([
                                    synth.is_successor(&t_ty, Term::var("i"), Term::var("j")),
                                    s_row(
                                        Term::var("tp"),
                                        Term::var("i"),
                                        Term::var("x"),
                                        state_const(None),
                                    ),
                                    Formula::Eq(Term::var("y"), state_const(Some(action.next))),
                                ]),
                            ]),
                        ]),
                        // edge: behaves like a stay
                        Formula::and([
                            at_edge,
                            Formula::or([
                                case_a_bound(&mut synth, false, false),
                                Formula::and([
                                    Formula::Eq(Term::var("i"), Term::var("j")),
                                    Formula::Eq(Term::var("x"), sym_const(action.write)),
                                    Formula::Eq(Term::var("y"), state_const(Some(action.next))),
                                ]),
                            ]),
                        ]),
                    ])
                }
            };
            instr_cases.push(Formula::and([guard, body]));
        }
        let step = Formula::exists(
            "tp",
            t_ty.clone(),
            Formula::and([
                synth.is_successor(&t_ty, Term::var("tp"), Term::var("t")),
                Formula::exists("j", t_ty.clone(), Formula::or(instr_cases)),
            ]),
        );

        let fixpoint = Arc::new(Fixpoint {
            op: FixOp::Ifp,
            rel: "S".into(),
            vars: vec![
                ("t".into(), t_ty.clone()),
                ("i".into(), t_ty),
                ("x".into(), s_ty),
                ("y".into(), q_ty),
            ],
            body: Box::new(Formula::or([init, step])),
        });
        Ok(CompiledSim {
            fixpoint,
            m,
            sym_width,
            state_width,
            alphabet,
            state_count,
            order: order.clone(),
            blank: machine.blank(),
            halting: (0..machine.state_count() as u16)
                .map(State)
                .filter(|s| machine.is_halting(*s))
                .collect(),
        })
    }

    /// Evaluate the fixpoint with the generic CALC evaluator over the
    /// order instance. Returns the full `R_M` relation.
    ///
    /// If the machine needs more than `n^m` moves the iteration runs out
    /// of timestamps and converges on a non-halting final configuration —
    /// check [`CompiledSim::halted`] before trusting
    /// [`CompiledSim::decode_output`].
    pub fn run(&self, config: EvalConfig) -> Result<Relation, EvalError> {
        let instance = lt_instance(&self.order);
        let mut ev = Evaluator::new(&instance, self.order.clone(), config);
        let rel = ev.eval_fixpoint(&self.fixpoint)?;
        Ok(rel.as_ref().clone())
    }

    /// Decode the tape word of timestamp `t` from an `R_M` relation.
    pub fn decode_slice(&self, rel: &Relation, t: usize) -> Option<String> {
        let want_t = index_value(&self.order, self.m, t);
        let capacity = self.order.len().pow(self.m as u32);
        let mut cells = vec![None::<char>; capacity];
        for row in rel.iter() {
            if row[0] != want_t {
                continue;
            }
            let i = value_index(&self.order, &row[1])?;
            let s = value_index(&self.order, &row[2])?;
            cells[i] = Some(*self.alphabet.get(s)?);
        }
        if cells.iter().any(Option::is_none) {
            return None;
        }
        let mut out: String = cells.into_iter().map(|c| c.expect("checked")).collect();
        while out.ends_with(self.blank) {
            out.pop();
        }
        Some(out)
    }

    /// The largest timestamp present in the relation.
    pub fn last_timestamp(&self, rel: &Relation) -> usize {
        rel.iter()
            .filter_map(|row| value_index(&self.order, &row[0]))
            .max()
            .unwrap_or(0)
    }

    /// Decode the final output: the tape of the last timestamp, which is a
    /// halting configuration when the run fit in the index space.
    pub fn decode_output(&self, rel: &Relation) -> Option<String> {
        self.decode_slice(rel, self.last_timestamp(rel))
    }

    /// The head state at timestamp `t`, if a head marker is present.
    pub fn state_at(&self, rel: &Relation, t: usize) -> Option<usize> {
        let want_t = index_value(&self.order, self.m, t);
        for row in rel.iter() {
            if row[0] == want_t {
                let s = value_index(&self.order, &row[3])?;
                if s < self.state_count {
                    return Some(s);
                }
            }
        }
        None
    }

    /// Whether the relation's final configuration is halting.
    pub fn halted(&self, rel: &Relation) -> bool {
        match self.state_at(rel, self.last_timestamp(rel)) {
            Some(s) => self.halting.iter().any(|h| h.0 as usize == s),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Move as M;
    use crate::sim::RelationalRun;
    use no_object::Universe;

    fn order_n(n: usize) -> AtomOrder {
        let names: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let u = Universe::with_names(names.iter().map(String::as_str));
        AtomOrder::identity(&u)
    }

    /// The 2-state flipper: 3 symbols, 2 states — fits width-1 tables
    /// over 4 atoms.
    fn flipper() -> Machine {
        let mut b = Machine::builder('_');
        b.state("scan")
            .rule("scan", '0', '1', M::Right, "scan")
            .rule("scan", '1', '0', M::Right, "scan")
            .rule("scan", '_', '_', M::Stay, "done")
            .halting("done");
        b.build().unwrap()
    }

    #[test]
    fn formula_typechecks_in_calc() {
        let order = order_n(4);
        let m = flipper();
        let sim = CompiledSim::compile(&m, &order, 1, "01").unwrap();
        let f = Formula::FixApp(
            Arc::clone(&sim.fixpoint),
            vec![
                Term::var("a"),
                Term::var("b"),
                Term::var("c"),
                Term::var("d"),
            ],
        );
        let t1 = tuple_type(1);
        let checked = no_core::typeck::check(
            &sim_schema(),
            &[
                ("a".into(), t1.clone()),
                ("b".into(), t1.clone()),
                ("c".into(), t1.clone()),
                ("d".into(), t1),
            ],
            &f,
        )
        .unwrap();
        // tuples of atoms only: set height 0 at width max(m, sw, qw)=1...
        // plus the binary ltU columns; stays within <1,2>
        assert!(checked.is_calc_ik(1, 2), "ik = {:?}", checked.ik());
    }

    #[test]
    fn formula_run_matches_semantic_simulation() {
        let order = order_n(4);
        let machine = flipper();
        let input = "01";
        let sim = CompiledSim::compile(&machine, &order, 1, input).unwrap();
        let rel = sim.run(EvalConfig::default()).unwrap();
        // semantic baseline
        let mut baseline = RelationalRun::new(&machine, &order, 1, input).unwrap();
        baseline.run_to_halt().unwrap();
        assert!(sim.halted(&rel));
        assert_eq!(sim.last_timestamp(&rel) + 1, baseline.history.len());
        for (t, slice) in baseline.history.iter().enumerate() {
            let decoded = sim.decode_slice(&rel, t).expect("complete slice");
            let expected: String = {
                let mut s: String = slice.iter().map(|c| c.symbol).collect();
                while s.ends_with('_') {
                    s.pop();
                }
                s
            };
            assert_eq!(decoded, expected, "timestamp {t}");
        }
        assert_eq!(sim.decode_output(&rel).unwrap(), "10");
    }

    #[test]
    fn formula_run_direct_machine_agreement() {
        // n = 5 atoms: 5 cells and 5 timestamps — enough for every input
        // here to reach its halting configuration
        let order = order_n(5);
        let machine = flipper();
        for input in ["", "0", "1", "010"] {
            let sim = CompiledSim::compile(&machine, &order, 1, input).unwrap();
            let rel = sim.run(EvalConfig::default()).unwrap();
            let direct = machine.run(input, 100).unwrap();
            assert!(sim.halted(&rel), "input {input:?} must reach a halt");
            assert_eq!(
                sim.decode_output(&rel).unwrap(),
                direct.output,
                "input {input:?}"
            );
        }
    }

    #[test]
    fn left_move_machine_simulates() {
        // write a mark, go right, come back left, halt — exercises the
        // Left-move generation including the predecessor logic
        let mut b = Machine::builder('_');
        b.state("s0")
            .rule("s0", '0', 'a', M::Right, "s1")
            .rule("s1", '0', 'b', M::Left, "s2")
            .rule("s2", 'a', 'c', M::Stay, "done")
            .halting("done");
        let machine = b.build().unwrap();
        let order = order_n(4);
        let sim = CompiledSim::compile(&machine, &order, 1, "00").unwrap();
        let rel = sim.run(EvalConfig::default()).unwrap();
        let direct = machine.run("00", 100).unwrap();
        assert_eq!(direct.output, "cb");
        assert_eq!(sim.decode_output(&rel).unwrap(), "cb");
    }

    #[test]
    fn compile_rejects_overfull_tape() {
        let order = order_n(2);
        assert!(matches!(
            CompiledSim::compile(&flipper(), &order, 1, "010"),
            Err(SimError::TapeTooSmall { .. })
        ));
    }

    #[test]
    fn formula_prints_and_reparses() {
        let order = order_n(4);
        let sim = CompiledSim::compile(&flipper(), &order, 1, "0").unwrap();
        let f = Formula::Eq(Term::var("w"), Term::Fix(Arc::clone(&sim.fixpoint)));
        let printed = no_core::print::Printer::new().formula(&f);
        // the printer emits '#k' atom literals; pre-seed a universe so the
        // parser interns name "k" back to atom id k
        let mut u = Universe::with_names(["0", "1", "2", "3"]);
        let back = no_core::parser::parse_formula(&printed, &mut u).unwrap();
        let reprinted = no_core::print::Printer::new().formula(&back);
        assert_eq!(printed, reprinted);
    }
}
