//! The logical plan IR: a flat arena of typed operator nodes.
//!
//! Every front-end (CALC, the algebra, Datalog¬) lowers into this one
//! representation, the optimizer passes rewrite it, and the explain
//! renderer walks it. The arena is append-only and child references are
//! plain indices, which makes structural hash-consing (common-subplan
//! elimination, mirroring the value interner of `no_object::intern`)
//! a rebuild with a key→id map rather than a pointer-identity dance.
//!
//! The operator vocabulary covers the paper's three languages at once:
//! the relational core (`Scan`/`Select`/`Project`/`Join`/set ops), the
//! complex-object operators (`Powerset`, `Nest`, `Unnest` — \[AB87\]),
//! the safe-evaluation operators of Theorem 5.1 (`Range` nodes named by
//! the Definition 5.2/5.3 rule that justified them, `ActiveDomain`
//! fallbacks, `Enumerate`), fixpoints (`Fixpoint` with IFP/PFP), and the
//! deductive side (`Rule`/`DeltaScan`/`Program` for the semi-naive delta
//! rewrite of Datalog¬).

use no_algebra::Pred;
use no_object::{Type, Value};

/// Index of a node in a [`Plan`] arena.
pub type NodeId = usize;

/// A logical plan operator.
#[derive(Clone, PartialEq, Debug)]
pub enum Op {
    /// Scan a database (EDB or, in Datalog plans, IDB) relation.
    Scan {
        /// Relation name.
        rel: String,
    },
    /// Scan only the per-round delta of an IDB relation — produced by the
    /// semi-naive rewrite pass, never by lowering.
    DeltaScan {
        /// IDB relation name.
        rel: String,
    },
    /// σ_pred over the child (algebra predicates).
    Select {
        /// The predicate.
        pred: Pred,
    },
    /// A predicate kept as a rendered description only: the CALC matrix
    /// and Datalog constraint literals (=, ≠, ∈, ∉, ¬R). The executable
    /// form lives in the physical plan; the node documents the work.
    Filter {
        /// Human-readable predicate.
        desc: String,
    },
    /// π_cols (1-based, may repeat or reorder).
    Project {
        /// The projection list.
        cols: Vec<usize>,
    },
    /// Cartesian product of the two children (θ-joins are a `Select` on
    /// top; the paper's algebra has no native equijoin).
    Join,
    /// Set union.
    Union,
    /// Set difference (left minus right).
    Difference,
    /// Set intersection.
    Intersect,
    /// ν_col — nest.
    Nest {
        /// The nested 1-based column.
        col: usize,
    },
    /// μ_col — unnest.
    Unnest {
        /// The unnested 1-based column.
        col: usize,
    },
    /// Π — powerset of a unary child. Hyperexponential by design; the
    /// governor-trip pass flags it whenever the estimate exceeds budgets.
    Powerset,
    /// A constant relation.
    Const {
        /// Column types.
        types: Vec<Type>,
        /// The rows.
        rows: Vec<Vec<Value>>,
    },
    /// The computed range of one variable under safe evaluation, named by
    /// the Definition 5.2/5.3 rule that restricted it (Theorem 5.1).
    Range {
        /// The variable.
        var: String,
        /// Rule id ("1".."10", "1′", "9′").
        rule: String,
        /// Paper citation ("Definition 5.2" / "Definition 5.3").
        citation: String,
    },
    /// Active-domain fallback for a variable no rule restricted.
    ActiveDomain {
        /// The variable.
        var: String,
        /// Its type (set types enumerate powerset-sized domains).
        ty: Type,
    },
    /// Top-level enumeration of the head variables over their range
    /// children, filtering by the matrix child (the last child).
    Enumerate {
        /// Head variables in enumeration order.
        vars: Vec<String>,
    },
    /// A bound variable inside the matrix: ∃/∀ with its range source.
    Quantify {
        /// `"∃"` or `"∀"`.
        quant: &'static str,
        /// The bound variable.
        var: String,
    },
    /// Restore the original head column order after quantifier reordering
    /// permuted the enumeration.
    RestoreColumns {
        /// `perm[i]` = original position of planned column `i`.
        perm: Vec<usize>,
    },
    /// A fixpoint sub-evaluation inside a CALC formula.
    Fixpoint {
        /// `"ifp"` or `"pfp"`.
        op: String,
        /// The fixpoint relation name.
        rel: String,
    },
    /// One Datalog¬ rule: child is the body tree (joins, filters, final
    /// projection to the head).
    Rule {
        /// Rendered head, e.g. `tc(x, y)`.
        head: String,
        /// `Some(i)` when the semi-naive pass pinned the `i`-th (0-based)
        /// recursive body literal to the delta.
        delta_pos: Option<usize>,
    },
    /// The root of a Datalog¬ plan: children are the rule nodes, iterated
    /// to fixpoint under the stated semantics.
    Program {
        /// `"naive"`, `"semi-naive"`, `"stratified"`, `"simultaneous-ifp"`.
        semantics: String,
    },
}

impl Op {
    /// Short operator mnemonic (stable; used in renderings and tests).
    pub fn name(&self) -> &'static str {
        match self {
            Op::Scan { .. } => "scan",
            Op::DeltaScan { .. } => "delta-scan",
            Op::Select { .. } => "select",
            Op::Filter { .. } => "filter",
            Op::Project { .. } => "project",
            Op::Join => "join",
            Op::Union => "union",
            Op::Difference => "difference",
            Op::Intersect => "intersect",
            Op::Nest { .. } => "nest",
            Op::Unnest { .. } => "unnest",
            Op::Powerset => "powerset",
            Op::Const { .. } => "const",
            Op::Range { .. } => "range",
            Op::ActiveDomain { .. } => "active-domain",
            Op::Enumerate { .. } => "enumerate",
            Op::Quantify { .. } => "quantify",
            Op::RestoreColumns { .. } => "restore-columns",
            Op::Fixpoint { .. } => "fixpoint",
            Op::Rule { .. } => "rule",
            Op::Program { .. } => "program",
        }
    }
}

/// One arena node: an operator, its children, and optimizer annotations.
#[derive(Clone, PartialEq, Debug)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// Child node ids (evaluation inputs, left to right).
    pub children: Vec<NodeId>,
    /// Estimated output cardinality, when the stats pass computed one.
    pub est: Option<u64>,
    /// Free-form annotation (pass notes, early-trip warnings).
    pub note: Option<String>,
}

/// A logical plan: an arena plus the root.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Plan {
    /// The nodes; children always precede parents.
    pub nodes: Vec<Node>,
    /// The root node.
    pub root: NodeId,
    /// Number of structurally-duplicate subplans merged by the CSE pass.
    pub shared: usize,
}

impl Plan {
    /// An empty plan (root fixed up by the builder).
    pub fn new() -> Self {
        Plan::default()
    }

    /// Append a node and return its id.
    pub fn add(&mut self, op: Op, children: Vec<NodeId>) -> NodeId {
        self.nodes.push(Node {
            op,
            children,
            est: None,
            note: None,
        });
        self.nodes.len() - 1
    }

    /// Append a node with a cardinality estimate.
    pub fn add_est(&mut self, op: Op, children: Vec<NodeId>, est: Option<u64>) -> NodeId {
        let id = self.add(op, children);
        self.nodes[id].est = est;
        id
    }

    /// The node behind an id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// A structural key for a node, used by hash-consing: the operator and
    /// annotations plus the (already canonical) child ids. `Debug` output
    /// of the payload types is deterministic, so the key is stable.
    pub fn structural_key(&self, node: &Node) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}",
            node.op, node.children, node.est, node.note
        )
    }

    /// How many parents reference each node (the root counts once) —
    /// shared subplans have count > 1 after CSE.
    pub fn refcounts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        counts[self.root] += 1;
        for node in &self.nodes {
            for &c in &node.children {
                counts[c] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_appends_and_counts_refs() {
        let mut p = Plan::new();
        let a = p.add(
            Op::Scan {
                rel: "G".to_string(),
            },
            vec![],
        );
        let j = p.add(Op::Join, vec![a, a]);
        p.root = p.add(Op::Powerset, vec![j]);
        let counts = p.refcounts();
        assert_eq!(counts[a], 2, "scan is referenced twice");
        assert_eq!(counts[j], 1);
        assert_eq!(counts[p.root], 1);
        assert_eq!(p.node(a).op.name(), "scan");
    }

    #[test]
    fn structural_keys_distinguish_payloads() {
        let mut p = Plan::new();
        let a = p.add(
            Op::Scan {
                rel: "G".to_string(),
            },
            vec![],
        );
        let b = p.add(
            Op::Scan {
                rel: "H".to_string(),
            },
            vec![],
        );
        assert_ne!(
            p.structural_key(p.node(a)),
            p.structural_key(p.node(b)),
            "different relations must not hash-cons together"
        );
    }
}
