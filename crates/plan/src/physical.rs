//! The physical plan: the executable counterpart of a logical [`crate::ir::Plan`].
//!
//! Physical operators bind directly to the existing interned/pooled
//! runtime kernels — the CALC [`Evaluator`], the bottom-up algebra
//! evaluator, and the Datalog¬ round engines. That binding is deliberate:
//! the kernels already thread the [`Governor`] fuel/memory accounting at
//! every site, so a planned evaluation draws from exactly the same meters
//! as the legacy tree-walk path and trips with the same structured
//! [`ResourceError`]s. What the optimizer changes is *which* kernel
//! invocation runs (variable order, pinned ranges, delta rewriting,
//! pushed-down selections), never how work is accounted.

use no_algebra::{AlgebraError, Expr};
use no_core::ast::VarName;
use no_core::error::EvalError;
use no_core::eval::{active_order, Evaluator};
use no_core::ranges::compute_ranges_governed;
use no_core::Query;
use no_datalog::{
    eval_pooled, eval_simultaneous_pooled, eval_stratified_pooled, EvalStats, Idb, Program,
    ProgramError, SimEvalError, Strategy, StratifyError,
};
use no_object::{AtomOrder, Governor, Instance, Relation, ResourceError, Type, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Which CALC semantics the plan executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CalcMode {
    /// Active-domain enumeration (Definition 5.1).
    ActiveDomain,
    /// Restricted-domain safe evaluation (Theorem 5.1): compute ranges,
    /// enumerate only them.
    Safe,
}

/// Which Datalog¬ engine the plan drives.
#[derive(Clone, PartialEq, Debug)]
pub enum DatalogMode {
    /// Inflationary, full re-derivation each round.
    Naive,
    /// Inflationary with the semi-naive delta rewrite applied.
    SemiNaive,
    /// Stratified semantics (per-stratum fixpoints).
    Stratified,
    /// Translation to one simultaneous `IFP` on the CALC evaluator, with
    /// the extra body variable typings the translation needs.
    Simultaneous(Vec<(String, Type)>),
}

/// An executable plan. Payloads are the optimized front-end forms the
/// runtime kernels accept; the paired logical [`crate::ir::Plan`] documents the
/// same computation operator by operator.
#[derive(Clone, Debug)]
pub enum Physical {
    /// A CALC query (head possibly permuted by quantifier reordering).
    Calc {
        /// The query to run (after optimizer rewrites).
        query: Query,
        /// Variable typings from plan-time typechecking (safe mode needs
        /// them to recompute ranges per instance).
        var_types: BTreeMap<VarName, Type>,
        /// Semantics.
        mode: CalcMode,
        /// `Some(perm)` when the head was reordered: planned column `i`
        /// is original column `perm[i]`, and execution restores the
        /// original order before returning.
        restore: Option<Vec<usize>>,
        /// Constant pins from predicate pushdown: each `(v, c)` came from
        /// a top-level conjunct `v = c`, so `v`'s range collapses to the
        /// singleton `{c}` (intersected with any computed range).
        pins: Vec<(String, Value)>,
    },
    /// An algebra expression (after pushdown rewrites).
    Algebra {
        /// The optimized expression.
        expr: Expr,
    },
    /// A Datalog¬ program under one of the four strategies.
    Datalog {
        /// The program.
        program: Program,
        /// The strategy (semi-naive iff the delta pass ran).
        mode: DatalogMode,
    },
    /// A columnar plan over the `no-exec` kernels, produced by the
    /// join-algorithms pass for flat conjunctive CALC queries and flat
    /// algebra expressions.
    Exec {
        /// The operator arena to run.
        plan: no_exec::ExecPlan,
        /// Which front-end produced it (decides how a resource trip is
        /// wrapped, so `Session` error chains stay per-engine).
        origin: ExecOrigin,
    },
}

/// The front-end a [`Physical::Exec`] plan came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecOrigin {
    /// Lowered from a CALC query.
    Calc,
    /// Lowered from an algebra expression.
    Algebra,
}

/// What a plan execution produced.
#[derive(Debug)]
pub enum Output {
    /// A single relation (CALC and algebra plans).
    Relation(Relation),
    /// All IDB relations (Datalog plans), with engine stats when the
    /// strategy reports them.
    Idb(Idb, Option<EvalStats>),
}

impl Output {
    /// The relation of a CALC/algebra plan.
    ///
    /// # Panics
    /// Panics on Datalog output — caller mismatch is a bug.
    pub fn into_relation(self) -> Relation {
        match self {
            Output::Relation(r) => r,
            Output::Idb(..) => panic!("expected a relation, got an IDB"),
        }
    }

    /// The IDB of a Datalog plan.
    ///
    /// # Panics
    /// Panics on relation output — caller mismatch is a bug.
    pub fn into_idb(self) -> Idb {
        match self {
            Output::Idb(idb, _) => idb,
            Output::Relation(_) => panic!("expected an IDB, got a relation"),
        }
    }
}

/// Errors from planning or executing a plan, wrapping each engine's
/// structured error unchanged (so governor trips keep their payloads).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// CALC lowering/execution failed.
    Calc(EvalError),
    /// Algebra lowering/execution failed.
    Algebra(AlgebraError),
    /// Datalog execution failed.
    Datalog(ProgramError),
    /// Stratified execution failed.
    Stratify(StratifyError),
    /// Simultaneous-IFP execution failed.
    Simultaneous(SimEvalError),
    /// The plan shape does not fit the requested operation.
    Unsupported(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Calc(e) => write!(f, "{e}"),
            PlanError::Algebra(e) => write!(f, "{e}"),
            PlanError::Datalog(e) => write!(f, "{e}"),
            PlanError::Stratify(e) => write!(f, "{e}"),
            PlanError::Simultaneous(e) => write!(f, "{e}"),
            PlanError::Unsupported(what) => write!(f, "unplannable: {what}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl PlanError {
    /// The structured resource trip inside, when the failure is one.
    pub fn resource(&self) -> Option<&ResourceError> {
        match self {
            PlanError::Calc(EvalError::Resource(r)) => Some(r),
            PlanError::Algebra(AlgebraError::Resource(r)) => Some(r),
            PlanError::Datalog(ProgramError::Resource(r)) => Some(r),
            PlanError::Stratify(StratifyError::Program(ProgramError::Resource(r))) => Some(r),
            PlanError::Simultaneous(SimEvalError::Eval(EvalError::Resource(r))) => Some(r),
            _ => None,
        }
    }
}

impl From<EvalError> for PlanError {
    fn from(e: EvalError) -> Self {
        PlanError::Calc(e)
    }
}

impl From<AlgebraError> for PlanError {
    fn from(e: AlgebraError) -> Self {
        PlanError::Algebra(e)
    }
}

/// Permute a result relation's columns back to the original head order:
/// planned column `i` holds original column `perm[i]`.
fn restore_columns(rel: Relation, perm: &[usize]) -> Relation {
    rel.iter()
        .map(|row| {
            let mut out = vec![Value::Atom(no_object::Atom(0)); row.len()];
            for (i, v) in row.iter().enumerate() {
                out[perm[i]] = v.clone();
            }
            out
        })
        .collect()
}

impl Physical {
    /// Execute the plan on an instance, drawing from `governor` and
    /// fanning hot loops over `pool` — the same contract as every legacy
    /// engine entry point.
    pub fn execute(
        &self,
        instance: &Instance,
        governor: &Governor,
        pool: &minipool::ThreadPool,
    ) -> Result<Output, PlanError> {
        match self {
            Physical::Calc {
                query,
                var_types,
                mode,
                restore,
                pins,
            } => {
                let order = active_order(instance, query);
                let mut ev = Evaluator::with_governor(instance, order, governor.clone())
                    .with_pool(pool.clone());
                match mode {
                    CalcMode::ActiveDomain => {
                        if !pins.is_empty() {
                            let map = pins
                                .iter()
                                .map(|(v, c)| (v.clone(), vec![c.clone()]))
                                .collect();
                            ev = ev.with_ranges(map);
                        }
                    }
                    CalcMode::Safe => {
                        let ranges =
                            compute_ranges_governed(instance, var_types, &query.body, governor)?;
                        let mut map = ranges.to_range_map();
                        for (v, c) in pins {
                            match map.get_mut(v) {
                                // An empty intersection is sound: the
                                // pinned conjunct is unsatisfiable then.
                                Some(vs) => vs.retain(|x| x == c),
                                None => {
                                    map.insert(v.clone(), vec![c.clone()]);
                                }
                            }
                        }
                        ev = ev.with_ranges(map);
                    }
                }
                let rel = ev.query(query)?;
                Ok(Output::Relation(match restore {
                    Some(perm) => restore_columns(rel, perm),
                    None => rel,
                }))
            }
            Physical::Algebra { expr } => {
                let rel = no_algebra::eval_pooled(expr, instance, governor, pool)?;
                Ok(Output::Relation(rel))
            }
            Physical::Datalog { program, mode } => match mode {
                DatalogMode::Naive | DatalogMode::SemiNaive => {
                    let strategy = if *mode == DatalogMode::SemiNaive {
                        Strategy::SemiNaive
                    } else {
                        Strategy::Naive
                    };
                    let (idb, stats) = eval_pooled(program, instance, strategy, governor, pool)
                        .map_err(PlanError::Datalog)?;
                    Ok(Output::Idb(idb, Some(stats)))
                }
                DatalogMode::Stratified => {
                    let idb = eval_stratified_pooled(program, instance, governor, pool)
                        .map_err(PlanError::Stratify)?;
                    Ok(Output::Idb(idb, None))
                }
                DatalogMode::Simultaneous(body_var_types) => {
                    let typed: Vec<(&str, Type)> = body_var_types
                        .iter()
                        .map(|(v, t)| (v.as_str(), t.clone()))
                        .collect();
                    let order = AtomOrder::new(instance.atoms().into_iter().collect());
                    let idb =
                        eval_simultaneous_pooled(program, &typed, instance, order, governor, pool)
                            .map_err(PlanError::Simultaneous)?;
                    Ok(Output::Idb(idb, None))
                }
            },
            Physical::Exec { plan, origin } => {
                let rel =
                    no_exec::execute(plan, instance, governor, pool).map_err(|r| match origin {
                        ExecOrigin::Calc => PlanError::Calc(EvalError::Resource(r)),
                        ExecOrigin::Algebra => PlanError::Algebra(AlgebraError::Resource(r)),
                    })?;
                Ok(Output::Relation(rel))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::Atom;

    #[test]
    fn restore_columns_inverts_a_permutation() {
        let rel: Relation = [vec![
            Value::Atom(Atom(0)),
            Value::Atom(Atom(1)),
            Value::Atom(Atom(2)),
        ]]
        .into_iter()
        .collect();
        // planned column 0 is original column 2, etc.
        let out = restore_columns(rel, &[2, 0, 1]);
        let row = out.iter().next().unwrap().clone();
        assert_eq!(
            row,
            vec![
                Value::Atom(Atom(1)),
                Value::Atom(Atom(2)),
                Value::Atom(Atom(0))
            ]
        );
    }
}
