//! Delta plans: the semi-naive rewrite as a standalone module, plus
//! per-stratum **maintenance plans** for incremental view maintenance.
//!
//! Historically the delta rewrite lived inside the optimizer pass
//! pipeline ([`crate::passes`]) because its only consumer was semi-naive
//! Datalog evaluation. The IVM engine (`crates/ivm`) needs the same
//! Δ-pinned rule variants *outside* the optimizer — to propagate base
//! mutations through materialized views — so the rewrite now lives here
//! and the pass pipeline re-exports it.
//!
//! [`plan_maintenance`] turns a stratified Datalog¬ program into one
//! plan per stratum, mirroring `no_datalog::eval_stratified_pooled`:
//! each stratum is lowered against a schema extended with all lower
//! strata (frozen, so negation only consults finished relations), and
//! gets a maintenance strategy:
//!
//! | stratum shape  | strategy                 | why                                            |
//! |----------------|--------------------------|------------------------------------------------|
//! | non-recursive  | [`MaintenanceStrategy::Counting`] | every derived fact's support count is exact; deletions decrement and drop at zero — no re-derivation pass needed |
//! | recursive      | [`MaintenanceStrategy::DRed`]     | counts diverge on cyclic derivations; delete-rederive over-deletes then re-derives facts with surviving alternative proofs |

use crate::ir::{Node, NodeId, Op, Plan};
use crate::lower::lower_datalog;
use crate::physical::{DatalogMode, PlanError};
use crate::stats::Stats;
use no_datalog::{stratify, Literal, Program};
use no_object::{RelationSchema, Schema};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// delta-rewrite (moved out of the pass pipeline)
// ---------------------------------------------------------------------------

pub(crate) fn copy_subtree(
    src: &Plan,
    id: NodeId,
    dst: &mut Plan,
    transform: &mut impl FnMut(&Node, &mut Plan, Vec<NodeId>) -> NodeId,
) -> NodeId {
    let node = src.node(id);
    let children: Vec<NodeId> = node
        .children
        .iter()
        .map(|&c| copy_subtree(src, c, dst, transform))
        .collect();
    transform(node, dst, children)
}

/// The semi-naive rewrite (the plan-level form of the classic Datalog
/// delta transformation): each rule with `n ≥ 1` positive IDB body
/// literals expands into `n` variants, the `k`-th reading literal `k`
/// from the previous round's **delta** instead of the full relation.
/// Non-recursive rules keep one variant, noted as contributing from the
/// first round only. Soundness: every new fact derivable in round `m`
/// uses at least one fact first derived in round `m−1`, so the variant
/// family derives exactly what the naive rule does.
pub fn delta_rewrite(plan: &Plan, idb: &BTreeSet<String>) -> Plan {
    let root = plan.node(plan.root);
    let Op::Program { semantics: _ } = &root.op else {
        return plan.clone(); // not a Datalog plan; nothing to do
    };
    let mut out = Plan::new();
    let mut new_rules = Vec::new();
    for &rule_id in &root.children {
        let rule = plan.node(rule_id);
        let (Op::Rule { head, .. }, [body]) = (&rule.op, rule.children.as_slice()) else {
            new_rules.push(copy_subtree(plan, rule_id, &mut out, &mut |n, dst, ch| {
                dst.add_est(n.op.clone(), ch, n.est)
            }));
            continue;
        };
        // Count IDB scans in this body, in DFS order.
        let idb_scans = {
            let mut stack = vec![*body];
            let mut n = 0usize;
            while let Some(i) = stack.pop() {
                let node = plan.node(i);
                if matches!(&node.op, Op::Scan { rel } if idb.contains(rel)) {
                    n += 1;
                }
                stack.extend(&node.children);
            }
            n
        };
        if idb_scans == 0 {
            let new_body = copy_subtree(plan, *body, &mut out, &mut |n, dst, ch| {
                dst.add_est(n.op.clone(), ch, n.est)
            });
            let id = out.add(
                Op::Rule {
                    head: head.clone(),
                    delta_pos: None,
                },
                vec![new_body],
            );
            out.nodes[id].note = Some("non-recursive: fires from round 0".to_string());
            new_rules.push(id);
            continue;
        }
        for k in 0..idb_scans {
            let mut seen = 0usize;
            let new_body = copy_subtree(plan, *body, &mut out, &mut |n, dst, ch| {
                if let Op::Scan { rel } = &n.op {
                    if idb.contains(rel) {
                        let this = seen;
                        seen += 1;
                        if this == k {
                            let id = dst.add_est(Op::DeltaScan { rel: rel.clone() }, ch, None);
                            dst.nodes[id].note =
                                Some("facts new in the previous round".to_string());
                            return id;
                        }
                    }
                }
                dst.add_est(n.op.clone(), ch, n.est)
            });
            new_rules.push(out.add(
                Op::Rule {
                    head: head.clone(),
                    delta_pos: Some(k),
                },
                vec![new_body],
            ));
        }
    }
    out.root = out.add(
        Op::Program {
            semantics: "semi-naive".to_string(),
        },
        new_rules,
    );
    out.shared = plan.shared;
    out
}

// ---------------------------------------------------------------------------
// maintenance planning
// ---------------------------------------------------------------------------

/// How a stratum's materialized relations are maintained under deletions.
///
/// Insertions are uniform — semi-naive propagation of the Δ-pinned rule
/// variants — so the strategy only decides the deletion side.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MaintenanceStrategy {
    /// Count derivations per fact (bookkeeping at head projection only).
    /// A deletion decrements the count of every derivation it supported;
    /// a fact dies when its count reaches zero. Exact for non-recursive
    /// strata, where distinct derivations are finite and independent.
    Counting,
    /// Delete-and-re-derive (Gupta–Mumick–Subrahmanian): over-delete
    /// everything transitively supported by the deleted facts, then
    /// re-derive over-deleted facts with a surviving alternative proof.
    /// Required for recursive strata, where derivation counts diverge on
    /// cycles.
    DRed,
}

impl MaintenanceStrategy {
    /// Stable lowercase label used in explain output and wire stats.
    pub fn label(&self) -> &'static str {
        match self {
            MaintenanceStrategy::Counting => "counting",
            MaintenanceStrategy::DRed => "dred",
        }
    }
}

/// One stratum of a [`MaintenancePlan`]: the relations it defines, its
/// Δ-rewritten plan, and the maintenance strategy the shape forces.
#[derive(Clone, Debug)]
pub struct StratumPlan {
    /// The IDB relations this stratum defines, in stratification order.
    pub relations: Vec<String>,
    /// Whether any rule in the stratum reads a same-stratum relation
    /// (i.e. the stratum's fixpoint genuinely iterates).
    pub recursive: bool,
    /// The deletion-side maintenance strategy ([`MaintenanceStrategy::DRed`]
    /// when recursive, [`MaintenanceStrategy::Counting`] otherwise).
    pub strategy: MaintenanceStrategy,
    /// The Δ-rewritten semi-naive plan for this stratum. Lower strata
    /// appear as plain [`Op::Scan`]s — frozen inputs, exactly as in
    /// stratified evaluation — and same-stratum reads expand into
    /// [`Op::DeltaScan`]-pinned rule variants.
    pub plan: Plan,
}

/// A full maintenance plan: one [`StratumPlan`] per stratum, lowest
/// first. Maintained semantics are the **stratified model** (the
/// inflationary model is not incrementalizable: a fact kept by a
/// since-falsified negation has no local justification to retract).
#[derive(Clone, Debug)]
pub struct MaintenancePlan {
    /// Strata in dependency order; later strata may negate earlier ones.
    pub strata: Vec<StratumPlan>,
}

impl MaintenancePlan {
    /// All maintained relation names, in stratification order.
    pub fn relations(&self) -> Vec<String> {
        self.strata
            .iter()
            .flat_map(|s| s.relations.iter().cloned())
            .collect()
    }

    /// Human-readable per-stratum summary lines for explain output.
    pub fn notes(&self) -> Vec<String> {
        self.strata
            .iter()
            .enumerate()
            .map(|(i, s)| {
                format!(
                    "stratum {}: {} [{}{}]",
                    i,
                    s.relations.join(", "),
                    s.strategy.label(),
                    if s.recursive { ", recursive" } else { "" },
                )
            })
            .collect()
    }
}

/// Plan incremental maintenance for a stratified Datalog¬ program.
///
/// Mirrors `no_datalog::eval_stratified_pooled`: strata are planned
/// bottom-up, each against a schema extended with every lower stratum's
/// relations (so those lower — already maintained — relations lower as
/// plain frozen scans), then Δ-rewritten over the stratum's own IDB set.
/// Fails with [`PlanError::Stratify`] when the program has a negative
/// cycle and with [`PlanError::Datalog`] when it doesn't validate.
pub fn plan_maintenance(
    schema: &Schema,
    stats: Option<&Stats>,
    program: &Program,
) -> Result<MaintenancePlan, PlanError> {
    program.validate(schema).map_err(PlanError::Datalog)?;
    let strata = stratify(program).map_err(PlanError::Stratify)?;
    let mut frozen = schema.clone();
    let mut out = Vec::with_capacity(strata.len());
    for layer in &strata {
        let layer_set: BTreeSet<String> = layer.iter().cloned().collect();
        let mut sub = Program::new();
        for name in layer {
            sub.declare(name.clone(), program.idb[name].clone());
        }
        for rule in &program.rules {
            if layer_set.contains(&rule.head) {
                sub.rules.push(rule.clone());
            }
        }
        let recursive = sub.rules.iter().any(|rule| {
            rule.body.iter().any(|lit| {
                matches!(lit, Literal::Pos(name, _) | Literal::Neg(name, _)
                    if layer_set.contains(name))
            })
        });
        let lowered = lower_datalog(&frozen, stats, &sub, &DatalogMode::SemiNaive)?;
        let plan = delta_rewrite(&lowered, &layer_set);
        out.push(StratumPlan {
            relations: layer.clone(),
            recursive,
            strategy: if recursive {
                MaintenanceStrategy::DRed
            } else {
                MaintenanceStrategy::Counting
            },
            plan,
        });
        // freeze this stratum's relations into the schema for the next one
        for name in layer {
            frozen.add(RelationSchema::new(name.clone(), program.idb[name].clone()));
        }
    }
    Ok(MaintenancePlan { strata: out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_datalog::DTerm;
    use no_object::Type;

    fn graph_schema() -> Schema {
        Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])])
    }

    /// tc + node + unreach — the textbook two-stratum program.
    fn unreach_program() -> Program {
        let mut p = Program::new();
        p.declare("tc", vec![Type::Atom, Type::Atom]);
        p.declare("node", vec![Type::Atom]);
        p.declare("unreach", vec![Type::Atom, Type::Atom]);
        p.rule(
            "node",
            vec![DTerm::var("x")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("tc".into(), vec![DTerm::var("x"), DTerm::var("z")]),
                Literal::Pos("G".into(), vec![DTerm::var("z"), DTerm::var("y")]),
            ],
        );
        p.rule(
            "unreach",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("node".into(), vec![DTerm::var("x")]),
                Literal::Pos("node".into(), vec![DTerm::var("y")]),
                Literal::Neg("tc".into(), vec![DTerm::var("x"), DTerm::var("y")]),
            ],
        );
        p
    }

    fn count_ops(plan: &Plan, pred: impl Fn(&Op) -> bool) -> usize {
        plan.nodes.iter().filter(|n| pred(&n.op)).count()
    }

    #[test]
    fn strategies_follow_stratum_recursion() {
        let mp = plan_maintenance(&graph_schema(), None, &unreach_program()).unwrap();
        assert_eq!(mp.strata.len(), 2);
        let lower = &mp.strata[0];
        assert!(lower.relations.contains(&"tc".to_string()));
        assert!(lower.recursive);
        assert_eq!(lower.strategy, MaintenanceStrategy::DRed);
        let upper = &mp.strata[1];
        assert_eq!(upper.relations, vec!["unreach".to_string()]);
        assert!(!upper.recursive);
        assert_eq!(upper.strategy, MaintenanceStrategy::Counting);
        assert_eq!(
            mp.relations(),
            vec!["node".to_string(), "tc".to_string(), "unreach".to_string()]
        );
    }

    #[test]
    fn recursive_stratum_gets_delta_scans_and_frozen_lower_strata_do_not() {
        let mp = plan_maintenance(&graph_schema(), None, &unreach_program()).unwrap();
        // stratum 0: the recursive tc rule reads Δtc
        assert!(
            count_ops(&mp.strata[0].plan, |op| matches!(op, Op::DeltaScan { .. })) >= 1,
            "recursive stratum must pin a delta scan"
        );
        // stratum 1 reads node/tc as frozen inputs — plain scans only
        assert_eq!(
            count_ops(&mp.strata[1].plan, |op| matches!(op, Op::DeltaScan { .. })),
            0,
            "lower strata are frozen, never delta-scanned"
        );
    }

    #[test]
    fn negative_cycle_is_a_plan_error() {
        let mut p = Program::new();
        p.declare("p", vec![Type::Atom]);
        p.declare("q", vec![Type::Atom]);
        p.rule(
            "p",
            vec![DTerm::var("x")],
            vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("x")]),
                Literal::Neg("q".into(), vec![DTerm::var("x")]),
            ],
        );
        p.rule(
            "q",
            vec![DTerm::var("x")],
            vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("x")]),
                Literal::Neg("p".into(), vec![DTerm::var("x")]),
            ],
        );
        assert!(matches!(
            plan_maintenance(&graph_schema(), None, &p),
            Err(PlanError::Stratify(_))
        ));
    }

    #[test]
    fn notes_summarize_each_stratum() {
        let mp = plan_maintenance(&graph_schema(), None, &unreach_program()).unwrap();
        let notes = mp.notes();
        assert_eq!(notes.len(), 2);
        assert!(notes[0].contains("dred") && notes[0].contains("recursive"));
        assert!(notes[1].contains("counting"));
    }

    #[test]
    fn delta_rewrite_expands_each_recursive_rule_per_idb_scan() {
        let schema = graph_schema();
        let mut p = Program::new();
        p.declare("tc", vec![Type::Atom, Type::Atom]);
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("tc".into(), vec![DTerm::var("x"), DTerm::var("z")]),
                Literal::Pos("tc".into(), vec![DTerm::var("z"), DTerm::var("y")]),
            ],
        );
        let lowered = lower_datalog(&schema, None, &p, &DatalogMode::SemiNaive).unwrap();
        let idb: BTreeSet<String> = ["tc".to_string()].into();
        let rewritten = delta_rewrite(&lowered, &idb);
        // base rule stays single; the quadratic rule splits into 2 variants
        let rules = count_ops(&rewritten, |op| matches!(op, Op::Rule { .. }));
        assert_eq!(rules, 3);
        assert_eq!(
            count_ops(&rewritten, |op| matches!(op, Op::DeltaScan { .. })),
            2
        );
    }
}
