//! Compile-to-plan: one logical/physical query-plan IR for every engine.
//!
//! All three front-ends of the PODS'91 reproduction — the calculus
//! (CALC_{i,k}), the nested algebra with powerset, and inflationary
//! Datalog¬ — compile into a single logical plan IR ([`ir::Plan`]), get
//! rewritten by a pipeline of semantics-preserving optimizer passes
//! ([`passes`]), and execute as a physical plan ([`physical::Physical`])
//! whose operators bind to the existing interned/pooled runtime kernels.
//! Because the kernels already thread the [`no_object::Governor`] at every
//! accounting site, planned evaluation draws the same fuel and trips with
//! the same structured errors as the legacy tree-walk path — which is
//! exactly what the differential suite proves.
//!
//! The pieces:
//!
//! - [`ir`] — the flat-arena logical plan (operators named after the
//!   paper's constructs, down to Definition 5.2/5.3 range rules);
//! - [`lower`] — CALC / algebra / Datalog¬ lowering;
//! - [`stats`] — O(schema) instance statistics and schema fingerprints;
//! - [`passes`] — pushdown, quantifier reordering, CSE, the semi-naive
//!   delta rewrite, and governor-aware early-trip annotation;
//! - [`joins`] — the join-algorithms pass: flat conjunctive CALC and flat
//!   algebra expressions lower to the columnar `no-exec` kernels, with a
//!   statistics-driven algorithm picked per join (hash / merge / nested
//!   loop) and recorded in the plan;
//! - [`physical`] — the executable plan and its kernel bindings;
//! - [`explain`] — deterministic text/JSON renderings (`:explain`);
//! - [`cache`] — the LRU plan cache keyed on normalized text + schema
//!   fingerprint.

#![warn(missing_docs)]

pub mod cache;
pub mod delta;
pub mod explain;
pub mod ir;
pub mod joins;
pub mod lower;
pub mod passes;
pub mod physical;
pub mod stats;

pub use cache::{CacheKey, PlanCache, PlanKind};
pub use delta::{
    delta_rewrite, plan_maintenance, MaintenancePlan, MaintenanceStrategy, StratumPlan,
};
pub use explain::{json_escape, plan_tree_text};
pub use ir::{Node, NodeId, Op, Plan};
pub use joins::{choose_join, ExecLowering};
pub use lower::{lower_algebra, lower_calc, lower_datalog, to_expr, CalcLowering};
pub use passes::{Pass, PassSet};
pub use physical::{CalcMode, DatalogMode, ExecOrigin, Output, Physical, PlanError};
pub use stats::{schema_fingerprint, Stats};

use no_algebra::Expr;
use no_core::print::Printer;
use no_core::Query;
use no_datalog::Program;
use no_object::{Governor, Instance, Limits, Schema};

/// The planner: owns the inputs optimization needs (schema, optional
/// statistics, optional governor limits) and the pass set to apply.
pub struct Planner<'a> {
    schema: &'a Schema,
    stats: Option<Stats>,
    limits: Option<Limits>,
    passes: PassSet,
}

impl<'a> Planner<'a> {
    /// A planner for `schema` with every pass enabled and no stats or
    /// limits (stats unlock reordering; limits unlock trip warnings).
    pub fn new(schema: &'a Schema) -> Self {
        Planner {
            schema,
            stats: None,
            limits: None,
            passes: PassSet::all(),
        }
    }

    /// Use instance statistics (enables quantifier reordering and
    /// cardinality estimates in `:explain`).
    pub fn with_stats(mut self, stats: Stats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Collect statistics from an instance directly — the detailed tier,
    /// including exact per-column distinct counts, which the
    /// join-algorithms pass uses to pick per-join algorithms.
    pub fn with_instance(self, instance: &Instance) -> Self {
        self.with_stats(Stats::of_detailed(instance))
    }

    /// Use governor limits (enables early-trip warnings in the plan).
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Restrict which optimizer passes run (the per-pass equivalence
    /// property tests toggle passes one at a time through this).
    pub fn with_passes(mut self, passes: PassSet) -> Self {
        self.passes = passes;
        self
    }

    /// Plan a CALC query under the given semantics.
    pub fn plan_calc(&self, query: &Query, mode: CalcMode) -> Result<Planned, PlanError> {
        let printer = Printer::new();
        let lowered = lower::lower_calc(self.schema, self.stats.as_ref(), query)?;
        let mode_label = match mode {
            CalcMode::ActiveDomain => "active-domain",
            CalcMode::Safe => "safe",
        };

        // Flat conjunctive queries lower to the columnar join kernels
        // instead of quantifier enumeration: the recognized fragment has
        // identical active-domain and safe semantics (every variable is
        // restricted by a positive atom — rule 1 of Definition 5.2), so
        // one physical plan serves both modes.
        if self.passes.contains(Pass::Joins) {
            let head_types: Vec<no_object::Type> =
                query.head.iter().map(|(_, t)| t.clone()).collect();
            let lowering = if let Some(cq) = no_core::conjunctive::decompose(query) {
                Some((
                    joins::lower_conjunctive_calc(&cq, &head_types, self.stats.as_ref()),
                    "flat conjunctive query: lowered to columnar join kernels",
                ))
            } else {
                // The non-conjunctive fragment reachable by union: a
                // top-level disjunction of flat conjunctive disjuncts
                // lowers to a union of conjunctive plans.
                no_core::conjunctive::decompose_union(query).map(|cqs| {
                    (
                        joins::lower_union_calc(&cqs, &head_types, self.stats.as_ref()),
                        "disjunctive query: lowered to a union of conjunctive plans",
                    )
                })
            };
            if let Some((lowering, class_note)) = lowering {
                let applied = vec![Pass::Joins.name()];
                let mut header = vec![
                    format!("query class: CALC⟨i={}, k={}⟩", lowered.ik.0, lowered.ik.1),
                    class_note.to_string(),
                ];
                header.extend(lowering.notes);
                let physical = Physical::Exec {
                    plan: lowering.exec,
                    origin: ExecOrigin::Calc,
                };
                return Ok(self.finish(
                    lowering.plan,
                    physical,
                    "calc",
                    mode_label,
                    applied,
                    header,
                ));
            }
        }

        let mut plan = lowered.plan;
        let mut query = query.clone();
        let mut applied = Vec::new();
        let mut header = vec![format!(
            "query class: CALC⟨i={}, k={}⟩",
            lowered.ik.0, lowered.ik.1
        )];

        // Pushdown: top-level `v = c` conjuncts pin ranges to singletons.
        let mut pins = Vec::new();
        if self.passes.contains(Pass::Pushdown) {
            applied.push(Pass::Pushdown.name());
            pins = passes::calc_pins(&query);
            for (v, c) in &pins {
                if let Some(pos) = query.head.iter().position(|(hv, _)| hv == v) {
                    let id = lowered.range_nodes[pos];
                    plan.nodes[id].est = Some(1);
                    plan.nodes[id].note =
                        Some(format!("pinned to {} by pushdown", printer.value(c)));
                }
                header.push(format!(
                    "pinned: {v} = {} (top-level equality)",
                    printer.value(c)
                ));
            }
        }

        // Reorder: enumerate the cheapest range first; a RestoreColumns
        // root puts the output back in source order.
        let mut restore = None;
        if self.passes.contains(Pass::Reorder) && self.stats.is_some() {
            applied.push(Pass::Reorder.name());
            let ests: Vec<Option<u64>> = lowered
                .range_nodes
                .iter()
                .map(|&id| plan.nodes[id].est)
                .collect();
            if let Some(perm) = passes::sort_permutation(&ests) {
                let head = query.head.clone();
                query.head = perm.iter().map(|&i| head[i].clone()).collect();
                let en = lowered.enumerate;
                let matrix = *plan.nodes[en].children.last().expect("matrix child");
                let mut children: Vec<NodeId> =
                    perm.iter().map(|&i| lowered.range_nodes[i]).collect();
                children.push(matrix);
                plan.nodes[en].children = children;
                if let Op::Enumerate { vars } = &mut plan.nodes[en].op {
                    *vars = query.head.iter().map(|(v, _)| v.clone()).collect();
                }
                let est = plan.nodes[en].est;
                plan.root = plan.add_est(Op::RestoreColumns { perm: perm.clone() }, vec![en], est);
                header.push("quantifiers reordered by estimated range size".to_string());
                restore = Some(perm);
            }
        }

        let physical = Physical::Calc {
            query,
            var_types: lowered.var_types,
            mode,
            restore,
            pins,
        };
        Ok(self.finish(plan, physical, "calc", mode_label, applied, header))
    }

    /// Plan an algebra expression.
    pub fn plan_algebra(&self, expr: &Expr) -> Result<Planned, PlanError> {
        let mut applied = Vec::new();
        let mut header = Vec::new();
        let expr = if self.passes.contains(Pass::Pushdown) {
            applied.push(Pass::Pushdown.name());
            let (rewritten, changed) = passes::pushdown_expr(expr, self.schema);
            if changed {
                header.push("selections pushed toward scans".to_string());
            }
            rewritten
        } else {
            expr.clone()
        };
        let plan = lower::lower_algebra(self.schema, self.stats.as_ref(), &expr)?;

        // Flat expressions (no nest/unnest/powerset) lower to the
        // columnar kernels; σ-over-product with cross-side equalities
        // becomes an equi-join with a planner-chosen algorithm. The
        // legacy lowering above already validated the expression, so
        // error behavior is identical on both paths.
        if self.passes.contains(Pass::Joins) {
            if let Some(lowering) =
                joins::lower_algebra_exec(&expr, self.schema, self.stats.as_ref())
            {
                applied.push(Pass::Joins.name());
                header.push("flat expression: lowered to columnar join kernels".to_string());
                header.extend(lowering.notes);
                let physical = Physical::Exec {
                    plan: lowering.exec,
                    origin: ExecOrigin::Algebra,
                };
                return Ok(self.finish(
                    lowering.plan,
                    physical,
                    "algebra",
                    "columnar",
                    applied,
                    header,
                ));
            }
        }

        let physical = Physical::Algebra { expr };
        Ok(self.finish(plan, physical, "algebra", "bottom-up", applied, header))
    }

    /// Plan a Datalog¬ program. A `SemiNaive` request only yields the
    /// delta-rewritten plan when the delta pass is enabled; with the pass
    /// off it downgrades to naive rounds (same fixpoint, no Δ pruning) —
    /// that downgrade is what the per-pass equivalence test exercises.
    pub fn plan_datalog(&self, program: &Program, mode: DatalogMode) -> Result<Planned, PlanError> {
        let mut applied = Vec::new();
        let mut header = vec![format!(
            "{} rule(s), {} idb relation(s)",
            program.rules.len(),
            program.idb.len()
        )];
        let mode = match mode {
            DatalogMode::SemiNaive if !self.passes.contains(Pass::Delta) => {
                header.push("delta pass disabled: semi-naive downgraded to naive".to_string());
                DatalogMode::Naive
            }
            m => m,
        };
        let mut plan = lower::lower_datalog(self.schema, self.stats.as_ref(), program, &mode)?;
        if self.passes.contains(Pass::Joins) {
            applied.push(Pass::Joins.name());
            header.push(
                "joins probe per-column hash indexes; delta rules run HashJoin(probe=Δ)"
                    .to_string(),
            );
        }
        if mode == DatalogMode::SemiNaive {
            applied.push(Pass::Delta.name());
            let idb = program.idb.keys().cloned().collect();
            plan = passes::delta_rewrite(&plan, &idb);
        }
        let mode_label = match &mode {
            DatalogMode::Naive => "naive",
            DatalogMode::SemiNaive => "semi-naive",
            DatalogMode::Stratified => "stratified",
            DatalogMode::Simultaneous(_) => "simultaneous-ifp",
        };
        let physical = Physical::Datalog {
            program: program.clone(),
            mode,
        };
        Ok(self.finish(plan, physical, "datalog", mode_label, applied, header))
    }

    /// Shared tail of every front-end: CSE, trip annotation, packaging.
    fn finish(
        &self,
        mut plan: Plan,
        physical: Physical,
        engine: &'static str,
        mode_label: &str,
        mut applied: Vec<&'static str>,
        header: Vec<String>,
    ) -> Planned {
        if self.passes.contains(Pass::Cse) {
            applied.push(Pass::Cse.name());
            plan = passes::cse(&plan);
        }
        let mut warnings = Vec::new();
        if self.passes.contains(Pass::Trips) {
            if let Some(limits) = &self.limits {
                applied.push(Pass::Trips.name());
                warnings = passes::governor_trips(&mut plan, limits);
            }
        }
        Planned {
            plan,
            physical,
            engine,
            mode_label: mode_label.to_string(),
            passes: applied,
            header,
            warnings,
        }
    }
}

/// A finished plan: the logical IR for explaining, the physical form for
/// executing, and the provenance the renderings show.
#[derive(Debug)]
pub struct Planned {
    /// The (optimized) logical plan.
    pub plan: Plan,
    /// The executable physical plan.
    pub physical: Physical,
    /// `"calc"`, `"algebra"`, or `"datalog"`.
    pub engine: &'static str,
    /// Semantics/strategy within the engine.
    pub mode_label: String,
    /// Names of the optimizer passes that ran, in pipeline order.
    pub passes: Vec<&'static str>,
    /// Extra header lines (query class, pins, rewrite notes).
    pub header: Vec<String>,
    /// Early-trip warnings from the governor pass.
    pub warnings: Vec<String>,
}

impl Planned {
    /// The stable text rendering behind `:explain`.
    pub fn render_text(&self) -> String {
        let mut out = format!("plan: {} ({})\n", self.engine, self.mode_label);
        let passes = if self.passes.is_empty() {
            "(none)".to_string()
        } else {
            self.passes.join(", ")
        };
        out.push_str(&format!("passes: {passes}\n"));
        for h in &self.header {
            out.push_str(h);
            out.push('\n');
        }
        if self.plan.shared > 0 {
            out.push_str(&format!("shared subplans merged: {}\n", self.plan.shared));
        }
        for w in &self.warnings {
            out.push_str(&format!("warning: ⚠ {w}\n"));
        }
        out.push_str(&explain::plan_tree_text(&self.plan));
        out
    }

    /// The stable JSON rendering behind `nestdb explain --format json`.
    pub fn render_json(&self) -> String {
        use explain::json_escape as esc;
        let passes: Vec<String> = self
            .passes
            .iter()
            .map(|p| format!("\"{}\"", esc(p)))
            .collect();
        let header: Vec<String> = self
            .header
            .iter()
            .map(|h| format!("\"{}\"", esc(h)))
            .collect();
        let warnings: Vec<String> = self
            .warnings
            .iter()
            .map(|w| format!("\"{}\"", esc(w)))
            .collect();
        format!(
            "{{\"engine\": \"{}\", \"mode\": \"{}\", \"passes\": [{}], \"header\": [{}], \"warnings\": [{}], \"shared\": {}, \"root\": {}}}",
            esc(self.engine),
            esc(&self.mode_label),
            passes.join(", "),
            header.join(", "),
            warnings.join(", "),
            self.plan.shared,
            explain::node_json(&self.plan, self.plan.root),
        )
    }

    /// Execute on an instance (see [`Physical::execute`]).
    pub fn execute(
        &self,
        instance: &Instance,
        governor: &Governor,
        pool: &minipool::ThreadPool,
    ) -> Result<Output, PlanError> {
        self.physical.execute(instance, governor, pool)
    }
}

/// Cache key for a CALC query (normalized through the deterministic
/// printer, so formatting differences in source text don't split entries).
pub fn calc_key(schema: &Schema, query: &Query, mode: CalcMode) -> CacheKey {
    CacheKey {
        kind: match mode {
            CalcMode::ActiveDomain => PlanKind::CalcActiveDomain,
            CalcMode::Safe => PlanKind::CalcSafe,
        },
        mode: String::new(),
        text: Printer::new().query(query),
        schema: schema_fingerprint(schema),
    }
}

/// Cache key for an algebra expression.
pub fn algebra_key(schema: &Schema, expr: &Expr) -> CacheKey {
    CacheKey {
        kind: PlanKind::Algebra,
        mode: String::new(),
        text: expr.to_string(),
        schema: schema_fingerprint(schema),
    }
}

/// Cache key for a Datalog¬ program under a named strategy.
pub fn datalog_key(schema: &Schema, program: &Program, strategy: &str) -> CacheKey {
    CacheKey {
        kind: PlanKind::Datalog,
        mode: strategy.to_string(),
        text: program.to_string(),
        schema: schema_fingerprint(schema),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_core::ast::{Formula, Term};
    use no_object::{Atom, RelationSchema, Type, Universe, Value};

    fn graph() -> (Schema, Instance) {
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let mut i = Instance::empty(schema.clone());
        let _u = Universe::with_names(["a", "b", "c"]);
        for (x, y) in [(0u32, 1u32), (1, 2)] {
            i.insert("G", vec![Value::Atom(Atom(x)), Value::Atom(Atom(y))]);
        }
        (schema, i)
    }

    fn edge_query() -> Query {
        Query::new(
            vec![("x".to_string(), Type::Atom), ("y".to_string(), Type::Atom)],
            Formula::Rel("G".to_string(), vec![Term::var("x"), Term::var("y")]),
        )
    }

    #[test]
    fn planned_calc_matches_direct_evaluation() {
        let (schema, inst) = graph();
        let q = edge_query();
        let planner = Planner::new(&schema).with_instance(&inst);
        let planned = planner.plan_calc(&q, CalcMode::Safe).unwrap();
        let gov = Governor::unlimited();
        let pool = minipool::ThreadPool::sequential();
        let rel = planned.execute(&inst, &gov, &pool).unwrap().into_relation();
        assert_eq!(rel.len(), 2);
        // The conjunctive query takes the columnar path...
        assert!(matches!(planned.physical, Physical::Exec { .. }));
        assert!(planned.render_text().contains("join-algorithms"));
        // ...and with the pass off, the legacy safe-evaluation plan.
        let legacy = Planner::new(&schema)
            .with_instance(&inst)
            .with_passes(PassSet::all().without(Pass::Joins))
            .plan_calc(&q, CalcMode::Safe)
            .unwrap();
        assert!(legacy.render_text().contains("range x ← rule 1"));
        let lrel = legacy.execute(&inst, &gov, &pool).unwrap().into_relation();
        assert_eq!(rel, lrel, "columnar and legacy plans agree");
    }

    #[test]
    fn disjunctive_query_lowers_to_union_of_conjunctive_plans() {
        let (schema, inst) = graph();
        // q(x, y) :- G(x, y) \/ G(y, x) — the symmetric closure.
        let q = Query::new(
            vec![("x".to_string(), Type::Atom), ("y".to_string(), Type::Atom)],
            Formula::or([
                Formula::Rel("G".to_string(), vec![Term::var("x"), Term::var("y")]),
                Formula::Rel("G".to_string(), vec![Term::var("y"), Term::var("x")]),
            ]),
        );
        let gov = Governor::unlimited();
        let pool = minipool::ThreadPool::sequential();
        let planned = Planner::new(&schema)
            .with_instance(&inst)
            .plan_calc(&q, CalcMode::Safe)
            .unwrap();
        assert!(
            matches!(planned.physical, Physical::Exec { .. }),
            "disjunctive fragment takes the columnar path"
        );
        assert!(planned
            .header
            .iter()
            .any(|h| h.contains("union of conjunctive plans")));
        let rel = planned.execute(&inst, &gov, &pool).unwrap().into_relation();
        // edges (a,b),(b,c) plus their reversals = 4 rows
        assert_eq!(rel.len(), 4);
        // the tree-walk baseline agrees
        let baseline = Planner::new(&schema)
            .with_passes(PassSet::none())
            .plan_calc(&q, CalcMode::Safe)
            .unwrap()
            .execute(&inst, &gov, &pool)
            .unwrap()
            .into_relation();
        assert_eq!(rel, baseline);
    }

    #[test]
    fn pinned_constant_restricts_output() {
        let (schema, inst) = graph();
        let q = Query::new(
            vec![("x".to_string(), Type::Atom), ("y".to_string(), Type::Atom)],
            Formula::and([
                Formula::Rel("G".to_string(), vec![Term::var("x"), Term::var("y")]),
                Formula::Eq(Term::var("x"), Term::Const(Value::Atom(Atom(0)))),
            ]),
        );
        let planner = Planner::new(&schema).with_instance(&inst);
        for mode in [CalcMode::ActiveDomain, CalcMode::Safe] {
            let planned = planner.plan_calc(&q, mode).unwrap();
            let gov = Governor::unlimited();
            let pool = minipool::ThreadPool::sequential();
            let rel = planned.execute(&inst, &gov, &pool).unwrap().into_relation();
            assert_eq!(rel.len(), 1, "only the edge out of atom 0");
        }
    }

    #[test]
    fn reorder_restores_column_order() {
        // Head (x, y) where y's best relation (E, 1 row) is smaller than
        // x's (G, 3 rows) forces a permutation; columns must come back in
        // source order.
        let schema2 = Schema::from_relations([
            RelationSchema::new("G", vec![Type::Atom, Type::Atom]),
            RelationSchema::new("E", vec![Type::Atom]),
        ]);
        let mut inst = Instance::empty(schema2.clone());
        for (x, y) in [(0u32, 1u32), (1, 2), (2, 0)] {
            inst.insert("G", vec![Value::Atom(Atom(x)), Value::Atom(Atom(y))]);
        }
        inst.insert("E", vec![Value::Atom(Atom(2))]);
        let q = Query::new(
            vec![("x".to_string(), Type::Atom), ("y".to_string(), Type::Atom)],
            Formula::and([
                Formula::Rel("G".to_string(), vec![Term::var("x"), Term::var("y")]),
                Formula::Rel("E".to_string(), vec![Term::var("y")]),
            ]),
        );
        // Disable the join-algorithms pass: this test exercises the
        // legacy quantifier-reordering machinery specifically.
        let planner = Planner::new(&schema2)
            .with_instance(&inst)
            .with_passes(PassSet::all().without(Pass::Joins));
        let planned = planner.plan_calc(&q, CalcMode::Safe).unwrap();
        match &planned.physical {
            Physical::Calc { restore, .. } => {
                assert_eq!(restore.as_deref(), Some(&[1usize, 0][..]), "y first");
            }
            _ => unreachable!(),
        }
        let gov = Governor::unlimited();
        let pool = minipool::ThreadPool::sequential();
        let rel = planned.execute(&inst, &gov, &pool).unwrap().into_relation();
        // G(1,2) ∧ E(2): row must come back as (x=1, y=2), not permuted.
        let row = rel.iter().next().unwrap().clone();
        assert_eq!(row, vec![Value::Atom(Atom(1)), Value::Atom(Atom(2))]);
        // the unpermuted baseline agrees
        let baseline = Planner::new(&schema2)
            .with_passes(PassSet::none())
            .plan_calc(&q, CalcMode::Safe)
            .unwrap()
            .execute(&inst, &gov, &pool)
            .unwrap()
            .into_relation();
        assert_eq!(rel, baseline);
        // the columnar path (all passes) agrees too
        let columnar = Planner::new(&schema2)
            .with_instance(&inst)
            .plan_calc(&q, CalcMode::Safe)
            .unwrap()
            .execute(&inst, &gov, &pool)
            .unwrap()
            .into_relation();
        assert_eq!(rel, columnar);
    }

    #[test]
    fn cache_keys_normalize_and_separate() {
        let (schema, _) = graph();
        let q = edge_query();
        let k1 = calc_key(&schema, &q, CalcMode::Safe);
        let k2 = calc_key(&schema, &q.clone(), CalcMode::Safe);
        assert_eq!(k1, k2);
        let k3 = calc_key(&schema, &q, CalcMode::ActiveDomain);
        assert_ne!(k1, k3, "semantics are part of the key");
    }
}
