//! The join-algorithms pass: lowering to the columnar kernels.
//!
//! Two front-ends reach `no-exec`'s physical operators through this
//! module:
//!
//! * **Flat conjunctive CALC** (recognized by
//!   `no_core::conjunctive::decompose`): atoms become indexed scans,
//!   intra-atom constants/duplicates and equality pins become selects,
//!   and shared variables across atoms become equi-join keys. Join order
//!   is greedy left-deep by estimated cardinality (connected atoms
//!   preferred, source order breaking ties, so plans are deterministic
//!   for a fixed statistics snapshot).
//! * **Flat algebra expressions** — everything except `Nest`/`Unnest`/
//!   `Powerset`, which keep the tree-walk path. A `Select` directly over
//!   a `Product` whose conjuncts equate columns across the two sides is
//!   recognized as an equi-join (predicate pushdown deliberately leaves
//!   such conjuncts on top of the product for exactly this pattern).
//!
//! Per join the planner *picks an algorithm* from the statistics — the
//! decision table lives in [`choose_join`] and is documented in
//! DESIGN.md §14 — and records the choice as a node annotation, which is
//! how `:explain` shows e.g. `HashJoin(build=right), keys: l#2=r#1`.

use crate::ir::{NodeId, Op, Plan};
use crate::stats::Stats;
use no_algebra::{Expr, Pred};
use no_core::conjunctive::{CArg, ConjunctiveQuery};
use no_exec::{ExecId, ExecOp, ExecPlan, JoinAlgo, RowPred};
use no_object::{Schema, Type};

/// Inputs at or below this estimated cardinality take a nested loop —
/// index build cost would dominate.
const SMALL_INPUT: u64 = 16;

/// Build sides whose key distinct/row ratio is below this are
/// duplicate-heavy: hash buckets degenerate toward O(n·m) chains, so a
/// merge join (sorted runs handle duplicate groups natively) is chosen.
const DUP_RATIO: f64 = 0.125;

/// Result of lowering to the columnar kernels: the executable arena, the
/// matching logical plan for `:explain`, and header notes.
pub struct ExecLowering {
    /// The logical plan mirroring the physical operators.
    pub plan: Plan,
    /// The executable plan.
    pub exec: ExecPlan,
    /// Header lines describing the lowering (join choices summary).
    pub notes: Vec<String>,
}

/// One operand during join-order construction.
struct Side {
    eid: ExecId,
    nid: NodeId,
    /// Canonical variable → 0-based output column (first occurrence).
    vars: Vec<(String, usize)>,
    /// Per column: the base `(relation, column)` it descends from, when
    /// it does so unchanged (for distinct-count lookups).
    meta: Vec<Option<(String, usize)>>,
    arity: usize,
    est: Option<u64>,
}

/// Pick the physical join algorithm from estimated input sizes and
/// build-side key duplication. The decision table (DESIGN.md §14):
///
/// 1. unknown estimates → hash join, build left (safe default);
/// 2. either input ≤ [`SMALL_INPUT`] rows → nested loop;
/// 3. build side (the smaller input) duplicate-heavy on its key
///    (distinct/rows < [`DUP_RATIO`]) → merge join;
/// 4. otherwise → hash join, building the smaller side.
///
/// Pure in its inputs: for a fixed stats snapshot the choice is
/// deterministic (property-tested in `tests/exec_differential.rs`).
pub fn choose_join(
    l_est: Option<u64>,
    r_est: Option<u64>,
    l_key: Option<(u64, u64)>,
    r_key: Option<(u64, u64)>,
) -> JoinAlgo {
    let (Some(le), Some(re)) = (l_est, r_est) else {
        return JoinAlgo::Hash { build_left: true };
    };
    if le.min(re) <= SMALL_INPUT {
        return JoinAlgo::NestedLoop;
    }
    let build_left = le <= re;
    let build_key = if build_left { l_key } else { r_key };
    if let Some((rows, distinct)) = build_key {
        if rows > 0 && (distinct as f64) / (rows as f64) < DUP_RATIO {
            return JoinAlgo::Merge;
        }
    }
    JoinAlgo::Hash { build_left }
}

/// Render a join's key list for plan annotations, 1-based.
fn keys_desc(keys: &[(usize, usize)]) -> String {
    keys.iter()
        .map(|&(l, r)| format!("l#{}=r#{}", l + 1, r + 1))
        .collect::<Vec<_>>()
        .join(", ")
}

/// `(base rows, max key-column distinct)` of a side's key columns, when
/// every key column descends from a base relation with detailed stats.
fn key_info(side: &Side, key_cols: &[usize], stats: Option<&Stats>) -> Option<(u64, u64)> {
    let stats = stats?;
    let mut rows = 0u64;
    let mut distinct = 0u64;
    for &c in key_cols {
        let (rel, base_col) = side.meta[c].as_ref()?;
        rows = rows.max(stats.rows(rel)?);
        distinct = distinct.max(stats.distinct(rel, *base_col)?);
    }
    Some((rows, distinct))
}

/// Divide an estimate by a selectivity divisor, staying ≥ 1.
fn shrink(est: Option<u64>, divisor: Option<u64>) -> Option<u64> {
    match (est, divisor) {
        (Some(e), Some(d)) if d > 1 => Some((e / d).max(1)),
        _ => est,
    }
}

/// Convert the pure-equality subset of [`RowPred`] back to a 1-based
/// algebra predicate for the logical `Select` node.
fn logical_pred(p: &RowPred) -> Pred {
    match p {
        RowPred::EqCols(a, b) => Pred::EqCols(a + 1, b + 1),
        RowPred::EqConst(c, v) => Pred::EqConst(c + 1, v.clone()),
        RowPred::InCols(a, b) => Pred::InCols(a + 1, b + 1),
        RowPred::SubsetCols(a, b) => Pred::SubsetCols(a + 1, b + 1),
        RowPred::Not(inner) => Pred::Not(Box::new(logical_pred(inner))),
        RowPred::And(a, b) => Pred::And(Box::new(logical_pred(a)), Box::new(logical_pred(b))),
        RowPred::Or(a, b) => Pred::Or(Box::new(logical_pred(a)), Box::new(logical_pred(b))),
    }
}

/// Convert a 1-based algebra predicate to the kernel's 0-based form.
fn row_pred(p: &Pred) -> RowPred {
    match p {
        Pred::EqCols(a, b) => RowPred::EqCols(a - 1, b - 1),
        Pred::EqConst(c, v) => RowPred::EqConst(c - 1, v.clone()),
        Pred::InCols(a, b) => RowPred::InCols(a - 1, b - 1),
        Pred::SubsetCols(a, b) => RowPred::SubsetCols(a - 1, b - 1),
        Pred::Not(inner) => RowPred::Not(Box::new(row_pred(inner))),
        Pred::And(a, b) => RowPred::And(Box::new(row_pred(a)), Box::new(row_pred(b))),
        Pred::Or(a, b) => RowPred::Or(Box::new(row_pred(a)), Box::new(row_pred(b))),
    }
}

// ---------------------------------------------------------------------------
// conjunctive CALC
// ---------------------------------------------------------------------------

/// Lower a flat conjunctive query to the columnar kernels. Always
/// succeeds: the fragment recognizer already rejected everything the
/// kernels cannot run.
pub fn lower_conjunctive_calc(
    cq: &ConjunctiveQuery,
    head_types: &[Type],
    stats: Option<&Stats>,
) -> ExecLowering {
    let mut exec = ExecPlan::new();
    let mut plan = Plan::new();
    let mut notes = Vec::new();
    let (_, nid, _) =
        lower_conjunctive_into(cq, head_types, stats, &mut exec, &mut plan, &mut notes);
    plan.root = nid;
    ExecLowering { plan, exec, notes }
}

/// Lower a union of flat conjunctive queries (the disjunctive CALC
/// fragment recognized by `no_core::conjunctive::decompose_union`): each
/// disjunct lowers independently — join order and algorithms chosen per
/// disjunct — and the results fold left through the deduplicating union
/// kernel, so disjunctive views stay maintainable by the same delta
/// kernels as conjunctive ones.
pub fn lower_union_calc(
    cqs: &[ConjunctiveQuery],
    head_types: &[Type],
    stats: Option<&Stats>,
) -> ExecLowering {
    let mut exec = ExecPlan::new();
    let mut plan = Plan::new();
    let mut notes = vec![format!(
        "disjunctive query: union of {} conjunctive plans",
        cqs.len()
    )];
    let mut acc: Option<(ExecId, NodeId, Option<u64>)> = None;
    for (i, cq) in cqs.iter().enumerate() {
        let mut local_notes = Vec::new();
        let (eid, nid, est) = lower_conjunctive_into(
            cq,
            head_types,
            stats,
            &mut exec,
            &mut plan,
            &mut local_notes,
        );
        notes.extend(
            local_notes
                .into_iter()
                .map(|n| format!("disjunct {}: {n}", i + 1)),
        );
        acc = Some(match acc {
            None => (eid, nid, est),
            Some((prev_eid, prev_nid, prev_est)) => {
                let u = exec.push(ExecOp::Union {
                    left: prev_eid,
                    right: eid,
                });
                let est = prev_est.zip(est).map(|(a, b)| a.saturating_add(b));
                let un = plan.add_est(Op::Union, vec![prev_nid, nid], est);
                (u, un, est)
            }
        });
    }
    let (_, root, _) = acc.expect("decompose_union yields at least two disjuncts");
    plan.root = root;
    ExecLowering { plan, exec, notes }
}

/// Shared body of the conjunctive lowerings: emit one disjunct's scans,
/// selects, joins, and head projection into `exec`/`plan`, returning the
/// projected result's ids and estimate (the caller sets the root).
fn lower_conjunctive_into(
    cq: &ConjunctiveQuery,
    head_types: &[Type],
    stats: Option<&Stats>,
    exec: &mut ExecPlan,
    plan: &mut Plan,
    notes: &mut Vec<String>,
) -> (ExecId, NodeId, Option<u64>) {
    if cq.unsat {
        let eid = exec.push(ExecOp::Empty {
            arity: cq.head.len(),
        });
        let n = plan.add_est(
            Op::Const {
                types: head_types.to_vec(),
                rows: vec![],
            },
            vec![],
            Some(0),
        );
        plan.nodes[n].note = Some("statically unsatisfiable equalities".to_string());
        notes.push("equality conjuncts contradict: result is empty".to_string());
        return (eid, n, Some(0));
    }

    // Prepare each atom: scan + intra-atom selects (constants, duplicate
    // variables, equality pins).
    let mut pending: Vec<Side> = cq
        .atoms
        .iter()
        .map(|(rel, args)| prepare_atom(rel, args, cq, stats, exec, plan))
        .collect();

    // Greedy left-deep join order: start from the smallest estimate,
    // repeatedly fold in the smallest *connected* atom (source order
    // breaking ties); fall back to a cross product only when no pending
    // atom shares a variable.
    let start = best_index(&pending, |_| true);
    let mut cur = pending.remove(start);
    let mut join_no = 0usize;
    while !pending.is_empty() {
        let connected = |s: &Side| {
            s.vars
                .iter()
                .any(|(v, _)| cur.vars.iter().any(|(cv, _)| cv == v))
        };
        let idx = if pending.iter().any(connected) {
            best_index(&pending, connected)
        } else {
            best_index(&pending, |_| true)
        };
        let nxt = pending.remove(idx);
        join_no += 1;

        let keys: Vec<(usize, usize)> = nxt
            .vars
            .iter()
            .filter_map(|(v, rc)| {
                cur.vars
                    .iter()
                    .find(|(cv, _)| cv == v)
                    .map(|(_, lc)| (*lc, *rc))
            })
            .collect();

        cur = if keys.is_empty() {
            let eid = exec.push(ExecOp::Product {
                left: cur.eid,
                right: nxt.eid,
            });
            let est = cur.est.zip(nxt.est).map(|(a, b)| a.saturating_mul(b));
            let nid = plan.add_est(Op::Join, vec![cur.nid, nxt.nid], est);
            plan.nodes[nid].note = Some("cartesian product (no shared variables)".to_string());
            notes.push(format!("join {join_no}: cartesian product"));
            combine_sides(cur, nxt, eid, nid, est)
        } else {
            let lk: Vec<usize> = keys.iter().map(|&(l, _)| l).collect();
            let rk: Vec<usize> = keys.iter().map(|&(_, r)| r).collect();
            let algo = choose_join(
                cur.est,
                nxt.est,
                key_info(&cur, &lk, stats),
                key_info(&nxt, &rk, stats),
            );
            let eid = exec.push(ExecOp::Join {
                left: cur.eid,
                right: nxt.eid,
                keys: keys.clone(),
                algo,
            });
            // Joined estimate: the larger side caps it for key joins.
            let est = cur.est.zip(nxt.est).map(|(a, b)| a.max(b));
            let nid = plan.add_est(Op::Join, vec![cur.nid, nxt.nid], est);
            let desc = format!("{}, keys: {}", algo.label(), keys_desc(&keys));
            plan.nodes[nid].note = Some(desc.clone());
            notes.push(format!("join {join_no}: {desc}"));
            combine_sides(cur, nxt, eid, nid, est)
        };
    }

    // Project the head columns (possibly none: boolean queries).
    let cols: Vec<usize> = cq
        .head
        .iter()
        .map(|v| {
            cur.vars
                .iter()
                .find(|(cv, _)| cv == v)
                .map(|(_, c)| *c)
                .expect("coverage checked by decompose")
        })
        .collect();
    let eid = exec.push(ExecOp::Project {
        input: cur.eid,
        cols: cols.clone(),
    });
    let nid = plan.add_est(
        Op::Project {
            cols: cols.iter().map(|c| c + 1).collect(),
        },
        vec![cur.nid],
        cur.est,
    );
    (eid, nid, cur.est)
}

/// Index of the smallest-estimate side satisfying `keep` (unknown
/// estimates sort last; position breaks ties).
fn best_index(sides: &[Side], keep: impl Fn(&Side) -> bool) -> usize {
    sides
        .iter()
        .enumerate()
        .filter(|(_, s)| keep(s))
        .min_by_key(|(i, s)| (s.est.unwrap_or(u64::MAX), *i))
        .map(|(i, _)| i)
        .expect("at least one side")
}

fn combine_sides(cur: Side, nxt: Side, eid: ExecId, nid: NodeId, est: Option<u64>) -> Side {
    let mut vars = cur.vars;
    for (v, c) in nxt.vars {
        if !vars.iter().any(|(cv, _)| cv == &v) {
            vars.push((v, cur.arity + c));
        }
    }
    let mut meta = cur.meta;
    meta.extend(nxt.meta);
    Side {
        eid,
        nid,
        vars,
        meta,
        arity: cur.arity + nxt.arity,
        est,
    }
}

fn prepare_atom(
    rel: &str,
    args: &[CArg],
    cq: &ConjunctiveQuery,
    stats: Option<&Stats>,
    exec: &mut ExecPlan,
    plan: &mut Plan,
) -> Side {
    let rows = stats.and_then(|s| s.rows(rel));
    let mut eid = exec.push(ExecOp::Scan {
        rel: rel.to_string(),
    });
    let mut nid = plan.add_est(
        Op::Scan {
            rel: rel.to_string(),
        },
        vec![],
        rows,
    );
    let mut est = rows;
    let mut vars: Vec<(String, usize)> = Vec::new();
    let mut pred: Option<RowPred> = None;
    let push_pred = |p: RowPred, pred: &mut Option<RowPred>| {
        *pred = Some(match pred.take() {
            None => p,
            Some(q) => q.and(p),
        });
    };
    for (c, arg) in args.iter().enumerate() {
        match arg {
            CArg::Const(v) => {
                push_pred(RowPred::EqConst(c, v.clone()), &mut pred);
                est = shrink(est, stats.and_then(|s| s.distinct(rel, c)));
            }
            CArg::Var(v) => {
                if let Some((_, c0)) = vars.iter().find(|(cv, _)| cv == v) {
                    push_pred(RowPred::EqCols(*c0, c), &mut pred);
                } else {
                    if let Some(pin) = cq.pins.get(v) {
                        push_pred(RowPred::EqConst(c, pin.clone()), &mut pred);
                        est = shrink(est, stats.and_then(|s| s.distinct(rel, c)));
                    }
                    vars.push((v.clone(), c));
                }
            }
        }
    }
    if let Some(p) = pred {
        eid = exec.push(ExecOp::Select {
            input: eid,
            pred: p.clone(),
        });
        nid = plan.add_est(
            Op::Select {
                pred: logical_pred(&p),
            },
            vec![nid],
            est,
        );
    }
    Side {
        eid,
        nid,
        vars,
        meta: (0..args.len())
            .map(|c| Some((rel.to_string(), c)))
            .collect(),
        arity: args.len(),
        est,
    }
}

// ---------------------------------------------------------------------------
// flat algebra
// ---------------------------------------------------------------------------

/// Lower a flat algebra expression (no `Nest`/`Unnest`/`Powerset`
/// anywhere) to the columnar kernels, or `None` when the expression
/// leaves the flat fragment. Callers must have validated the expression
/// first (`lower_algebra`), so schema lookups here cannot fail.
pub fn lower_algebra_exec(
    expr: &Expr,
    schema: &Schema,
    stats: Option<&Stats>,
) -> Option<ExecLowering> {
    let mut exec = ExecPlan::new();
    let mut plan = Plan::new();
    let mut notes = Vec::new();
    let root = go(expr, schema, stats, &mut exec, &mut plan, &mut notes)?;
    plan.root = root.nid;
    Some(ExecLowering { plan, exec, notes })
}

fn go(
    expr: &Expr,
    schema: &Schema,
    stats: Option<&Stats>,
    exec: &mut ExecPlan,
    plan: &mut Plan,
    notes: &mut Vec<String>,
) -> Option<Side> {
    match expr {
        Expr::Rel(name) => {
            let arity = schema.get(name)?.arity();
            let est = stats.and_then(|s| s.rows(name));
            let eid = exec.push(ExecOp::Scan { rel: name.clone() });
            let nid = plan.add_est(Op::Scan { rel: name.clone() }, vec![], est);
            Some(Side {
                eid,
                nid,
                vars: Vec::new(),
                meta: (0..arity).map(|c| Some((name.clone(), c))).collect(),
                arity,
                est,
            })
        }
        Expr::Const(types, rows) => {
            let eid = exec.push(ExecOp::Const {
                arity: types.len(),
                rows: rows.clone(),
            });
            let nid = plan.add_est(
                Op::Const {
                    types: types.clone(),
                    rows: rows.clone(),
                },
                vec![],
                Some(rows.len() as u64),
            );
            Some(Side {
                eid,
                nid,
                vars: Vec::new(),
                meta: vec![None; types.len()],
                arity: types.len(),
                est: Some(rows.len() as u64),
            })
        }
        Expr::Select(inner, pred) => {
            // σ over a product with cross-side equality conjuncts is an
            // equi-join: pushdown leaves exactly those conjuncts on top.
            if let Expr::Product(a, b) = inner.as_ref() {
                return lower_join_pattern(a, b, pred, schema, stats, exec, plan, notes);
            }
            let side = go(inner, schema, stats, exec, plan, notes)?;
            let eid = exec.push(ExecOp::Select {
                input: side.eid,
                pred: row_pred(pred),
            });
            let est = shrink(side.est, Some(2));
            let nid = plan.add_est(Op::Select { pred: pred.clone() }, vec![side.nid], est);
            Some(Side {
                eid,
                nid,
                est,
                ..side
            })
        }
        Expr::Project(inner, cols) => {
            let side = go(inner, schema, stats, exec, plan, notes)?;
            let cols0: Vec<usize> = cols.iter().map(|c| c - 1).collect();
            let eid = exec.push(ExecOp::Project {
                input: side.eid,
                cols: cols0.clone(),
            });
            let nid = plan.add_est(Op::Project { cols: cols.clone() }, vec![side.nid], side.est);
            Some(Side {
                eid,
                nid,
                vars: Vec::new(),
                meta: cols0.iter().map(|&c| side.meta[c].clone()).collect(),
                arity: cols0.len(),
                est: side.est,
            })
        }
        Expr::Product(a, b) => {
            let l = go(a, schema, stats, exec, plan, notes)?;
            let r = go(b, schema, stats, exec, plan, notes)?;
            let eid = exec.push(ExecOp::Product {
                left: l.eid,
                right: r.eid,
            });
            let est = l.est.zip(r.est).map(|(x, y)| x.saturating_mul(y));
            let nid = plan.add_est(Op::Join, vec![l.nid, r.nid], est);
            Some(combine_sides(l, r, eid, nid, est))
        }
        Expr::Union(a, b) | Expr::Difference(a, b) | Expr::Intersect(a, b) => {
            let l = go(a, schema, stats, exec, plan, notes)?;
            let r = go(b, schema, stats, exec, plan, notes)?;
            let (op, lop, est): (_, _, Option<u64>) = match expr {
                Expr::Union(..) => (
                    ExecOp::Union {
                        left: l.eid,
                        right: r.eid,
                    },
                    Op::Union,
                    l.est.zip(r.est).map(|(x, y)| x.saturating_add(y)),
                ),
                Expr::Difference(..) => (
                    ExecOp::Difference {
                        left: l.eid,
                        right: r.eid,
                    },
                    Op::Difference,
                    l.est,
                ),
                _ => (
                    ExecOp::Intersect {
                        left: l.eid,
                        right: r.eid,
                    },
                    Op::Intersect,
                    l.est.zip(r.est).map(|(x, y)| x.min(y)),
                ),
            };
            let eid = exec.push(op);
            let nid = plan.add_est(lop, vec![l.nid, r.nid], est);
            Some(Side {
                eid,
                nid,
                vars: Vec::new(),
                meta: l
                    .meta
                    .iter()
                    .zip(&r.meta)
                    .map(|(a, b)| if a == b { a.clone() } else { None })
                    .collect(),
                arity: l.arity,
                est,
            })
        }
        // The nested operators keep the tree-walk path.
        Expr::Nest(..) | Expr::Unnest(..) | Expr::Powerset(..) => None,
    }
}

/// Flatten a predicate's top-level conjunction.
fn conjuncts(p: &Pred) -> Vec<&Pred> {
    match p {
        Pred::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other],
    }
}

#[allow(clippy::too_many_arguments)]
fn lower_join_pattern(
    a: &Expr,
    b: &Expr,
    pred: &Pred,
    schema: &Schema,
    stats: Option<&Stats>,
    exec: &mut ExecPlan,
    plan: &mut Plan,
    notes: &mut Vec<String>,
) -> Option<Side> {
    let l = go(a, schema, stats, exec, plan, notes)?;
    let r = go(b, schema, stats, exec, plan, notes)?;
    let mut keys: Vec<(usize, usize)> = Vec::new();
    let mut residual: Vec<&Pred> = Vec::new();
    for c in conjuncts(pred) {
        match c {
            Pred::EqCols(i, j) => {
                let (i0, j0) = (i - 1, j - 1);
                let cross = (i0 < l.arity) != (j0 < l.arity);
                if cross {
                    let (lc, rc) = if i0 < l.arity {
                        (i0, j0 - l.arity)
                    } else {
                        (j0, i0 - l.arity)
                    };
                    keys.push((lc, rc));
                    continue;
                }
                residual.push(c);
            }
            other => residual.push(other),
        }
    }
    if keys.is_empty() {
        // No equi-join keys: plain σ(product).
        let eid = exec.push(ExecOp::Product {
            left: l.eid,
            right: r.eid,
        });
        let est = l.est.zip(r.est).map(|(x, y)| x.saturating_mul(y));
        let nid = plan.add_est(Op::Join, vec![l.nid, r.nid], est);
        let side = combine_sides(l, r, eid, nid, est);
        let eid = exec.push(ExecOp::Select {
            input: side.eid,
            pred: row_pred(pred),
        });
        let est = shrink(side.est, Some(2));
        let nid = plan.add_est(Op::Select { pred: pred.clone() }, vec![side.nid], est);
        return Some(Side {
            eid,
            nid,
            est,
            ..side
        });
    }

    let lk: Vec<usize> = keys.iter().map(|&(x, _)| x).collect();
    let rk: Vec<usize> = keys.iter().map(|&(_, y)| y).collect();
    let algo = choose_join(
        l.est,
        r.est,
        key_info(&l, &lk, stats),
        key_info(&r, &rk, stats),
    );
    let eid = exec.push(ExecOp::Join {
        left: l.eid,
        right: r.eid,
        keys: keys.clone(),
        algo,
    });
    let est = l.est.zip(r.est).map(|(x, y)| x.max(y));
    let nid = plan.add_est(Op::Join, vec![l.nid, r.nid], est);
    let desc = format!("{}, keys: {}", algo.label(), keys_desc(&keys));
    plan.nodes[nid].note = Some(desc.clone());
    notes.push(format!("join: {desc}"));
    let mut side = combine_sides(l, r, eid, nid, est);

    if !residual.is_empty() {
        let combined = residual
            .into_iter()
            .cloned()
            .reduce(|acc, p| acc.and(p))
            .expect("non-empty");
        let eid = exec.push(ExecOp::Select {
            input: side.eid,
            pred: row_pred(&combined),
        });
        let est = shrink(side.est, Some(2));
        let nid = plan.add_est(
            Op::Select {
                pred: combined.clone(),
            },
            vec![side.nid],
            est,
        );
        side = Side {
            eid,
            nid,
            est,
            ..side
        };
    }
    Some(side)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_table_is_deterministic_and_tiered() {
        // unknown stats → hash, build left
        assert_eq!(
            choose_join(None, Some(100), None, None),
            JoinAlgo::Hash { build_left: true }
        );
        // tiny side → nested loop
        assert_eq!(
            choose_join(Some(3), Some(1000), None, None),
            JoinAlgo::NestedLoop
        );
        // duplicate-heavy build side → merge
        assert_eq!(
            choose_join(Some(100), Some(1000), Some((100, 2)), None),
            JoinAlgo::Merge
        );
        // otherwise hash, building the smaller side
        assert_eq!(
            choose_join(Some(100), Some(1000), Some((100, 90)), Some((1000, 900))),
            JoinAlgo::Hash { build_left: true }
        );
        assert_eq!(
            choose_join(Some(1000), Some(100), Some((1000, 900)), Some((100, 90))),
            JoinAlgo::Hash { build_left: false }
        );
    }
}
