//! The plan cache: a small LRU keyed on the *normalized* query text plus
//! a schema fingerprint.
//!
//! Normalization goes through the deterministic printer (`Printer::new()`
//! for CALC, `Display` for algebra and Datalog), so two textually
//! different but AST-identical queries share one entry, while any change
//! to the schema (names, column types) changes the fingerprint and
//! invalidates every plan lowered against the old one. Statistics are
//! deliberately *not* part of the key: a plan optimized under stale stats
//! is still correct (every pass is semantics-preserving), just possibly
//! less well ordered — the classic cache trade.

use std::collections::HashMap;
use std::sync::Arc;

/// What kind of front-end produced the plan (same text in different
/// languages must never collide).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PlanKind {
    /// CALC, active-domain semantics.
    CalcActiveDomain,
    /// CALC, restricted-domain safe evaluation.
    CalcSafe,
    /// The nested algebra.
    Algebra,
    /// Datalog¬ (the mode label further splits strategies).
    Datalog,
}

/// A cache key: front-end kind + mode label + normalized source text +
/// schema fingerprint.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// The front-end.
    pub kind: PlanKind,
    /// Strategy/mode discriminator within the front-end (e.g. Datalog
    /// "naive" vs "stratified" plans differ for the same source).
    pub mode: String,
    /// Normalized (pretty-printed) query text.
    pub text: String,
    /// [`crate::stats::schema_fingerprint`] of the schema planned against.
    pub schema: u64,
}

/// An LRU cache of finished plans. Entries are `Arc`ed so a hit costs a
/// clone of a pointer, not of a plan.
#[derive(Debug)]
pub struct PlanCache<T> {
    cap: usize,
    tick: u64,
    entries: HashMap<CacheKey, (Arc<T>, u64)>,
    hits: u64,
    misses: u64,
}

impl<T> PlanCache<T> {
    /// A cache holding at most `cap` plans (`cap` 0 disables caching).
    pub fn new(cap: usize) -> Self {
        PlanCache {
            cap,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a plan, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<T>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((plan, used)) => {
                *used = self.tick;
                self.hits += 1;
                Some(Arc::clone(plan))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a plan, evicting the least-recently-used entry when full.
    pub fn put(&mut self, key: CacheKey, plan: Arc<T>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.cap {
            if let Some(evict) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&evict);
            }
        }
        self.entries.insert(key, (plan, self.tick));
    }

    /// Drop every entry (schema edits in the shell call this).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(text: &str) -> CacheKey {
        CacheKey {
            kind: PlanKind::CalcSafe,
            mode: String::new(),
            text: text.to_string(),
            schema: 7,
        }
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut c: PlanCache<u32> = PlanCache::new(2);
        assert!(c.get(&key("a")).is_none());
        c.put(key("a"), Arc::new(1));
        c.put(key("b"), Arc::new(2));
        assert_eq!(c.get(&key("a")).as_deref(), Some(&1)); // refresh a
        c.put(key("c"), Arc::new(3)); // evicts b (least recent)
        assert!(c.get(&key("b")).is_none());
        assert_eq!(c.get(&key("a")).as_deref(), Some(&1));
        assert_eq!(c.get(&key("c")).as_deref(), Some(&3));
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (3, 2));
    }

    #[test]
    fn schema_fingerprint_splits_entries() {
        let mut c: PlanCache<u32> = PlanCache::new(4);
        let mut k2 = key("a");
        k2.schema = 8;
        c.put(key("a"), Arc::new(1));
        assert!(c.get(&k2).is_none(), "different schema, different entry");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: PlanCache<u32> = PlanCache::new(0);
        c.put(key("a"), Arc::new(1));
        assert!(c.get(&key("a")).is_none());
        assert!(c.is_empty());
    }
}
