//! Instance statistics and schema fingerprints.
//!
//! Two collection tiers. [`Stats::of`] never scans data: everything it
//! knows comes from the relation cardinalities an [`Instance`] already
//! maintains plus the atom count (the active-domain size), keeping
//! planning O(schema). [`Stats::of_detailed`] additionally makes one
//! O(data) pass to count **exact** distinct values per column — the
//! signal the join-algorithm pass uses to spot duplicate-heavy keys.
//! Sessions collect detailed stats once per planner build and the plan
//! cache amortizes the scan; staleness can only affect algorithm
//! *choice*, never correctness (every algorithm computes the same join).

use no_core::ast::{Formula, Term};
use no_object::{Instance, Schema, Type, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

/// Relation cardinalities, the active-domain size, and (when collected
/// via [`Stats::of_detailed`]) exact per-column distinct counts.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Rows per relation.
    pub rel_rows: BTreeMap<String, u64>,
    /// Number of distinct atoms in the instance (active-domain size).
    pub atoms: u64,
    /// Exact distinct values per column of each relation (empty unless
    /// collected by [`Stats::of_detailed`]).
    pub rel_distinct: BTreeMap<String, Vec<u64>>,
}

impl Stats {
    /// Collect stats from an instance (O(#relations), no data scan beyond
    /// the cardinality counters the instance already keeps).
    pub fn of(instance: &Instance) -> Stats {
        let rel_rows = instance
            .schema()
            .relations()
            .map(|r| (r.name.clone(), instance.relation(&r.name).len() as u64))
            .collect();
        Stats {
            rel_rows,
            atoms: instance.atoms().len() as u64,
            rel_distinct: BTreeMap::new(),
        }
    }

    /// Collect stats including exact per-column distinct counts: one
    /// O(‖I‖ log ‖I‖) pass per relation.
    pub fn of_detailed(instance: &Instance) -> Stats {
        let mut stats = Stats::of(instance);
        for r in instance.schema().relations() {
            let rel = instance.relation(&r.name);
            let arity = r.arity();
            let mut sets: Vec<BTreeSet<&Value>> = vec![BTreeSet::new(); arity];
            for row in rel.iter() {
                for (c, v) in row.iter().enumerate() {
                    sets[c].insert(v);
                }
            }
            stats.rel_distinct.insert(
                r.name.clone(),
                sets.iter().map(|s| s.len() as u64).collect(),
            );
        }
        stats
    }

    /// Rows of a relation, when known.
    pub fn rows(&self, rel: &str) -> Option<u64> {
        self.rel_rows.get(rel).copied()
    }

    /// Exact distinct count of a relation's column (0-based), when
    /// detailed stats were collected.
    pub fn distinct(&self, rel: &str, col: usize) -> Option<u64> {
        self.rel_distinct
            .get(rel)
            .and_then(|cols| cols.get(col))
            .copied()
    }

    /// Estimated candidates a variable ranges over when it occurs in the
    /// body of `formula` as an argument of a database relation atom: the
    /// smallest such relation's cardinality (each column of `R` has at
    /// most |R| distinct values). `None` when the variable never occurs in
    /// a relation atom we have stats for.
    pub fn estimate_var(&self, formula: &Formula, var: &str) -> Option<u64> {
        let mut best: Option<u64> = None;
        collect_rel_occurrences(formula, &mut |rel, args| {
            if args.iter().any(|t| term_mentions(t, var)) {
                if let Some(n) = self.rows(rel) {
                    best = Some(best.map_or(n, |b| b.min(n)));
                }
            }
        });
        best
    }

    /// Estimated active-domain size for a type: the atom count for atom
    /// types, saturating `2^dom` growth for sets, products for tuples.
    pub fn estimate_domain(&self, ty: &Type) -> u64 {
        match ty {
            Type::Atom => self.atoms.max(1),
            Type::Set(inner) => {
                let n = self.estimate_domain(inner);
                if n >= 63 {
                    u64::MAX
                } else {
                    1u64 << n
                }
            }
            Type::Tuple(parts) => parts
                .iter()
                .map(|t| self.estimate_domain(t))
                .fold(1u64, u64::saturating_mul),
        }
    }
}

fn term_mentions(t: &Term, var: &str) -> bool {
    match t {
        Term::Var(v) => v == var,
        Term::Proj(inner, _) => term_mentions(inner, var),
        Term::Const(_) | Term::Fix(_) => false,
    }
}

/// Walk every relation atom in a formula (including under quantifiers,
/// negation, and fixpoint bodies) and hand it to `f`.
fn collect_rel_occurrences(formula: &Formula, f: &mut impl FnMut(&str, &[Term])) {
    match formula {
        Formula::Rel(name, args) => f(name, args),
        Formula::Eq(..) | Formula::In(..) | Formula::Subset(..) => {}
        Formula::Not(inner) => collect_rel_occurrences(inner, f),
        Formula::And(parts) | Formula::Or(parts) => {
            for p in parts {
                collect_rel_occurrences(p, f);
            }
        }
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            collect_rel_occurrences(a, f);
            collect_rel_occurrences(b, f);
        }
        Formula::Exists(_, _, inner) | Formula::Forall(_, _, inner) => {
            collect_rel_occurrences(inner, f)
        }
        Formula::FixApp(fix, args) => {
            collect_rel_occurrences(&fix.body, f);
            f(&fix.rel, args);
        }
    }
}

/// A stable fingerprint of a schema: relation names with their column
/// types, hashed. Part of every plan-cache key — a plan lowered against
/// one schema must never be replayed against another.
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut h = DefaultHasher::new();
    for rel in schema.relations() {
        rel.name.hash(&mut h);
        for ty in &rel.column_types {
            ty.to_string().hash(&mut h);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{Atom, RelationSchema, Universe, Value};

    fn tiny() -> Instance {
        let schema = Schema::from_relations([
            RelationSchema::new("G", vec![Type::Atom, Type::Atom]),
            RelationSchema::new("E", vec![Type::Atom]),
        ]);
        let mut i = Instance::empty(schema);
        let _u = Universe::with_names(["a", "b", "c"]);
        for (x, y) in [(0u32, 1u32), (1, 2), (2, 0)] {
            i.insert("G", vec![Value::Atom(Atom(x)), Value::Atom(Atom(y))]);
        }
        i.insert("E", vec![Value::Atom(Atom(0))]);
        i
    }

    #[test]
    fn stats_count_rows_and_atoms() {
        let i = tiny();
        let s = Stats::of(&i);
        assert_eq!(s.rows("G"), Some(3));
        assert_eq!(s.rows("E"), Some(1));
        assert_eq!(s.atoms, 3);
        assert_eq!(s.estimate_domain(&Type::Atom), 3);
        assert_eq!(s.estimate_domain(&Type::set(Type::Atom)), 8);
        assert_eq!(s.distinct("G", 0), None, "cheap stats carry no distincts");
    }

    #[test]
    fn detailed_stats_count_distincts_exactly() {
        let i = tiny();
        let s = Stats::of_detailed(&i);
        // G = {(a,b),(b,c),(c,a)}: both columns hold 3 distinct atoms.
        assert_eq!(s.distinct("G", 0), Some(3));
        assert_eq!(s.distinct("G", 1), Some(3));
        assert_eq!(s.distinct("E", 0), Some(1));
        assert_eq!(s.distinct("G", 2), None, "out-of-range column");
        assert_eq!(s.distinct("H", 0), None, "unknown relation");
    }

    #[test]
    fn var_estimates_take_the_smallest_relation() {
        let i = tiny();
        let s = Stats::of(&i);
        let f = Formula::and([
            Formula::Rel("G".into(), vec![Term::var("x"), Term::var("y")]),
            Formula::Rel("E".into(), vec![Term::var("x")]),
        ]);
        assert_eq!(s.estimate_var(&f, "x"), Some(1), "E is smaller than G");
        assert_eq!(s.estimate_var(&f, "y"), Some(3));
        assert_eq!(s.estimate_var(&f, "z"), None);
    }

    #[test]
    fn fingerprints_separate_schemas() {
        let a = Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let b = Schema::from_relations([RelationSchema::new("G", vec![Type::Atom])]);
        assert_ne!(schema_fingerprint(&a), schema_fingerprint(&b));
        assert_eq!(schema_fingerprint(&a), schema_fingerprint(&a.clone()));
    }
}
