//! Lowering the three front-ends into the logical plan IR.
//!
//! - **CALC** lowers through the existing machinery: `typeck::check` for
//!   variable typings, then `rr::analyze` (Definitions 5.2/5.3) so every
//!   head variable's range source is a plan operator *named by the rule
//!   that justified it* — the complexity certificate's trace literally
//!   annotates the plan.
//! - **The algebra** lowers structurally — its expression tree *is* a
//!   plan already; lowering is a change of representation that the
//!   optimizer can rewrite and [`to_expr`] inverts exactly.
//! - **Datalog¬** rules lower to Join/Filter/Project trees under a
//!   `Program` root; the semi-naive delta rewrite is a separate pass
//!   (see `crate::passes`), not part of lowering.

use crate::ir::{NodeId, Op, Plan};
use crate::physical::{DatalogMode, PlanError};
use crate::stats::Stats;
use no_algebra::Expr;
use no_core::ast::{Formula, VarName};
use no_core::error::EvalError;
use no_core::print::Printer;
use no_core::{rr, typeck, Query};
use no_datalog::{DTerm, Literal, Program};
use no_object::{Schema, Type};
use std::collections::BTreeMap;

/// What CALC lowering produced besides the plan itself.
pub struct CalcLowering {
    /// The logical plan.
    pub plan: Plan,
    /// Variable typings (needed at execution time for range computation).
    pub var_types: BTreeMap<VarName, Type>,
    /// The `Enumerate` node (its leading children are the per-head-var
    /// range sources, in head order — the reorder pass permutes them).
    pub enumerate: NodeId,
    /// Per head variable, the id of its range-source node.
    pub range_nodes: Vec<NodeId>,
    /// `⟨i,k⟩` of the checked query (for the plan header).
    pub ik: (usize, usize),
}

/// Lower a CALC query: ranges named by their Definition 5.2/5.3 rules,
/// quantifiers, fixpoints, and the matrix as documented filter nodes.
pub fn lower_calc(
    schema: &Schema,
    stats: Option<&Stats>,
    query: &Query,
) -> Result<CalcLowering, PlanError> {
    let checked = typeck::check(schema, &query.head, &query.body)
        .map_err(|e| PlanError::Calc(EvalError::ShapeError(e.to_string())))?;
    let analysis = rr::analyze(schema, &checked.var_types, &query.body);
    let mut plan = Plan::new();

    let mut range_nodes = Vec::new();
    for (v, ty) in &query.head {
        let apps = analysis.rules_for(v);
        let root_app = apps.iter().find(|a| a.var.path.is_empty());
        let id = match root_app {
            Some(app) => {
                let est = stats.and_then(|s| s.estimate_var(&query.body, v));
                plan.add_est(
                    Op::Range {
                        var: v.clone(),
                        rule: app.rule.id().to_string(),
                        citation: app.rule.citation().to_string(),
                    },
                    vec![],
                    est,
                )
            }
            None => {
                let est = stats.map(|s| s.estimate_domain(ty));
                plan.add_est(
                    Op::ActiveDomain {
                        var: v.clone(),
                        ty: ty.clone(),
                    },
                    vec![],
                    est,
                )
            }
        };
        range_nodes.push(id);
    }

    let matrix = lower_matrix(&mut plan, stats, &query.body);
    let mut children = range_nodes.clone();
    children.push(matrix);
    let est = range_nodes
        .iter()
        .map(|&id| plan.node(id).est)
        .try_fold(1u64, |acc, e| e.map(|e| acc.saturating_mul(e)));
    let enumerate = plan.add_est(
        Op::Enumerate {
            vars: query.head.iter().map(|(v, _)| v.clone()).collect(),
        },
        children,
        est,
    );
    plan.root = enumerate;
    Ok(CalcLowering {
        plan,
        var_types: checked.var_types,
        enumerate,
        range_nodes,
        ik: (checked.set_height, checked.tuple_width),
    })
}

/// Lower the matrix of a CALC body: quantifiers and top-level conjunction
/// structure become nodes, relation atoms become annotated scans, fixpoint
/// applications become `Fixpoint` nodes over their body, and everything
/// else is kept as a printed `Filter`. Recursion is shallow by design —
/// the plan documents evaluation structure, the physical `Query` carries
/// the exact formula.
fn lower_matrix(plan: &mut Plan, stats: Option<&Stats>, f: &Formula) -> NodeId {
    let printer = Printer::new();
    match f {
        Formula::Exists(v, _, inner) => {
            let child = lower_matrix(plan, stats, inner);
            let est = stats.and_then(|s| s.estimate_var(inner, v));
            plan.add_est(
                Op::Quantify {
                    quant: "∃",
                    var: v.clone(),
                },
                vec![child],
                est,
            )
        }
        Formula::Forall(v, _, inner) => {
            let child = lower_matrix(plan, stats, inner);
            let est = stats.and_then(|s| s.estimate_var(inner, v));
            plan.add_est(
                Op::Quantify {
                    quant: "∀",
                    var: v.clone(),
                },
                vec![child],
                est,
            )
        }
        Formula::And(parts) => {
            let children: Vec<NodeId> =
                parts.iter().map(|p| lower_matrix(plan, stats, p)).collect();
            plan.add(
                Op::Filter {
                    desc: "∧".to_string(),
                },
                children,
            )
        }
        Formula::Rel(name, _) => {
            let est = stats.and_then(|s| s.rows(name));
            let id = plan.add_est(Op::Scan { rel: name.clone() }, vec![], est);
            plan.nodes[id].note = Some(printer.formula(f));
            id
        }
        Formula::FixApp(fix, _) => {
            let body = plan.add(
                Op::Filter {
                    desc: printer.formula(&fix.body),
                },
                vec![],
            );
            plan.add(
                Op::Fixpoint {
                    op: match fix.op {
                        no_core::ast::FixOp::Ifp => "ifp".to_string(),
                        no_core::ast::FixOp::Pfp => "pfp".to_string(),
                    },
                    rel: fix.rel.clone(),
                },
                vec![body],
            )
        }
        other => {
            // Fixpoints hiding deeper (under ¬, ∨, →, ↔, or as terms)
            // still surface as children so the plan names every fixpoint.
            let mut children = Vec::new();
            for fix in no_core::ast::formula_term_fixes(other) {
                let body = plan.add(
                    Op::Filter {
                        desc: printer.formula(&fix.body),
                    },
                    vec![],
                );
                children.push(plan.add(
                    Op::Fixpoint {
                        op: match fix.op {
                            no_core::ast::FixOp::Ifp => "ifp".to_string(),
                            no_core::ast::FixOp::Pfp => "pfp".to_string(),
                        },
                        rel: fix.rel.clone(),
                    },
                    vec![body],
                ));
            }
            plan.add(
                Op::Filter {
                    desc: printer.formula(other),
                },
                children,
            )
        }
    }
}

/// Lower an algebra expression structurally, with bottom-up cardinality
/// estimates. Fails exactly where static typing would (`output_types`).
pub fn lower_algebra(
    schema: &Schema,
    stats: Option<&Stats>,
    expr: &Expr,
) -> Result<Plan, PlanError> {
    expr.output_types(schema)?; // validate once; lowering is then total
    let mut plan = Plan::new();
    let root = lower_expr(&mut plan, stats, expr);
    plan.root = root;
    Ok(plan)
}

fn lower_expr(plan: &mut Plan, stats: Option<&Stats>, expr: &Expr) -> NodeId {
    match expr {
        Expr::Rel(name) => {
            let est = stats.and_then(|s| s.rows(name));
            plan.add_est(Op::Scan { rel: name.clone() }, vec![], est)
        }
        Expr::Select(e, pred) => {
            let c = lower_expr(plan, stats, e);
            let est = plan.node(c).est;
            plan.add_est(Op::Select { pred: pred.clone() }, vec![c], est)
        }
        Expr::Project(e, cols) => {
            let c = lower_expr(plan, stats, e);
            let est = plan.node(c).est;
            plan.add_est(Op::Project { cols: cols.clone() }, vec![c], est)
        }
        Expr::Product(a, b) => {
            let l = lower_expr(plan, stats, a);
            let r = lower_expr(plan, stats, b);
            let est = match (plan.node(l).est, plan.node(r).est) {
                (Some(x), Some(y)) => Some(x.saturating_mul(y)),
                _ => None,
            };
            plan.add_est(Op::Join, vec![l, r], est)
        }
        Expr::Union(a, b) => {
            let l = lower_expr(plan, stats, a);
            let r = lower_expr(plan, stats, b);
            let est = match (plan.node(l).est, plan.node(r).est) {
                (Some(x), Some(y)) => Some(x.saturating_add(y)),
                _ => None,
            };
            plan.add_est(Op::Union, vec![l, r], est)
        }
        Expr::Difference(a, b) => {
            let l = lower_expr(plan, stats, a);
            let r = lower_expr(plan, stats, b);
            let est = plan.node(l).est;
            plan.add_est(Op::Difference, vec![l, r], est)
        }
        Expr::Intersect(a, b) => {
            let l = lower_expr(plan, stats, a);
            let r = lower_expr(plan, stats, b);
            let est = match (plan.node(l).est, plan.node(r).est) {
                (Some(x), Some(y)) => Some(x.min(y)),
                _ => None,
            };
            plan.add_est(Op::Intersect, vec![l, r], est)
        }
        Expr::Nest(e, col) => {
            let c = lower_expr(plan, stats, e);
            let est = plan.node(c).est;
            plan.add_est(Op::Nest { col: *col }, vec![c], est)
        }
        Expr::Unnest(e, col) => {
            let c = lower_expr(plan, stats, e);
            let est = plan.node(c).est;
            plan.add_est(Op::Unnest { col: *col }, vec![c], est)
        }
        Expr::Powerset(e) => {
            let c = lower_expr(plan, stats, e);
            let est = plan
                .node(c)
                .est
                .map(|n| if n >= 63 { u64::MAX } else { 1u64 << n });
            plan.add_est(Op::Powerset, vec![c], est)
        }
        Expr::Const(types, rows) => {
            let est = Some(rows.len() as u64);
            plan.add_est(
                Op::Const {
                    types: types.clone(),
                    rows: rows.clone(),
                },
                vec![],
                est,
            )
        }
    }
}

/// Reconstruct the algebra expression a (possibly rewritten) plan denotes —
/// the exact inverse of [`lower_algebra`] on algebra-shaped plans.
pub fn to_expr(plan: &Plan, id: NodeId) -> Result<Expr, PlanError> {
    let node = plan.node(id);
    let child = |i: usize| to_expr(plan, node.children[i]);
    Ok(match &node.op {
        Op::Scan { rel } => Expr::Rel(rel.clone()),
        Op::Select { pred } => Expr::Select(Box::new(child(0)?), pred.clone()),
        Op::Project { cols } => Expr::Project(Box::new(child(0)?), cols.clone()),
        Op::Join => Expr::Product(Box::new(child(0)?), Box::new(child(1)?)),
        Op::Union => Expr::Union(Box::new(child(0)?), Box::new(child(1)?)),
        Op::Difference => Expr::Difference(Box::new(child(0)?), Box::new(child(1)?)),
        Op::Intersect => Expr::Intersect(Box::new(child(0)?), Box::new(child(1)?)),
        Op::Nest { col } => Expr::Nest(Box::new(child(0)?), *col),
        Op::Unnest { col } => Expr::Unnest(Box::new(child(0)?), *col),
        Op::Powerset => Expr::Powerset(Box::new(child(0)?)),
        Op::Const { types, rows } => Expr::Const(types.clone(), rows.clone()),
        other => {
            return Err(PlanError::Unsupported(format!(
                "operator {} has no algebra form",
                other.name()
            )))
        }
    })
}

/// Lower a Datalog¬ program: one `Rule` node per rule, each a Join/Filter
/// tree over its body literals projected to the head, under a `Program`
/// root labelled with the evaluation semantics.
pub fn lower_datalog(
    schema: &Schema,
    stats: Option<&Stats>,
    program: &Program,
    mode: &DatalogMode,
) -> Result<Plan, PlanError> {
    program.validate(schema).map_err(PlanError::Datalog)?;
    let mut plan = Plan::new();
    let mut rule_nodes = Vec::new();
    for rule in &program.rules {
        let body = lower_rule_body(&mut plan, stats, program, rule);
        let head = format!(
            "{}({})",
            rule.head,
            rule.head_args
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
        rule_nodes.push(plan.add(
            Op::Rule {
                head,
                delta_pos: None,
            },
            vec![body],
        ));
    }
    plan.root = plan.add(
        Op::Program {
            semantics: match mode {
                DatalogMode::Naive => "naive".to_string(),
                DatalogMode::SemiNaive => "semi-naive".to_string(),
                DatalogMode::Stratified => "stratified".to_string(),
                DatalogMode::Simultaneous(_) => "simultaneous-ifp".to_string(),
            },
        },
        rule_nodes,
    );
    Ok(plan)
}

/// One rule body: positive literals fold into a Join chain (IDB scans are
/// annotated — the delta pass retargets them), constraint literals stack
/// as filters, and the head projection closes the tree.
fn lower_rule_body(
    plan: &mut Plan,
    stats: Option<&Stats>,
    program: &Program,
    rule: &no_datalog::Rule,
) -> NodeId {
    let mut acc: Option<NodeId> = None;
    let mut binding_order: Vec<String> = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Pos(rel, args) => {
                for t in args {
                    if let DTerm::Var(v) = t {
                        if !binding_order.contains(v) {
                            binding_order.push(v.clone());
                        }
                    }
                }
                let est = stats.and_then(|s| s.rows(rel));
                let scan = plan.add_est(Op::Scan { rel: rel.clone() }, vec![], est);
                if program.idb.contains_key(rel) {
                    plan.nodes[scan].note = Some("IDB".to_string());
                }
                acc = Some(match acc {
                    Some(prev) => {
                        let est = match (plan.node(prev).est, plan.node(scan).est) {
                            (Some(x), Some(y)) => Some(x.saturating_mul(y)),
                            _ => None,
                        };
                        plan.add_est(Op::Join, vec![prev, scan], est)
                    }
                    None => scan,
                });
            }
            other => {
                let desc = other.to_string();
                let filter = Op::Filter { desc };
                acc = Some(match acc {
                    Some(prev) => {
                        let est = plan.node(prev).est;
                        plan.add_est(filter, vec![prev], est)
                    }
                    None => plan.add(filter, vec![]),
                });
            }
        }
    }
    let body = acc.unwrap_or_else(|| {
        plan.add(
            Op::Filter {
                desc: "⊤ (empty body)".to_string(),
            },
            vec![],
        )
    });
    // Head projection: map each head variable to its first binding
    // position. Constant or otherwise irregular heads stay descriptive.
    let cols: Option<Vec<usize>> = rule
        .head_args
        .iter()
        .map(|t| match t {
            DTerm::Var(v) => binding_order.iter().position(|b| b == v).map(|p| p + 1),
            DTerm::Const(_) => None,
        })
        .collect();
    match cols {
        Some(cols) => plan.add(Op::Project { cols }, vec![body]),
        None => plan.add(
            Op::Filter {
                desc: "project head (constants)".to_string(),
            },
            vec![body],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_algebra::Pred;
    use no_core::ast::Term;
    use no_object::RelationSchema;

    fn graph_schema() -> Schema {
        Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])])
    }

    #[test]
    fn algebra_lowering_round_trips() {
        let schema = graph_schema();
        let exprs = [
            Expr::rel("G"),
            Expr::rel("G").select(Pred::EqCols(1, 2)).project([1]),
            Expr::rel("G")
                .project([1])
                .product(Expr::rel("G").project([2]))
                .union(Expr::rel("G")),
            Expr::rel("G").nest(2).unnest(2),
            Expr::rel("G").project([1]).powerset(),
            Expr::rel("G").difference(Expr::rel("G").project([2, 1])),
            Expr::rel("G").intersect(Expr::rel("G")),
        ];
        for e in exprs {
            let plan = lower_algebra(&schema, None, &e).unwrap();
            let back = to_expr(&plan, plan.root).unwrap();
            assert_eq!(back, e, "lower/to_expr must be inverses");
        }
    }

    #[test]
    fn calc_lowering_names_rr_rules() {
        let schema = graph_schema();
        let q = Query::new(
            vec![("x".to_string(), Type::Atom), ("y".to_string(), Type::Atom)],
            Formula::Rel("G".to_string(), vec![Term::var("x"), Term::var("y")]),
        );
        let lowered = lower_calc(&schema, None, &q).unwrap();
        let ranges: Vec<_> = lowered
            .plan
            .nodes
            .iter()
            .filter_map(|n| match &n.op {
                Op::Range { var, rule, .. } => Some((var.clone(), rule.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(ranges.len(), 2, "both head vars restricted");
        assert!(ranges.iter().all(|(_, r)| r == "1"), "{ranges:?}");
        assert_eq!(lowered.ik, (0, 0));
    }

    #[test]
    fn unrestricted_vars_fall_back_to_active_domain_nodes() {
        let schema = graph_schema();
        let q = Query::new(
            vec![("x".to_string(), Type::Atom), ("y".to_string(), Type::Atom)],
            Formula::Not(Box::new(Formula::Rel(
                "G".to_string(),
                vec![Term::var("x"), Term::var("y")],
            ))),
        );
        let lowered = lower_calc(&schema, None, &q).unwrap();
        let ad = lowered
            .plan
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::ActiveDomain { .. }))
            .count();
        assert_eq!(ad, 2, "negation restricts nothing");
    }

    #[test]
    fn datalog_rules_lower_to_join_project_trees() {
        let schema = graph_schema();
        let mut p = Program::new();
        p.declare("tc", vec![Type::Atom, Type::Atom]);
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("tc".into(), vec![DTerm::var("x"), DTerm::var("z")]),
                Literal::Pos("G".into(), vec![DTerm::var("z"), DTerm::var("y")]),
            ],
        );
        let plan = lower_datalog(&schema, None, &p, &DatalogMode::Naive).unwrap();
        assert!(matches!(plan.node(plan.root).op, Op::Program { .. }));
        let joins = plan
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Join))
            .count();
        assert_eq!(joins, 1);
        let projects: Vec<_> = plan
            .nodes
            .iter()
            .filter_map(|n| match &n.op {
                Op::Project { cols } => Some(cols.clone()),
                _ => None,
            })
            .collect();
        // binding order x, z, y → head (x, y) = columns 1, 3
        assert_eq!(projects, vec![vec![1, 3]]);
    }
}
