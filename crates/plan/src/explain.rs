//! Deterministic plan renderings: the text tree behind `:explain` and the
//! machine-readable JSON behind `nestdb explain --format json`.
//!
//! Both renderings are stable by construction — no hashing, no pointer
//! identity, no map iteration order — so they can be snapshot-tested as
//! goldens. After common-subplan elimination the plan is a DAG; the text
//! tree prints every shared subplan once and references it afterwards
//! (`shared subplan ↑n`), while the JSON duplicates subtrees (consumers
//! get a tree, the `"shared"` count records the consing).

use crate::ir::{NodeId, Op, Plan};
use no_algebra::Pred;
use no_core::print::Printer;

/// Render a cardinality estimate (`u64::MAX` means "saturated").
fn est_str(est: u64) -> String {
    if est == u64::MAX {
        "≥2^63".to_string()
    } else {
        est.to_string()
    }
}

/// Human rendering of an algebra predicate (`#n` is column `n`, 1-based).
pub fn pred_str(p: &Pred) -> String {
    let printer = Printer::new();
    match p {
        Pred::EqCols(a, b) => format!("#{a} = #{b}"),
        Pred::EqConst(a, v) => format!("#{a} = {}", printer.value(v)),
        Pred::InCols(a, b) => format!("#{a} ∈ #{b}"),
        Pred::SubsetCols(a, b) => format!("#{a} ⊆ #{b}"),
        Pred::Not(inner) => format!("¬({})", pred_str(inner)),
        Pred::And(x, y) => format!("({} ∧ {})", pred_str(x), pred_str(y)),
        Pred::Or(x, y) => format!("({} ∨ {})", pred_str(x), pred_str(y)),
    }
}

/// The one-line operator description used by both renderings.
pub fn op_detail(op: &Op) -> String {
    match op {
        Op::Scan { rel } => format!("scan {rel}"),
        Op::DeltaScan { rel } => format!("delta-scan Δ{rel}"),
        Op::Select { pred } => format!("select σ[{}]", pred_str(pred)),
        Op::Filter { desc } => format!("filter {desc}"),
        Op::Project { cols } => format!(
            "project π[{}]",
            cols.iter()
                .map(|c| format!("#{c}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Op::Join => "join ×".to_string(),
        Op::Union => "union ∪".to_string(),
        Op::Difference => "difference ∖".to_string(),
        Op::Intersect => "intersect ∩".to_string(),
        Op::Nest { col } => format!("nest ν[#{col}]"),
        Op::Unnest { col } => format!("unnest μ[#{col}]"),
        Op::Powerset => "powerset Π".to_string(),
        Op::Const { rows, .. } => format!("const ({} rows)", rows.len()),
        Op::Range {
            var,
            rule,
            citation,
        } => format!("range {var} ← rule {rule} ({citation})"),
        Op::ActiveDomain { var, ty } => format!("active-domain {var}: {ty}"),
        Op::Enumerate { vars } => format!("enumerate ({})", vars.join(", ")),
        Op::Quantify { quant, var } => format!("quantify {quant}{var}"),
        Op::RestoreColumns { perm } => format!(
            "restore-columns [{}]",
            perm.iter()
                .map(|p| format!("#{}", p + 1))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Op::Fixpoint { op, rel } => format!("fixpoint {op} {rel}"),
        Op::Rule { head, delta_pos } => match delta_pos {
            Some(k) => format!("rule {head} [Δ at body literal {k}]"),
            None => format!("rule {head}"),
        },
        Op::Program { semantics } => format!("program [{semantics}]"),
    }
}

/// Render the plan as an indented tree. Shared subplans (refcount > 1)
/// print in full once, then as a one-line back-reference.
pub fn plan_tree_text(plan: &Plan) -> String {
    let counts = plan.refcounts();
    let mut out = String::new();
    let mut printed = vec![false; plan.nodes.len()];
    render_text(
        plan,
        plan.root,
        "",
        true,
        true,
        &counts,
        &mut printed,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn render_text(
    plan: &Plan,
    id: NodeId,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    counts: &[usize],
    printed: &mut [bool],
    out: &mut String,
) {
    let node = plan.node(id);
    let (branch, child_prefix) = if is_root {
        (String::new(), String::new())
    } else if is_last {
        (format!("{prefix}└─ "), format!("{prefix}   "))
    } else {
        (format!("{prefix}├─ "), format!("{prefix}│  "))
    };
    let mut line = format!("{branch}{}", op_detail(&node.op));
    if counts[id] > 1 {
        if printed[id] {
            out.push_str(&format!("{line} (shared subplan ↑{id})\n"));
            return;
        }
        line.push_str(&format!(" ⟨{id}⟩"));
    }
    if let Some(est) = node.est {
        line.push_str(&format!(" [est {}]", est_str(est)));
    }
    if let Some(note) = &node.note {
        line.push_str(&format!(" — {note}"));
    }
    out.push_str(&line);
    out.push('\n');
    printed[id] = true;
    let n = node.children.len();
    for (i, &c) in node.children.iter().enumerate() {
        render_text(
            plan,
            c,
            &child_prefix,
            i + 1 == n,
            false,
            counts,
            printed,
            out,
        );
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one node (and its subtree) as a JSON object.
pub fn node_json(plan: &Plan, id: NodeId) -> String {
    let node = plan.node(id);
    let mut fields = vec![
        format!("\"op\": \"{}\"", json_escape(node.op.name())),
        format!("\"detail\": \"{}\"", json_escape(&op_detail(&node.op))),
    ];
    if let Some(est) = node.est {
        fields.push(format!("\"est\": {est}"));
    }
    if let Some(note) = &node.note {
        fields.push(format!("\"note\": \"{}\"", json_escape(note)));
    }
    if !node.children.is_empty() {
        let children: Vec<String> = node.children.iter().map(|&c| node_json(plan, c)).collect();
        fields.push(format!("\"children\": [{}]", children.join(", ")));
    }
    format!("{{{}}}", fields.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_renders_shared_subplans_once() {
        let mut p = Plan::new();
        let a = p.add(
            Op::Scan {
                rel: "G".to_string(),
            },
            vec![],
        );
        p.root = p.add(Op::Join, vec![a, a]);
        let text = plan_tree_text(&p);
        assert!(text.contains("⟨0⟩"), "{text}");
        assert!(text.contains("shared subplan ↑0"), "{text}");
        assert_eq!(text.matches("scan G").count(), 2);
    }

    #[test]
    fn json_is_escaped_and_nested() {
        let mut p = Plan::new();
        let a = p.add(
            Op::Filter {
                desc: "\"quoted\"".to_string(),
            },
            vec![],
        );
        p.root = p.add(Op::Powerset, vec![a]);
        let json = node_json(&p, p.root);
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"children\": ["), "{json}");
    }

    #[test]
    fn estimates_saturate_visibly() {
        assert_eq!(est_str(u64::MAX), "≥2^63");
        assert_eq!(est_str(42), "42");
    }
}
