//! The optimizer: a pipeline of verified rewrite passes.
//!
//! Every pass preserves query results — the property suite in
//! `tests/plan_passes.rs` proves planned-with-pass ≡ planned-without-pass
//! ≡ legacy tree-walk on generated instances, pass by pass. The passes:
//!
//! | pass                  | rewrite                                          |
//! |-----------------------|--------------------------------------------------|
//! | `pushdown`            | selections sink into products/unions/differences; top-level `v = c` conjuncts pin CALC ranges to singletons |
//! | `reorder-quantifiers` | head variables enumerate smallest range first (cheap stats from the instance) |
//! | `cse`                 | hash-cons structurally identical subplans (mirrors `no_object::intern`) |
//! | `delta-rewrite`       | semi-naive Datalog¬: recursive rules expand into Δ-pinned variants |
//! | `governor-trips`      | annotate operators whose estimate already exceeds a governor budget — the plan says *where* evaluation will trip before any fuel is spent |

use crate::ir::{Node, NodeId, Op, Plan};
use no_algebra::{Expr, Pred};
use no_core::ast::{Formula, Term};
use no_core::Query;
use no_object::{Limits, Schema, Value};
use std::collections::{BTreeSet, HashMap};

/// One optimizer pass.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Pass {
    /// Predicate pushdown (algebra selections, CALC constant pins).
    Pushdown,
    /// Quantifier reordering by estimated range cardinality.
    Reorder,
    /// Columnar lowering with per-join algorithm selection (hash, merge,
    /// or nested loop) for the flat conjunctive fragment.
    Joins,
    /// Common-subplan elimination via hash-consed plan nodes.
    Cse,
    /// Semi-naive delta rewrite for Datalog¬.
    Delta,
    /// Governor-aware early-trip annotations.
    Trips,
}

impl Pass {
    /// All passes in pipeline order.
    pub const ALL: [Pass; 6] = [
        Pass::Pushdown,
        Pass::Reorder,
        Pass::Joins,
        Pass::Delta,
        Pass::Cse,
        Pass::Trips,
    ];

    /// Stable pass name (used in renderings, goldens, and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Pass::Pushdown => "pushdown",
            Pass::Reorder => "reorder-quantifiers",
            Pass::Joins => "join-algorithms",
            Pass::Cse => "cse",
            Pass::Delta => "delta-rewrite",
            Pass::Trips => "governor-trips",
        }
    }
}

/// Which passes an optimization run applies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PassSet {
    enabled: [bool; 6],
}

impl PassSet {
    /// Every pass.
    pub fn all() -> PassSet {
        PassSet { enabled: [true; 6] }
    }

    /// No passes (pure lowering; the differential baseline).
    pub fn none() -> PassSet {
        PassSet {
            enabled: [false; 6],
        }
    }

    fn index(pass: Pass) -> usize {
        Pass::ALL.iter().position(|&p| p == pass).expect("in ALL")
    }

    /// This set minus one pass.
    pub fn without(mut self, pass: Pass) -> PassSet {
        self.enabled[Self::index(pass)] = false;
        self
    }

    /// This set plus one pass.
    pub fn with(mut self, pass: Pass) -> PassSet {
        self.enabled[Self::index(pass)] = true;
        self
    }

    /// Membership.
    pub fn contains(&self, pass: Pass) -> bool {
        self.enabled[Self::index(pass)]
    }
}

impl Default for PassSet {
    fn default() -> Self {
        PassSet::all()
    }
}

// ---------------------------------------------------------------------------
// pushdown (algebra)
// ---------------------------------------------------------------------------

/// `(min, max)` 1-based column indices a predicate mentions.
fn pred_cols(p: &Pred) -> (usize, usize) {
    match p {
        Pred::EqCols(a, b) | Pred::InCols(a, b) | Pred::SubsetCols(a, b) => (*a.min(b), *a.max(b)),
        Pred::EqConst(a, _) => (*a, *a),
        Pred::Not(inner) => pred_cols(inner),
        Pred::And(a, b) | Pred::Or(a, b) => {
            let (la, ha) = pred_cols(a);
            let (lb, hb) = pred_cols(b);
            (la.min(lb), ha.max(hb))
        }
    }
}

/// Shift every column index down by `by` (for pushing into the right side
/// of a product).
fn shift_pred(p: &Pred, by: usize) -> Pred {
    match p {
        Pred::EqCols(a, b) => Pred::EqCols(a - by, b - by),
        Pred::InCols(a, b) => Pred::InCols(a - by, b - by),
        Pred::SubsetCols(a, b) => Pred::SubsetCols(a - by, b - by),
        Pred::EqConst(a, v) => Pred::EqConst(a - by, v.clone()),
        Pred::Not(inner) => Pred::Not(Box::new(shift_pred(inner, by))),
        Pred::And(a, b) => Pred::And(Box::new(shift_pred(a, by)), Box::new(shift_pred(b, by))),
        Pred::Or(a, b) => Pred::Or(Box::new(shift_pred(a, by)), Box::new(shift_pred(b, by))),
    }
}

/// Flatten a conjunction into its conjuncts.
fn conjuncts(p: Pred) -> Vec<Pred> {
    match p {
        Pred::And(a, b) => {
            let mut out = conjuncts(*a);
            out.extend(conjuncts(*b));
            out
        }
        other => vec![other],
    }
}

/// Rebuild a conjunction (None for the empty list).
fn conjoin(mut ps: Vec<Pred>) -> Option<Pred> {
    let first = ps.pop()?;
    Some(ps.into_iter().rev().fold(first, |acc, p| p.and(acc)))
}

fn select_over(e: Expr, p: Option<Pred>) -> Expr {
    match p {
        Some(p) => Expr::Select(Box::new(e), p),
        None => e,
    }
}

/// Push selections toward scans. Semantics-preserving identities only:
/// σ_p(A × B) splits `p`'s conjuncts by side, σ_p(A ∪ B) = σ_p A ∪ σ_p B,
/// σ_p(A ∖ B) = σ_p A ∖ B, and adjacent selections merge. Returns the
/// rewritten expression and whether anything changed.
pub fn pushdown_expr(expr: &Expr, schema: &Schema) -> (Expr, bool) {
    let mut e = expr.clone();
    let mut changed_any = false;
    // A pushed selection can enable further pushes below it; iterate to a
    // (small, structurally decreasing) fixpoint.
    for _ in 0..16 {
        let (next, changed) = pushdown_once(&e, schema);
        e = next;
        if !changed {
            break;
        }
        changed_any = true;
    }
    (e, changed_any)
}

fn pushdown_once(expr: &Expr, schema: &Schema) -> (Expr, bool) {
    macro_rules! unary {
        ($ctor:expr, $inner:expr) => {{
            let (i, c) = pushdown_once($inner, schema);
            ($ctor(Box::new(i)), c)
        }};
    }
    macro_rules! binary {
        ($ctor:expr, $a:expr, $b:expr) => {{
            let (l, cl) = pushdown_once($a, schema);
            let (r, cr) = pushdown_once($b, schema);
            ($ctor(Box::new(l), Box::new(r)), cl || cr)
        }};
    }
    match expr {
        Expr::Select(inner, p) => {
            let (inner, inner_changed) = pushdown_once(inner, schema);
            match inner {
                Expr::Product(a, b) => {
                    let la = match a.output_types(schema) {
                        Ok(t) => t.len(),
                        // Whole-expr validation passed before optimizing,
                        // so this is unreachable; bail conservatively.
                        Err(_) => {
                            return (
                                Expr::Select(Box::new(Expr::Product(a, b)), p.clone()),
                                inner_changed,
                            )
                        }
                    };
                    let mut left = Vec::new();
                    let mut right = Vec::new();
                    let mut keep = Vec::new();
                    for c in conjuncts(p.clone()) {
                        let (lo, hi) = pred_cols(&c);
                        if hi <= la {
                            left.push(c);
                        } else if lo > la {
                            right.push(shift_pred(&c, la));
                        } else {
                            keep.push(c);
                        }
                    }
                    let changed = !(left.is_empty() && right.is_empty());
                    let product = Expr::Product(
                        Box::new(select_over(*a, conjoin(left))),
                        Box::new(select_over(*b, conjoin(right))),
                    );
                    (
                        select_over(product, conjoin(keep)),
                        inner_changed || changed,
                    )
                }
                Expr::Union(a, b) => (
                    Expr::Union(
                        Box::new(Expr::Select(a, p.clone())),
                        Box::new(Expr::Select(b, p.clone())),
                    ),
                    true,
                ),
                Expr::Difference(a, b) => (
                    Expr::Difference(Box::new(Expr::Select(a, p.clone())), b),
                    true,
                ),
                Expr::Select(a, p2) => (Expr::Select(a, p2.and(p.clone())), true),
                other => (Expr::Select(Box::new(other), p.clone()), inner_changed),
            }
        }
        Expr::Rel(_) | Expr::Const(..) => (expr.clone(), false),
        Expr::Project(e, cols) => {
            let cols = cols.clone();
            unary!(|i| Expr::Project(i, cols), e)
        }
        Expr::Nest(e, col) => {
            let col = *col;
            unary!(|i| Expr::Nest(i, col), e)
        }
        Expr::Unnest(e, col) => {
            let col = *col;
            unary!(|i| Expr::Unnest(i, col), e)
        }
        Expr::Powerset(e) => unary!(Expr::Powerset, e),
        Expr::Product(a, b) => binary!(Expr::Product, a, b),
        Expr::Union(a, b) => binary!(Expr::Union, a, b),
        Expr::Difference(a, b) => binary!(Expr::Difference, a, b),
        Expr::Intersect(a, b) => binary!(Expr::Intersect, a, b),
    }
}

// ---------------------------------------------------------------------------
// pushdown (CALC constant pins)
// ---------------------------------------------------------------------------

/// Top-level conjuncts of a body (the whole body when it is not a
/// conjunction). Only these may pin variables: under quantifiers,
/// negation, or disjunction the equality is not globally forced.
fn top_conjuncts(f: &Formula) -> Vec<&Formula> {
    match f {
        Formula::And(parts) => parts.iter().flat_map(top_conjuncts).collect(),
        other => vec![other],
    }
}

/// Constant pins justified by top-level `v = c` conjuncts over head
/// variables: any satisfying assignment must bind `v` to exactly `c`, so
/// `v`'s range collapses to the singleton.
pub fn calc_pins(query: &Query) -> Vec<(String, Value)> {
    let head: BTreeSet<&str> = query.head.iter().map(|(v, _)| v.as_str()).collect();
    let mut pins = Vec::new();
    for c in top_conjuncts(&query.body) {
        if let Formula::Eq(a, b) = c {
            let pin = match (a, b) {
                (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v))
                    if head.contains(v.as_str()) =>
                {
                    Some((v.clone(), c.clone()))
                }
                _ => None,
            };
            if let Some((v, c)) = pin {
                if !pins.iter().any(|(pv, _)| *pv == v) {
                    pins.push((v, c));
                }
            }
        }
    }
    pins
}

// ---------------------------------------------------------------------------
// reorder-quantifiers
// ---------------------------------------------------------------------------

/// A stable ascending-by-estimate permutation, or `None` when it is the
/// identity. `perm[i]` = the original index enumerated at position `i`;
/// unknown estimates sort last (ties keep source order — determinism).
pub fn sort_permutation(ests: &[Option<u64>]) -> Option<Vec<usize>> {
    let mut perm: Vec<usize> = (0..ests.len()).collect();
    perm.sort_by_key(|&i| (ests[i].unwrap_or(u64::MAX), i));
    if perm.iter().enumerate().all(|(i, &p)| i == p) {
        None
    } else {
        Some(perm)
    }
}

// ---------------------------------------------------------------------------
// cse
// ---------------------------------------------------------------------------

/// Hash-cons the arena: structurally identical subplans collapse to one
/// node (children precede parents by construction, so one bottom-up walk
/// suffices). Returns the rebuilt plan; `plan.shared` counts the merges.
pub fn cse(plan: &Plan) -> Plan {
    let mut out = Plan::new();
    let mut remap: Vec<NodeId> = Vec::with_capacity(plan.nodes.len());
    let mut seen: HashMap<String, NodeId> = HashMap::new();
    let mut merged = 0usize;
    for node in &plan.nodes {
        let children: Vec<NodeId> = node.children.iter().map(|&c| remap[c]).collect();
        let candidate = Node {
            op: node.op.clone(),
            children: children.clone(),
            est: node.est,
            note: node.note.clone(),
        };
        let key = out.structural_key(&candidate);
        let id = match seen.get(&key) {
            Some(&id) => {
                merged += 1;
                id
            }
            None => {
                out.nodes.push(candidate);
                let id = out.nodes.len() - 1;
                seen.insert(key, id);
                id
            }
        };
        remap.push(id);
    }
    out.root = remap[plan.root];
    out.shared = merged;
    out
}

// ---------------------------------------------------------------------------
// delta-rewrite
// ---------------------------------------------------------------------------

// The semi-naive rewrite moved to `crate::delta` so the IVM engine can
// use it outside the optimizer; the pass pipeline keeps this alias.
pub use crate::delta::delta_rewrite;

// ---------------------------------------------------------------------------
// governor-trips
// ---------------------------------------------------------------------------

/// Annotate operators whose cardinality estimate already exceeds a
/// governor budget: evaluation *will* trip there (or earlier), and the
/// plan says so before any fuel is spent. Returns the warnings (also
/// attached to the nodes).
pub fn governor_trips(plan: &mut Plan, limits: &Limits) -> Vec<String> {
    let mut warnings = Vec::new();
    for node in &mut plan.nodes {
        let Some(est) = node.est else { continue };
        let range_bound = matches!(
            node.op,
            Op::Range { .. }
                | Op::ActiveDomain { .. }
                | Op::Enumerate { .. }
                | Op::Quantify { .. }
                | Op::Powerset
        );
        if range_bound && est > limits.max_range {
            let w = format!(
                "{}: estimated {est} candidates exceeds max_range {} — evaluation trips early here",
                node.op.name(),
                limits.max_range
            );
            node.note = Some(match node.note.take() {
                Some(prev) => format!("{prev}; ⚠ {w}"),
                None => format!("⚠ {w}"),
            });
            warnings.push(w);
        } else if est > limits.max_steps {
            let w = format!(
                "{}: estimated {est} rows exceeds the {} step budget — evaluation trips early here",
                node.op.name(),
                limits.max_steps
            );
            node.note = Some(match node.note.take() {
                Some(prev) => format!("{prev}; ⚠ {w}"),
                None => format!("⚠ {w}"),
            });
            warnings.push(w);
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{RelationSchema, Type};

    fn graph_schema() -> Schema {
        Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])])
    }

    #[test]
    fn pushdown_splits_product_selections() {
        let schema = graph_schema();
        // σ(#1=#2 ∧ #3=#4)(G × G) → σ(#1=#2)G × σ(#1=#2)G
        let e = Expr::rel("G")
            .product(Expr::rel("G"))
            .select(Pred::EqCols(1, 2).and(Pred::EqCols(3, 4)));
        let (out, changed) = pushdown_expr(&e, &schema);
        assert!(changed);
        let expected = Expr::rel("G")
            .select(Pred::EqCols(1, 2))
            .product(Expr::rel("G").select(Pred::EqCols(1, 2)));
        assert_eq!(out, expected);
    }

    #[test]
    fn pushdown_keeps_cross_side_conjuncts_on_top() {
        let schema = graph_schema();
        let e = Expr::rel("G")
            .product(Expr::rel("G"))
            .select(Pred::EqCols(2, 3));
        let (out, changed) = pushdown_expr(&e, &schema);
        assert!(!changed, "a cross-side join predicate cannot sink");
        assert_eq!(out, e);
    }

    #[test]
    fn pushdown_distributes_over_union_and_difference() {
        let schema = graph_schema();
        let e = Expr::rel("G")
            .union(Expr::rel("G").project([2, 1]))
            .select(Pred::EqCols(1, 2));
        let (out, changed) = pushdown_expr(&e, &schema);
        assert!(changed);
        assert!(matches!(out, Expr::Union(..)), "{out:?}");

        let e = Expr::rel("G")
            .difference(Expr::rel("G").project([2, 1]))
            .select(Pred::EqCols(1, 2));
        let (out, _) = pushdown_expr(&e, &schema);
        match out {
            Expr::Difference(l, r) => {
                assert!(matches!(*l, Expr::Select(..)));
                assert!(
                    !matches!(*r, Expr::Select(..)),
                    "right side must not gain σ"
                );
            }
            other => panic!("expected difference, got {other:?}"),
        }
    }

    #[test]
    fn sort_permutation_is_stable_and_identity_aware() {
        assert_eq!(sort_permutation(&[Some(1), Some(2)]), None);
        assert_eq!(
            sort_permutation(&[Some(9), Some(2), None]),
            Some(vec![1, 0, 2])
        );
        assert_eq!(sort_permutation(&[Some(3), Some(3)]), None, "stable ties");
    }

    #[test]
    fn cse_merges_identical_subtrees() {
        let mut p = Plan::new();
        let a = p.add(
            Op::Scan {
                rel: "G".to_string(),
            },
            vec![],
        );
        let b = p.add(
            Op::Scan {
                rel: "G".to_string(),
            },
            vec![],
        );
        p.root = p.add(Op::Join, vec![a, b]);
        let out = cse(&p);
        assert_eq!(out.shared, 1);
        let join = out.node(out.root);
        assert_eq!(join.children[0], join.children[1], "scans hash-consed");
    }
}
