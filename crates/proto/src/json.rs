//! A minimal JSON reader/writer for the wire protocol.
//!
//! The workspace has no crates.io access, so this module hand-rolls the
//! slice of JSON the protocol needs. Two properties matter more than
//! generality:
//!
//! * **Canonical output.** [`Json::render`] emits no insignificant
//!   whitespace and never a raw newline, so one rendered value is always
//!   one line of the newline-delimited protocol, and
//!   `parse(render(v)).render() == render(v)` — the round-trip identity
//!   the protocol tests assert.
//! * **Integer fidelity.** Numbers are kept as their source token
//!   ([`Json::Num`] stores the literal), so `u64::MAX` budget limits
//!   survive a round trip without drifting through an `f64`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal token (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs (later duplicates are
    /// kept but [`Json::get`] returns the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from a `u64`.
    pub fn u64(n: u64) -> Json {
        Json::Num(n.to_string())
    }

    /// A number from an `f64` (finite; non-finite values become `null`,
    /// which JSON requires).
    pub fn f64(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(format!("{x}"))
        } else {
            Json::Null
        }
    }

    /// Member lookup on an object (`None` on non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(tok) => tok.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The number as an `f64`, if this is a number token.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(tok) => tok.parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Canonical single-line rendering (see module docs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(tok) => out.push_str(tok),
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape `s` as a JSON string literal (including the quotes). Control
/// characters and the two mandatory escapes are encoded; everything else —
/// including non-ASCII — passes through as UTF-8.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parse failure: what was expected and the byte offset it failed at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON value; trailing input (other than whitespace) is an
/// error, so a protocol line is exactly one value.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the value"));
    }
    Ok(v)
}

/// Nesting depth cap: the protocol's own values are shallow, and a bound
/// keeps adversarial input from overflowing the parser's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("value nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected {")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected : after object key")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected a string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it's a &str) and we only stop
                // on ASCII structural bytes, so the run is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Ok(Json::Num(tok.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-7", "3.25", "1e9", "\"x\""] {
            let v = parse(src).unwrap();
            assert_eq!(v.render(), src.replace("1e9", "1e9"));
            assert_eq!(parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn u64_max_survives() {
        let v = Json::u64(u64::MAX);
        let back = parse(&v.render()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn nested_values_and_lookup() {
        let v = parse(r#"{"a": [1, {"b": "c\n"}], "d": null}"#).unwrap();
        assert_eq!(v.render(), r#"{"a":[1,{"b":"c\n"}],"d":null}"#);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c\n")
        );
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""\u0041\u00e9\ud83d\ude00\t""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀\t"));
        // rendering re-escapes only what must be escaped
        assert_eq!(v.render(), "\"Aé😀\\t\"");
    }

    #[test]
    fn rendered_output_is_one_line() {
        let v = Json::Obj(vec![
            ("text".into(), Json::Str("a\nb\rc".into())),
            ("n".into(), Json::u64(3)),
        ]);
        assert!(!v.render().contains('\n'));
        assert!(!v.render().contains('\r'));
    }

    #[test]
    fn malformed_inputs_fail_structurally() {
        for src in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"abc",
            "01a",
            "nul",
            "+1",
            "1 2",
            "{\"a\":}",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(src).is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_refused_not_overflowed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }
}
