//! The wire protocol: one serializable [`Request`]/[`Response`] pair.
//!
//! Historically every caller surface (REPL, CLI, embeddings) talked to a
//! different corner of a ~15-method `Session` matrix (`eval_calc` ×
//! `_safe` × `_planned`, three Datalog strategies × planned, `analyze`,
//! `explain`, storage verbs). None of that can be put on a wire. This
//! crate defines the one request shape they all reduce to:
//!
//! ```text
//! Request { op, lang, mode, strategy, planned, tenant, text, limits }
//! ```
//!
//! and the one response carrying a relation (text + JSON encodings),
//! diagnostics, certificates, explain renderings, and governor spend.
//! Both types serialize to canonical single-line JSON ([`Request::to_json`]
//! / [`Response::to_json`]) and parse leniently (missing fields default,
//! unknown fields are ignored), so the newline-delimited TCP protocol, the
//! shell, and in-process embedders share one dispatch surface.
//!
//! This crate is deliberately dependency-free: it knows nothing about
//! engines, plans, or storage — renderings arrive as strings, budgets as
//! numbers. `nestdb::Session::run` is the evaluator behind it; the
//! `no-server` crate is the TCP front.

pub mod json;

pub use json::{escape, parse as parse_json, Json, JsonError};

/// Which query language [`Request::text`] is written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lang {
    /// The CALC calculus (`{[x:U] | ...}`).
    #[default]
    Calc,
    /// A Datalog¬ program.
    Datalog,
    /// A nested-relational algebra expression.
    Algebra,
}

impl Lang {
    fn wire(self) -> &'static str {
        match self {
            Lang::Calc => "calc",
            Lang::Datalog => "datalog",
            Lang::Algebra => "algebra",
        }
    }

    fn from_wire(s: &str) -> Option<Lang> {
        Some(match s {
            "calc" => Lang::Calc,
            "datalog" => Lang::Datalog,
            "algebra" => Lang::Algebra,
            _ => return None,
        })
    }
}

/// How strictly to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Active-domain enumeration — no safety precheck.
    Fast,
    /// Range-restricted (safe) evaluation, Theorem 5.1.
    #[default]
    Safe,
    /// Static analysis first; refuse with diagnostics on any error, then
    /// run under the strongest applicable semantics.
    Checked,
}

impl Mode {
    fn wire(self) -> &'static str {
        match self {
            Mode::Fast => "fast",
            Mode::Safe => "safe",
            Mode::Checked => "checked",
        }
    }

    fn from_wire(s: &str) -> Option<Mode> {
        Some(match s {
            "fast" => Mode::Fast,
            "safe" => Mode::Safe,
            "checked" => Mode::Checked,
            _ => return None,
        })
    }
}

/// The Datalog¬ evaluation strategy (ignored for other languages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Naive inflationary fixpoint.
    Naive,
    /// Semi-naive (delta) inflationary fixpoint.
    #[default]
    SemiNaive,
    /// Stratified semantics.
    Stratified,
    /// Translation to one simultaneous IFP on the CALC evaluator.
    Simultaneous,
}

impl Strategy {
    fn wire(self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::SemiNaive => "semi-naive",
            Strategy::Stratified => "stratified",
            Strategy::Simultaneous => "simultaneous",
        }
    }

    fn from_wire(s: &str) -> Option<Strategy> {
        Some(match s {
            "naive" => Strategy::Naive,
            "semi-naive" => Strategy::SemiNaive,
            "stratified" => Strategy::Stratified,
            "simultaneous" => Strategy::Simultaneous,
            _ => return None,
        })
    }
}

/// What to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Op {
    /// Evaluate [`Request::text`] and return the result relation(s).
    #[default]
    Eval,
    /// Statically analyze without evaluating (diagnostics + certificate).
    Analyze,
    /// Compile to an optimized plan and render it without evaluating.
    Explain,
    /// Apply one mutation clause (`schema R(U).` or a fact).
    Insert,
    /// Checkpoint the attached durable store, or write a text-format file
    /// when [`Request::text`] names a path.
    Save,
    /// Attach the durable database directory named by [`Request::text`].
    Open,
    /// Service / session counters (requests, trips, cache hit rate,
    /// latency percentiles).
    Stats,
    /// Define (or replace) the materialized view named by
    /// [`Request::view`] from the Datalog¬ source in [`Request::text`]
    /// and evaluate it once; it is maintained incrementally from then
    /// on.
    Materialize,
    /// Apply a batch of mutation clauses (one per line of
    /// [`Request::text`]) as a single maintenance delta: every
    /// materialized view is updated incrementally and the response
    /// carries each view's net change.
    Update,
    /// Subscribe this connection to change pushes for the view named by
    /// [`Request::view`] (server only; in-process sessions have direct
    /// registry access).
    Subscribe,
    /// Drop the subscription on [`Request::view`] (server only).
    Unsubscribe,
}

impl Op {
    fn wire(self) -> &'static str {
        match self {
            Op::Eval => "eval",
            Op::Analyze => "analyze",
            Op::Explain => "explain",
            Op::Insert => "insert",
            Op::Save => "save",
            Op::Open => "open",
            Op::Stats => "stats",
            Op::Materialize => "materialize",
            Op::Update => "update",
            Op::Subscribe => "subscribe",
            Op::Unsubscribe => "unsubscribe",
        }
    }

    fn from_wire(s: &str) -> Option<Op> {
        Some(match s {
            "eval" => Op::Eval,
            "analyze" => Op::Analyze,
            "explain" => Op::Explain,
            "insert" => Op::Insert,
            "save" => Op::Save,
            "open" => Op::Open,
            "stats" => Op::Stats,
            "materialize" => Op::Materialize,
            "update" => Op::Update,
            "subscribe" => Op::Subscribe,
            "unsubscribe" => Op::Unsubscribe,
            _ => return None,
        })
    }
}

/// Per-request budget overrides. `None` fields inherit the session (or
/// server) defaults; the governor allowance is fresh per request whenever
/// an override is present.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LimitsSpec {
    /// Total step fuel.
    pub max_steps: Option<u64>,
    /// Maximum quantifier/fixpoint range cardinality.
    pub max_range: Option<u64>,
    /// Maximum fixpoint iterations.
    pub max_fixpoint_iters: Option<u64>,
    /// Approximate bytes of materialised values.
    pub max_memory_bytes: Option<u64>,
    /// Wall-clock allowance in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl LimitsSpec {
    /// True when no field overrides anything.
    pub fn is_empty(&self) -> bool {
        *self == LimitsSpec::default()
    }

    fn to_json_value(&self) -> Json {
        let opt = |v: Option<u64>| v.map(Json::u64).unwrap_or(Json::Null);
        Json::Obj(vec![
            ("max_steps".into(), opt(self.max_steps)),
            ("max_range".into(), opt(self.max_range)),
            ("max_fixpoint_iters".into(), opt(self.max_fixpoint_iters)),
            ("max_memory_bytes".into(), opt(self.max_memory_bytes)),
            ("deadline_ms".into(), opt(self.deadline_ms)),
        ])
    }

    fn from_json_value(v: &Json) -> Result<LimitsSpec, String> {
        let field = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(n) => n
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("limits.{key} must be a non-negative integer")),
            }
        };
        Ok(LimitsSpec {
            max_steps: field("max_steps")?,
            max_range: field("max_range")?,
            max_fixpoint_iters: field("max_fixpoint_iters")?,
            max_memory_bytes: field("max_memory_bytes")?,
            deadline_ms: field("deadline_ms")?,
        })
    }
}

/// One request: the single entry shape behind every surface.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Request {
    /// What to do.
    pub op: Op,
    /// The language of [`Request::text`] (for `Eval`/`Analyze`/`Explain`).
    pub lang: Lang,
    /// Evaluation strictness.
    pub mode: Mode,
    /// Datalog¬ strategy (ignored for other languages).
    pub strategy: Strategy,
    /// Route through the plan pipeline (compile → optimize → execute)
    /// instead of the direct tree-walk entry points.
    pub planned: bool,
    /// The tenant this request is accounted to (admission control and
    /// per-tenant metrics on the server; ignored in-process).
    pub tenant: String,
    /// The payload: query/program/expression source, a mutation clause,
    /// a path for `Open`/`Save`, or empty.
    pub text: String,
    /// The materialized view a `Materialize`/`Subscribe`/`Unsubscribe`
    /// request targets; empty otherwise.
    pub view: String,
    /// Per-request budget overrides.
    pub limits: Option<LimitsSpec>,
}

impl Request {
    /// A fresh `Eval` request for `text` in `lang` with every other field
    /// at its default.
    pub fn eval(lang: Lang, text: impl Into<String>) -> Request {
        Request {
            lang,
            text: text.into(),
            ..Request::default()
        }
    }

    /// Canonical single-line JSON (fixed field order, no insignificant
    /// whitespace; `parse(to_json()).to_json()` is the identity).
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("op".into(), Json::Str(self.op.wire().into())),
            ("lang".into(), Json::Str(self.lang.wire().into())),
            ("mode".into(), Json::Str(self.mode.wire().into())),
            ("strategy".into(), Json::Str(self.strategy.wire().into())),
            ("planned".into(), Json::Bool(self.planned)),
            ("tenant".into(), Json::Str(self.tenant.clone())),
            ("text".into(), Json::Str(self.text.clone())),
            ("view".into(), Json::Str(self.view.clone())),
            (
                "limits".into(),
                match &self.limits {
                    Some(l) => l.to_json_value(),
                    None => Json::Null,
                },
            ),
        ])
        .render()
    }

    /// Parse a request line. Missing fields default; unknown fields are
    /// ignored (forward compatibility); wrong-typed or unknown-valued
    /// fields are structured errors.
    pub fn from_json(src: &str) -> Result<Request, String> {
        let v = json::parse(src).map_err(|e| e.to_string())?;
        Request::from_json_value(&v)
    }

    /// Parse from an already-parsed JSON value.
    pub fn from_json_value(v: &Json) -> Result<Request, String> {
        if !matches!(v, Json::Obj(_)) {
            return Err("request must be a JSON object".to_string());
        }
        let str_field = |key: &str| -> Result<Option<&str>, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Str(s)) => Ok(Some(s)),
                Some(_) => Err(format!("{key} must be a string")),
            }
        };
        let mut req = Request::default();
        if let Some(s) = str_field("op")? {
            req.op = Op::from_wire(s).ok_or_else(|| format!("unknown op {s:?}"))?;
        }
        if let Some(s) = str_field("lang")? {
            req.lang = Lang::from_wire(s).ok_or_else(|| format!("unknown lang {s:?}"))?;
        }
        if let Some(s) = str_field("mode")? {
            req.mode = Mode::from_wire(s).ok_or_else(|| format!("unknown mode {s:?}"))?;
        }
        if let Some(s) = str_field("strategy")? {
            req.strategy =
                Strategy::from_wire(s).ok_or_else(|| format!("unknown strategy {s:?}"))?;
        }
        match v.get("planned") {
            None | Some(Json::Null) => {}
            Some(Json::Bool(b)) => req.planned = *b,
            Some(_) => return Err("planned must be a boolean".to_string()),
        }
        if let Some(s) = str_field("tenant")? {
            req.tenant = s.to_string();
        }
        if let Some(s) = str_field("text")? {
            req.text = s.to_string();
        }
        if let Some(s) = str_field("view")? {
            req.view = s.to_string();
        }
        match v.get("limits") {
            None | Some(Json::Null) => {}
            Some(l @ Json::Obj(_)) => req.limits = Some(LimitsSpec::from_json_value(l)?),
            Some(_) => return Err("limits must be an object".to_string()),
        }
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Response
// ---------------------------------------------------------------------------

/// One result relation: rendered rows plus a JSON encoding.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RelationOut {
    /// Relation name (`"result"` for CALC/algebra; the IDB predicate name
    /// for Datalog).
    pub name: String,
    /// Rows rendered in the text format, in canonical sorted order.
    pub rows: Vec<String>,
    /// The same rows as one canonical JSON array (atoms as strings,
    /// tuples as arrays, sets as sorted arrays).
    pub rows_json: String,
}

/// Static-analysis output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisOut {
    /// Caret-rendered human report.
    pub text: String,
    /// The analyzer's JSON report (diagnostics + certificate), verbatim.
    pub json: String,
    /// Error-severity diagnostic count.
    pub errors: u64,
    /// Warning-severity diagnostic count.
    pub warnings: u64,
    /// Whether a complexity certificate was produced.
    pub certified: bool,
}

/// A rendered query plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExplainOut {
    /// The deterministic text rendering.
    pub text: String,
    /// The deterministic JSON rendering, verbatim.
    pub json: String,
}

/// What the request's governor allowance spent.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Spend {
    /// Step fuel consumed.
    pub steps: u64,
    /// Peak approximate bytes of materialised values charged.
    pub mem_bytes: u64,
    /// Wall-clock microseconds.
    pub elapsed_us: u64,
}

/// A structured failure.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ErrorOut {
    /// Stable machine kind: `"parse"`, `"eval"`, `"diagnostics"`,
    /// `"storage"`, `"resource"`, `"rejected"`, `"protocol"`,
    /// `"unsupported"`.
    pub kind: String,
    /// Human-readable message.
    pub message: String,
    /// True when a governor budget tripped (the engine-independent
    /// question callers branch on).
    pub resource_trip: bool,
    /// For admission-control rejections: when to try again.
    pub retry_after_ms: Option<u64>,
}

/// One maintained view's net change under a maintenance delta —
/// carried on `Update` responses and pushed to subscribers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeltaOut {
    /// The view the change belongs to.
    pub view: String,
    /// Rows that appeared, one entry per changed view relation.
    pub added: Vec<RelationOut>,
    /// Rows that disappeared, one entry per changed view relation.
    pub removed: Vec<RelationOut>,
}

impl DeltaOut {
    /// True when the delta changed nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Per-view maintenance counters, reported by `op: Stats`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ViewStatsOut {
    /// The view name.
    pub view: String,
    /// Maintenance rounds the view has been through.
    pub maintain_calls: u64,
    /// Governor steps spent on the view in total (materialization
    /// included).
    pub steps_total: u64,
    /// Governor steps the most recent maintenance call spent.
    pub steps_last: u64,
}

/// Per-tenant counters, reported by `op: Stats`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// Tenant name (`""` is the anonymous tenant).
    pub tenant: String,
    /// Requests admitted.
    pub requests: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Admitted requests that tripped a budget.
    pub trips: u64,
    /// Step fuel spent by admitted requests.
    pub spent_steps: u64,
    /// Step allowance currently available in the tenant's bucket.
    pub balance_steps: u64,
}

/// Service/session counters, reported by `op: Stats`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsOut {
    /// Total requests handled (admitted + rejected).
    pub requests: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests that tripped a resource budget.
    pub trips: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Median request latency (µs, fixed-bucket histogram upper bound).
    pub p50_us: u64,
    /// 99th-percentile request latency (µs, bucket upper bound).
    pub p99_us: u64,
    /// Live connections (servers only).
    pub connections: u64,
    /// Per-tenant breakdown.
    pub tenants: Vec<TenantStats>,
    /// Per-view maintenance breakdown.
    pub views: Vec<ViewStatsOut>,
}

/// The response to one [`Request`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Response {
    /// True unless [`Response::error`] is set.
    pub ok: bool,
    /// The failure, when not ok.
    pub error: Option<ErrorOut>,
    /// Result relations (`Eval`): one for CALC/algebra, one per IDB
    /// predicate for Datalog.
    pub relations: Vec<RelationOut>,
    /// Analysis output (`Analyze`, and `Checked`-mode evaluations:
    /// refusals carry the findings, successes the certificate).
    pub analysis: Option<AnalysisOut>,
    /// Plan rendering (`Explain`).
    pub explain: Option<ExplainOut>,
    /// Governor spend of this request.
    pub spend: Option<Spend>,
    /// Counters (`Stats`).
    pub stats: Option<StatsOut>,
    /// One-line human summary (mutations, opens, saves).
    pub message: Option<String>,
    /// Datalog fixpoint rounds, when the strategy reports them.
    pub rounds: Option<u64>,
    /// View changes caused by this request (`Update`, `Insert` with
    /// views live) or carried by a pushed event.
    pub deltas: Vec<DeltaOut>,
    /// Set on lines the server *pushes* rather than sends in reply —
    /// `"delta"` for maintenance notifications — so clients reading the
    /// stream can tell pushes from responses. `None` on replies.
    pub event: Option<String>,
}

impl Response {
    /// A success with just a message.
    pub fn message(text: impl Into<String>) -> Response {
        Response {
            ok: true,
            message: Some(text.into()),
            ..Response::default()
        }
    }

    /// A failure of `kind`.
    pub fn error(kind: &str, message: impl Into<String>) -> Response {
        Response {
            ok: false,
            error: Some(ErrorOut {
                kind: kind.to_string(),
                message: message.into(),
                resource_trip: false,
                retry_after_ms: None,
            }),
            ..Response::default()
        }
    }

    /// Canonical single-line JSON (same contract as [`Request::to_json`]).
    pub fn to_json(&self) -> String {
        let opt_u64 = |v: Option<u64>| v.map(Json::u64).unwrap_or(Json::Null);
        let relations = Json::Arr(self.relations.iter().map(relation_json).collect());
        let deltas = Json::Arr(
            self.deltas
                .iter()
                .map(|d| {
                    Json::Obj(vec![
                        ("view".into(), Json::Str(d.view.clone())),
                        (
                            "added".into(),
                            Json::Arr(d.added.iter().map(relation_json).collect()),
                        ),
                        (
                            "removed".into(),
                            Json::Arr(d.removed.iter().map(relation_json).collect()),
                        ),
                    ])
                })
                .collect(),
        );
        let error = match &self.error {
            None => Json::Null,
            Some(e) => Json::Obj(vec![
                ("kind".into(), Json::Str(e.kind.clone())),
                ("message".into(), Json::Str(e.message.clone())),
                ("resource_trip".into(), Json::Bool(e.resource_trip)),
                ("retry_after_ms".into(), opt_u64(e.retry_after_ms)),
            ]),
        };
        let analysis = match &self.analysis {
            None => Json::Null,
            Some(a) => Json::Obj(vec![
                ("text".into(), Json::Str(a.text.clone())),
                ("json".into(), Json::Str(a.json.clone())),
                ("errors".into(), Json::u64(a.errors)),
                ("warnings".into(), Json::u64(a.warnings)),
                ("certified".into(), Json::Bool(a.certified)),
            ]),
        };
        let explain = match &self.explain {
            None => Json::Null,
            Some(e) => Json::Obj(vec![
                ("text".into(), Json::Str(e.text.clone())),
                ("json".into(), Json::Str(e.json.clone())),
            ]),
        };
        let spend = match &self.spend {
            None => Json::Null,
            Some(s) => Json::Obj(vec![
                ("steps".into(), Json::u64(s.steps)),
                ("mem_bytes".into(), Json::u64(s.mem_bytes)),
                ("elapsed_us".into(), Json::u64(s.elapsed_us)),
            ]),
        };
        let stats = match &self.stats {
            None => Json::Null,
            Some(s) => Json::Obj(vec![
                ("requests".into(), Json::u64(s.requests)),
                ("rejected".into(), Json::u64(s.rejected)),
                ("trips".into(), Json::u64(s.trips)),
                ("cache_hits".into(), Json::u64(s.cache_hits)),
                ("cache_misses".into(), Json::u64(s.cache_misses)),
                ("p50_us".into(), Json::u64(s.p50_us)),
                ("p99_us".into(), Json::u64(s.p99_us)),
                ("connections".into(), Json::u64(s.connections)),
                (
                    "tenants".into(),
                    Json::Arr(
                        s.tenants
                            .iter()
                            .map(|t| {
                                Json::Obj(vec![
                                    ("tenant".into(), Json::Str(t.tenant.clone())),
                                    ("requests".into(), Json::u64(t.requests)),
                                    ("rejected".into(), Json::u64(t.rejected)),
                                    ("trips".into(), Json::u64(t.trips)),
                                    ("spent_steps".into(), Json::u64(t.spent_steps)),
                                    ("balance_steps".into(), Json::u64(t.balance_steps)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "views".into(),
                    Json::Arr(
                        s.views
                            .iter()
                            .map(|v| {
                                Json::Obj(vec![
                                    ("view".into(), Json::Str(v.view.clone())),
                                    ("maintain_calls".into(), Json::u64(v.maintain_calls)),
                                    ("steps_total".into(), Json::u64(v.steps_total)),
                                    ("steps_last".into(), Json::u64(v.steps_last)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        Json::Obj(vec![
            ("ok".into(), Json::Bool(self.ok)),
            ("error".into(), error),
            ("relations".into(), relations),
            ("analysis".into(), analysis),
            ("explain".into(), explain),
            ("spend".into(), spend),
            ("stats".into(), stats),
            (
                "message".into(),
                match &self.message {
                    Some(m) => Json::Str(m.clone()),
                    None => Json::Null,
                },
            ),
            ("rounds".into(), opt_u64(self.rounds)),
            ("deltas".into(), deltas),
            (
                "event".into(),
                match &self.event {
                    Some(e) => Json::Str(e.clone()),
                    None => Json::Null,
                },
            ),
        ])
        .render()
    }

    /// Parse a response line (the client half of the protocol).
    pub fn from_json(src: &str) -> Result<Response, String> {
        let v = json::parse(src).map_err(|e| e.to_string())?;
        if !matches!(v, Json::Obj(_)) {
            return Err("response must be a JSON object".to_string());
        }
        let opt_str =
            |v: Option<&Json>| -> Option<String> { v.and_then(Json::as_str).map(str::to_string) };
        let u = |v: Option<&Json>| v.and_then(Json::as_u64).unwrap_or(0);
        let opt_u = |v: Option<&Json>| -> Option<u64> {
            match v {
                None | Some(Json::Null) => None,
                Some(n) => n.as_u64(),
            }
        };
        let mut resp = Response {
            ok: v.get("ok").and_then(Json::as_bool).unwrap_or(false),
            ..Response::default()
        };
        if let Some(e @ Json::Obj(_)) = v.get("error") {
            resp.error = Some(ErrorOut {
                kind: opt_str(e.get("kind")).unwrap_or_default(),
                message: opt_str(e.get("message")).unwrap_or_default(),
                resource_trip: e
                    .get("resource_trip")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                retry_after_ms: opt_u(e.get("retry_after_ms")),
            });
        }
        if let Some(Json::Arr(rels)) = v.get("relations") {
            resp.relations = rels.iter().map(relation_from_json).collect();
        }
        if let Some(Json::Arr(items)) = v.get("deltas") {
            for d in items {
                let rel_list = |key: &str| -> Vec<RelationOut> {
                    match d.get(key) {
                        Some(Json::Arr(rs)) => rs.iter().map(relation_from_json).collect(),
                        _ => Vec::new(),
                    }
                };
                resp.deltas.push(DeltaOut {
                    view: opt_str(d.get("view")).unwrap_or_default(),
                    added: rel_list("added"),
                    removed: rel_list("removed"),
                });
            }
        }
        resp.event = opt_str(v.get("event"));
        if let Some(a @ Json::Obj(_)) = v.get("analysis") {
            resp.analysis = Some(AnalysisOut {
                text: opt_str(a.get("text")).unwrap_or_default(),
                json: opt_str(a.get("json")).unwrap_or_default(),
                errors: u(a.get("errors")),
                warnings: u(a.get("warnings")),
                certified: a.get("certified").and_then(Json::as_bool).unwrap_or(false),
            });
        }
        if let Some(e @ Json::Obj(_)) = v.get("explain") {
            resp.explain = Some(ExplainOut {
                text: opt_str(e.get("text")).unwrap_or_default(),
                json: opt_str(e.get("json")).unwrap_or_default(),
            });
        }
        if let Some(s @ Json::Obj(_)) = v.get("spend") {
            resp.spend = Some(Spend {
                steps: u(s.get("steps")),
                mem_bytes: u(s.get("mem_bytes")),
                elapsed_us: u(s.get("elapsed_us")),
            });
        }
        if let Some(s @ Json::Obj(_)) = v.get("stats") {
            let mut tenants = Vec::new();
            if let Some(Json::Arr(items)) = s.get("tenants") {
                for t in items {
                    tenants.push(TenantStats {
                        tenant: opt_str(t.get("tenant")).unwrap_or_default(),
                        requests: u(t.get("requests")),
                        rejected: u(t.get("rejected")),
                        trips: u(t.get("trips")),
                        spent_steps: u(t.get("spent_steps")),
                        balance_steps: u(t.get("balance_steps")),
                    });
                }
            }
            let mut views = Vec::new();
            if let Some(Json::Arr(items)) = s.get("views") {
                for t in items {
                    views.push(ViewStatsOut {
                        view: opt_str(t.get("view")).unwrap_or_default(),
                        maintain_calls: u(t.get("maintain_calls")),
                        steps_total: u(t.get("steps_total")),
                        steps_last: u(t.get("steps_last")),
                    });
                }
            }
            resp.stats = Some(StatsOut {
                requests: u(s.get("requests")),
                rejected: u(s.get("rejected")),
                trips: u(s.get("trips")),
                cache_hits: u(s.get("cache_hits")),
                cache_misses: u(s.get("cache_misses")),
                p50_us: u(s.get("p50_us")),
                p99_us: u(s.get("p99_us")),
                connections: u(s.get("connections")),
                tenants,
                views,
            });
        }
        resp.message = opt_str(v.get("message"));
        resp.rounds = opt_u(v.get("rounds"));
        Ok(resp)
    }
}

fn relation_json(r: &RelationOut) -> Json {
    // rows_json is canonical JSON produced by this crate's writer;
    // parse-and-splice keeps the response line valid even if a caller
    // hand-built it.
    let rows_json = json::parse(&r.rows_json).unwrap_or(Json::Arr(vec![]));
    Json::Obj(vec![
        ("name".into(), Json::Str(r.name.clone())),
        (
            "rows".into(),
            Json::Arr(r.rows.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
        ("rows_json".into(), rows_json),
    ])
}

fn relation_from_json(r: &Json) -> RelationOut {
    RelationOut {
        name: r
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        rows: r
            .get("rows")
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default(),
        rows_json: r
            .get("rows_json")
            .map(Json::render)
            .unwrap_or_else(|| "[]".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // No prelude glob: its `Strategy` trait would shadow the protocol's
    // `Strategy` enum.
    use proptest::prelude::{any, prop_assert, prop_assert_eq, proptest};

    #[test]
    fn request_defaults_and_wire_names() {
        let r = Request::default();
        assert_eq!(r.op, Op::Eval);
        assert_eq!(r.lang, Lang::Calc);
        assert_eq!(r.mode, Mode::Safe);
        assert_eq!(r.strategy, Strategy::SemiNaive);
        assert!(!r.planned);
        let j = r.to_json();
        assert!(j.contains("\"op\":\"eval\""), "{j}");
        assert!(j.contains("\"strategy\":\"semi-naive\""), "{j}");
    }

    #[test]
    fn request_round_trips_exactly() {
        let r = Request {
            op: Op::Eval,
            lang: Lang::Datalog,
            mode: Mode::Checked,
            strategy: Strategy::Stratified,
            planned: true,
            tenant: "acme".into(),
            text: "rel tc(U, U).\ntc(x, y) :- G(x, y).".into(),
            view: "paths".into(),
            limits: Some(LimitsSpec {
                max_steps: Some(u64::MAX),
                deadline_ms: Some(250),
                ..LimitsSpec::default()
            }),
        };
        let j = r.to_json();
        assert!(!j.contains('\n'), "one line: {j}");
        let back = Request::from_json(&j).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), j, "serialize∘parse∘serialize = serialize");
    }

    #[test]
    fn missing_fields_default_and_unknown_fields_are_ignored() {
        let r = Request::from_json(r#"{"text": "{[x:U] | G(x, x)}", "future": 1}"#).unwrap();
        assert_eq!(r.op, Op::Eval);
        assert_eq!(r.text, "{[x:U] | G(x, x)}");
        assert_eq!(r.limits, None);
    }

    #[test]
    fn bad_requests_are_structured_errors() {
        for (src, needle) in [
            ("[]", "object"),
            (r#"{"op": "dance"}"#, "unknown op"),
            (r#"{"lang": 3}"#, "must be a string"),
            (r#"{"planned": "yes"}"#, "boolean"),
            (r#"{"limits": {"max_steps": -1}}"#, "non-negative"),
            (r#"{"limits": [1]}"#, "object"),
            ("{", "json error"),
        ] {
            let e = Request::from_json(src).unwrap_err();
            assert!(e.contains(needle), "{src}: {e}");
        }
    }

    #[test]
    fn response_round_trips() {
        let r = Response {
            ok: true,
            relations: vec![RelationOut {
                name: "result".into(),
                rows: vec!["('a', 'b')".into()],
                rows_json: r#"[["a","b"]]"#.into(),
            }],
            spend: Some(Spend {
                steps: 42,
                mem_bytes: 1024,
                elapsed_us: 7,
            }),
            rounds: Some(3),
            message: Some("ok".into()),
            ..Response::default()
        };
        let j = r.to_json();
        assert!(!j.contains('\n'), "{j}");
        let back = Response::from_json(&j).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), j);
    }

    #[test]
    fn rejection_response_round_trips_retry_after() {
        let mut r = Response::error("rejected", "tenant budget exhausted");
        r.error.as_mut().unwrap().retry_after_ms = Some(350);
        let back = Response::from_json(&r.to_json()).unwrap();
        assert_eq!(back.error.as_ref().unwrap().retry_after_ms, Some(350));
        assert!(!back.ok);
    }

    #[test]
    fn view_ops_and_pushed_deltas_round_trip() {
        let r = Request {
            op: Op::Materialize,
            lang: Lang::Datalog,
            view: "paths".into(),
            text: "rel tc(U, U).\ntc(x, y) :- G(x, y).".into(),
            ..Request::default()
        };
        let back = Request::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        for (op, wire) in [
            (Op::Update, "update"),
            (Op::Subscribe, "subscribe"),
            (Op::Unsubscribe, "unsubscribe"),
        ] {
            let r = Request {
                op,
                view: "paths".into(),
                ..Request::default()
            };
            assert!(r.to_json().contains(&format!("\"op\":\"{wire}\"")));
            assert_eq!(Request::from_json(&r.to_json()).unwrap().op, op);
        }

        // a pushed maintenance event: the marker and deltas survive
        let push = Response {
            ok: true,
            event: Some("delta".into()),
            deltas: vec![DeltaOut {
                view: "paths".into(),
                added: vec![RelationOut {
                    name: "tc".into(),
                    rows: vec!["('a', 'c')".into()],
                    rows_json: r#"[["a","c"]]"#.into(),
                }],
                removed: vec![],
            }],
            ..Response::default()
        };
        let j = push.to_json();
        assert!(!j.contains('\n'), "{j}");
        let back = Response::from_json(&j).unwrap();
        assert_eq!(back, push);
        assert_eq!(back.to_json(), j);
        // replies leave the marker unset, so clients can branch on it
        assert_eq!(Response::message("ok").event, None);
    }

    #[test]
    fn stats_response_round_trips_tenants() {
        let r = Response {
            ok: true,
            stats: Some(StatsOut {
                requests: 10,
                rejected: 2,
                trips: 1,
                cache_hits: 5,
                cache_misses: 3,
                p50_us: 500,
                p99_us: 20_000,
                connections: 4,
                tenants: vec![TenantStats {
                    tenant: "acme".into(),
                    requests: 7,
                    rejected: 2,
                    trips: 1,
                    spent_steps: 999,
                    balance_steps: 1,
                }],
                views: vec![ViewStatsOut {
                    view: "paths".into(),
                    maintain_calls: 3,
                    steps_total: 120,
                    steps_last: 12,
                }],
            }),
            ..Response::default()
        };
        let back = Response::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    // The vendored proptest stub re-exports `Strategy` under prelude; alias
    // to avoid clashing with the protocol's own `Strategy` enum.
    use proptest::prelude::Strategy as Strategy2;
    use proptest::test_runner::TestCaseError;

    fn arb_request() -> impl Strategy2<Value = Request> {
        // Vendored-proptest strategies: draw independent parts (Options
        // are drawn as a presence bool plus a payload) and assemble.
        (
            (
                proptest::sample::select(vec![
                    Op::Eval,
                    Op::Analyze,
                    Op::Explain,
                    Op::Insert,
                    Op::Save,
                    Op::Open,
                    Op::Stats,
                    Op::Materialize,
                    Op::Update,
                    Op::Subscribe,
                    Op::Unsubscribe,
                ]),
                proptest::sample::select(vec![Lang::Calc, Lang::Datalog, Lang::Algebra]),
                proptest::sample::select(vec![Mode::Fast, Mode::Safe, Mode::Checked]),
                proptest::sample::select(vec![
                    Strategy::Naive,
                    Strategy::SemiNaive,
                    Strategy::Stratified,
                    Strategy::Simultaneous,
                ]),
                any::<bool>(),
                "[ -~]{0,40}",
            ),
            (
                "[ -~\\n\"\\\\]{0,40}",
                "[ -~]{0,20}",
                any::<bool>(),
                (any::<bool>(), any::<u64>()),
                (any::<bool>(), any::<u64>()),
                (any::<bool>(), any::<u64>()),
            ),
        )
            .prop_map(
                |(
                    (op, lang, mode, strategy, planned, tenant),
                    (text, view, has_limits, a, b, c),
                )| {
                    let opt = |(some, v): (bool, u64)| some.then_some(v);
                    Request {
                        op,
                        lang,
                        mode,
                        strategy,
                        planned,
                        tenant,
                        text,
                        view,
                        limits: has_limits.then(|| LimitsSpec {
                            max_steps: opt(a),
                            max_range: opt(b),
                            deadline_ms: opt(c),
                            ..LimitsSpec::default()
                        }),
                    }
                },
            )
    }

    proptest! {
        /// serialize → parse → serialize is the identity, and parse is a
        /// left inverse of serialize, for arbitrary requests (including
        /// embedded newlines, quotes, and backslashes in `text`).
        #[test]
        fn request_json_round_trip(r in arb_request()) {
            let j = r.to_json();
            prop_assert!(!j.contains('\n'));
            let back = Request::from_json(&j).map_err(TestCaseError)?;
            prop_assert_eq!(&back, &r);
            prop_assert_eq!(back.to_json(), j);
        }
    }
}
