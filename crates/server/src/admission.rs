//! Per-tenant token buckets denominated in governor steps.
//!
//! Extracted from the server's metrics so admission control can be
//! exercised on its own — in particular by the `concheck` model-checker
//! scenarios, which race several tenants against one bucket table
//! without a TCP server in sight. With `refill_steps_per_sec == 0` the
//! bucket never reads the clock, so every outcome is a pure function of
//! the operation interleaving — exactly what a deterministic schedule
//! explorer needs.

use no_proto::TenantStats;
use std::collections::BTreeMap;
use std::time::Instant;

use conc::Mutex;

#[derive(Debug)]
struct Bucket {
    balance: f64,
    last_refill: Instant,
    requests: u64,
    rejected: u64,
    trips: u64,
    spent_steps: u64,
}

/// A table of per-tenant token buckets, one behind a single named lock
/// (`server.buckets`). A fresh tenant starts with a full bucket;
/// admitted requests settle their actual spend afterwards, and debt is
/// allowed — the refill pays it down.
#[derive(Debug)]
pub struct TokenBuckets {
    capacity_steps: u64,
    refill_steps_per_sec: u64,
    tenants: Mutex<BTreeMap<String, Bucket>>,
}

impl TokenBuckets {
    /// A bucket table where every tenant gets `capacity_steps` of burst
    /// and refills at `refill_steps_per_sec`. A zero refill rate means
    /// budgets never replenish *and* the table never reads the clock —
    /// the deterministic mode the model checker relies on.
    pub fn new(capacity_steps: u64, refill_steps_per_sec: u64) -> TokenBuckets {
        TokenBuckets {
            capacity_steps,
            refill_steps_per_sec,
            tenants: Mutex::new_named("server.buckets", BTreeMap::new()),
        }
    }

    /// The tenant's bucket, created full if absent and refilled up to
    /// now (unless the refill rate is zero).
    fn bucket<'a>(
        &self,
        tenants: &'a mut BTreeMap<String, Bucket>,
        tenant: &str,
    ) -> &'a mut Bucket {
        let b = tenants.entry(tenant.to_string()).or_insert_with(|| Bucket {
            balance: self.capacity_steps as f64,
            last_refill: Instant::now(),
            requests: 0,
            rejected: 0,
            trips: 0,
            spent_steps: 0,
        });
        if self.refill_steps_per_sec > 0 {
            let now = Instant::now();
            let refill =
                now.duration_since(b.last_refill).as_secs_f64() * self.refill_steps_per_sec as f64;
            b.balance = (b.balance + refill).min(self.capacity_steps as f64);
            b.last_refill = now;
        }
        b
    }

    /// Admit or reject one request for `tenant`: `Err(retry_after_ms)`
    /// is a rejection. Admission costs nothing up front — the request
    /// settles its real spend via [`TokenBuckets::settle`].
    pub fn admit(&self, tenant: &str) -> Result<(), u64> {
        let mut tenants = self.tenants.lock();
        let rate = self.refill_steps_per_sec;
        let b = self.bucket(&mut tenants, tenant);
        if b.balance >= 1.0 {
            b.requests += 1;
            Ok(())
        } else {
            b.rejected += 1;
            let deficit = 1.0 - b.balance;
            let retry_ms = if rate == 0 {
                60_000
            } else {
                ((deficit / rate as f64) * 1000.0).ceil().max(1.0) as u64
            };
            Err(retry_ms)
        }
    }

    /// Settle an admitted request: deduct `spent_steps` from the
    /// tenant's bucket (going negative if it must) and record the trip
    /// flag in the tenant's counters.
    pub fn settle(&self, tenant: &str, spent_steps: u64, tripped: bool) {
        let mut tenants = self.tenants.lock();
        let b = self.bucket(&mut tenants, tenant);
        b.balance -= spent_steps as f64;
        b.spent_steps = b.spent_steps.saturating_add(spent_steps);
        if tripped {
            b.trips += 1;
        }
    }

    /// The tenant's current balance in whole steps, clamped at zero.
    /// Creates the bucket (full) if the tenant is new.
    pub fn balance_steps(&self, tenant: &str) -> u64 {
        let mut tenants = self.tenants.lock();
        self.bucket(&mut tenants, tenant).balance.max(0.0) as u64
    }

    /// Per-tenant counters for `op: "stats"`, with every balance
    /// refreshed to now first so the report is current, not stale.
    pub fn snapshot(&self) -> Vec<TenantStats> {
        let mut tenants = self.tenants.lock();
        let names: Vec<String> = tenants.keys().cloned().collect();
        for name in &names {
            self.bucket(&mut tenants, name);
        }
        tenants
            .iter()
            .map(|(name, b)| TenantStats {
                tenant: name.clone(),
                requests: b.requests,
                rejected: b.rejected,
                trips: b.trips,
                spent_steps: b.spent_steps,
                balance_steps: b.balance.max(0.0) as u64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_is_pure_arithmetic() {
        let b = TokenBuckets::new(3, 0);
        assert!(b.admit("t").is_ok());
        b.settle("t", 3, false);
        let err = b.admit("t").unwrap_err();
        assert_eq!(err, 60_000, "zero-rate rejection uses the fixed backoff");
        assert_eq!(b.balance_steps("t"), 0);
    }

    #[test]
    fn debt_is_allowed_and_clamped_in_reports() {
        let b = TokenBuckets::new(10, 0);
        assert!(b.admit("t").is_ok());
        b.settle("t", 25, true); // overspend: balance goes to -15
        assert_eq!(b.balance_steps("t"), 0);
        let snap = b.snapshot();
        let t = snap.iter().find(|s| s.tenant == "t").unwrap();
        assert_eq!(t.spent_steps, 25);
        assert_eq!(t.trips, 1);
        assert_eq!(t.balance_steps, 0);
    }

    #[test]
    fn tenants_are_isolated() {
        let b = TokenBuckets::new(1, 0);
        assert!(b.admit("a").is_ok());
        b.settle("a", 1, false);
        assert!(b.admit("a").is_err());
        assert!(b.admit("b").is_ok(), "another tenant has its own bucket");
    }
}
