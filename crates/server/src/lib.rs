//! # `no-server` — the nestdb TCP query service
//!
//! A std-only server speaking the `no-proto` wire protocol: one
//! newline-delimited canonical-JSON [`Request`] per line in, one
//! [`Response`] line out, over plain TCP. The crate is engine-agnostic —
//! it drives any [`Handler`] (the `nestdb` crate provides the
//! `Session`-backed one in its `service` module) and owns everything
//! *around* evaluation:
//!
//! - **Concurrency**: thread-per-connection, with pipelining (a client may
//!   send several requests before reading responses; they execute in
//!   order, responses come back in order).
//! - **Admission control**: per-tenant token buckets denominated in
//!   governor *steps* — the same fuel the evaluation engines spend. A
//!   tenant whose bucket is empty gets `kind: "rejected"` with
//!   `retry_after_ms` instead of a thread; admitted requests settle their
//!   actual [`Spend`](no_proto::Spend) against the bucket afterwards, so
//!   expensive queries genuinely cost more than cheap ones.
//! - **Cancellation**: each connection has a reader thread that notices
//!   EOF the moment the client disconnects and fires the in-flight
//!   request's [`CancelToken`]; a [`Handler`] wires that token to its
//!   governor, so abandoned queries stop burning fuel mid-fixpoint.
//! - **Metrics**: request/rejection/trip counters, a fixed-bucket latency
//!   histogram (p50/p99 without unbounded memory), a live connection
//!   gauge, and per-tenant accounting — all served back through
//!   `op: "stats"`.
//! - **Live view subscriptions**: `op: "subscribe"` registers the
//!   connection for a maintained view; whenever any connection's
//!   mutation changes that view, subscribers receive an unsolicited
//!   push line (`event: "delta"`) carrying the view's net change. The
//!   handler validates the view; the server owns the fan-out table, so
//!   subscriptions are connection-scoped and die with the socket.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use conc::{AtomicBool, AtomicU64, Mutex};
use no_proto::{DeltaOut, Op, Request, Response};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

pub mod admission;
use admission::TokenBuckets;

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

struct HookState {
    fired: bool,
    hooks: Vec<Box<dyn Fn() + Send + Sync>>,
}

struct CancelInner {
    cancelled: AtomicBool,
    state: Mutex<HookState>,
}

impl Default for CancelInner {
    fn default() -> CancelInner {
        CancelInner {
            cancelled: AtomicBool::new(false),
            state: Mutex::new_named(
                "server.cancel_hooks",
                HookState {
                    fired: false,
                    hooks: Vec::new(),
                },
            ),
        }
    }
}

/// A cooperative cancellation token: the server fires it when the client
/// behind an in-flight request disconnects; handlers register hooks (e.g.
/// tripping a governor) so evaluation stops at its next checkpoint.
///
/// Every hook runs **exactly once** no matter how the races fall: the
/// `fired` flag lives under the hooks lock, [`CancelToken::cancel`]
/// drains the registered hooks while flipping it (so a second or
/// concurrent `cancel()` finds nothing left to run), and a hook
/// registered after the fact is run by the registering thread itself.
/// Hooks always run *outside* the lock, so a hook may freely touch the
/// token again.
#[derive(Clone, Default)]
pub struct CancelToken(Arc<CancelInner>);

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fire the token: set the flag and run every registered hook.
    /// Idempotent — only the first `cancel()` runs hooks.
    pub fn cancel(&self) {
        self.0.cancelled.store(true, Ordering::SeqCst);
        let to_run = {
            let mut st = self.0.state.lock();
            if st.fired {
                Vec::new()
            } else {
                st.fired = true;
                std::mem::take(&mut st.hooks)
            }
        };
        for hook in &to_run {
            hook();
        }
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.0.cancelled.load(Ordering::SeqCst)
    }

    /// Register a hook to run when the token fires. A hook registered
    /// after the fact runs immediately on this thread — there is no
    /// lost-wakeup window, and no schedule in which it runs twice.
    pub fn on_cancel(&self, hook: impl Fn() + Send + Sync + 'static) {
        let mut st = self.0.state.lock();
        if st.fired {
            drop(st);
            hook();
        } else {
            st.hooks.push(Box::new(hook));
        }
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// What the server drives: anything that can answer one [`Request`].
/// `handle` runs concurrently from many connection threads; it must not
/// panic on any input (failures are error [`Response`]s) and should wire
/// `cancel` to its evaluation budget so a fired token aborts promptly.
pub trait Handler: Send + Sync + 'static {
    /// Execute one request.
    fn handle(&self, req: &Request, cancel: &CancelToken) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request, &CancelToken) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request, cancel: &CancelToken) -> Response {
        self(req, cancel)
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Admission-control knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Token-bucket capacity per tenant, in governor steps. A fresh
    /// tenant starts with a full bucket.
    pub tenant_capacity_steps: u64,
    /// Bucket refill rate, in steps per second.
    pub tenant_refill_steps_per_sec: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            // generous enough that interactive use never sees a rejection
            // unless the operator asks for a tighter budget
            tenant_capacity_steps: 50_000_000,
            tenant_refill_steps_per_sec: 5_000_000,
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Upper bounds (µs) of the fixed latency-histogram buckets; the last
/// bucket is open-ended. Percentiles are reported as bucket upper bounds,
/// which is the precision `StatsOut` documents.
const LAT_BOUNDS_US: [u64; 18] = [
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    u64::MAX,
];

#[derive(Debug, Default)]
struct Counters {
    requests: u64,
    rejected: u64,
    trips: u64,
    latency: [u64; LAT_BOUNDS_US.len()],
}

/// Shared server metrics: global counters behind one named mutex
/// (requests are milliseconds-scale, contention is negligible), the
/// per-tenant [`TokenBuckets`] table behind its own, plus an atomic
/// live-connection gauge. The two locks are never held together, so the
/// lock-order graph stays edge-free here by construction.
#[derive(Debug)]
struct Metrics {
    counters: Mutex<Counters>,
    buckets: TokenBuckets,
    connections: AtomicU64,
}

impl Metrics {
    fn new(cfg: &ServerConfig) -> Metrics {
        Metrics {
            counters: Mutex::new_named("server.counters", Counters::default()),
            buckets: TokenBuckets::new(cfg.tenant_capacity_steps, cfg.tenant_refill_steps_per_sec),
            connections: AtomicU64::new(0),
        }
    }

    /// Admit or reject a request for `tenant`; `Err(retry_after_ms)` is a
    /// rejection.
    fn admit(&self, tenant: &str) -> Result<(), u64> {
        self.counters.lock().requests += 1;
        self.buckets.admit(tenant).inspect_err(|_| {
            self.counters.lock().rejected += 1;
        })
    }

    /// Settle an admitted request: deduct its spend from the tenant's
    /// bucket, record trips and latency.
    fn settle(&self, tenant: &str, resp: &Response, elapsed: Duration) {
        let tripped = resp.error.as_ref().is_some_and(|e| e.resource_trip);
        let steps = resp.spend.as_ref().map_or(0, |s| s.steps);
        {
            let mut c = self.counters.lock();
            if tripped {
                c.trips += 1;
            }
            let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
            let slot = LAT_BOUNDS_US
                .iter()
                .position(|&bound| us <= bound)
                .unwrap_or(LAT_BOUNDS_US.len() - 1);
            c.latency[slot] += 1;
        }
        self.buckets.settle(tenant, steps, tripped);
    }

    fn percentile(latency: &[u64; LAT_BOUNDS_US.len()], p: f64) -> u64 {
        let total: u64 = latency.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in latency.iter().enumerate() {
            seen += n;
            if seen >= target {
                return LAT_BOUNDS_US[i];
            }
        }
        LAT_BOUNDS_US[LAT_BOUNDS_US.len() - 1]
    }

    /// Overlay server-side counters onto a handler `op: Stats` response
    /// (which already carries the plan-cache hit/miss counters).
    fn overlay(&self, resp: &mut Response) {
        let mut stats = resp.stats.take().unwrap_or_default();
        {
            let c = self.counters.lock();
            stats.requests = c.requests;
            stats.rejected = c.rejected;
            stats.trips = c.trips;
            stats.p50_us = Self::percentile(&c.latency, 0.50);
            stats.p99_us = Self::percentile(&c.latency, 0.99);
        }
        stats.connections = self.connections.load(Ordering::SeqCst);
        stats.tenants = self.buckets.snapshot();
        resp.stats = Some(stats);
        resp.ok = true;
        resp.error = None;
    }
}

// ---------------------------------------------------------------------------
// Subscriptions
// ---------------------------------------------------------------------------

/// A connection's write half, shared between its executor thread (reply
/// lines) and publishers on other connections (push lines). Every line
/// is written and flushed under the lock, so replies and pushes
/// interleave only at line granularity.
type SharedWriter = Arc<Mutex<BufWriter<TcpStream>>>;

/// The server-wide fan-out table: view name → subscribed connections.
/// The handler decides whether a subscribe is valid (the view must
/// exist); this table only routes deltas. Lock order is
/// `server.subscriptions` → `server.conn_writer`, never the reverse —
/// publishers snapshot the target writers and write outside the table
/// lock.
struct Subscriptions {
    table: Mutex<BTreeMap<String, Vec<(u64, SharedWriter)>>>,
}

impl Subscriptions {
    fn new() -> Subscriptions {
        Subscriptions {
            table: Mutex::new_named("server.subscriptions", BTreeMap::new()),
        }
    }

    fn subscribe(&self, view: &str, conn: u64, writer: SharedWriter) {
        let mut t = self.table.lock();
        let subs = t.entry(view.to_string()).or_default();
        if !subs.iter().any(|(id, _)| *id == conn) {
            subs.push((conn, writer));
        }
    }

    fn unsubscribe(&self, view: &str, conn: u64) {
        let mut t = self.table.lock();
        if let Some(subs) = t.get_mut(view) {
            subs.retain(|(id, _)| *id != conn);
            if subs.is_empty() {
                t.remove(view);
            }
        }
    }

    /// Remove every subscription a closed connection held.
    fn drop_conn(&self, conn: u64) {
        let mut t = self.table.lock();
        t.retain(|_, subs| {
            subs.retain(|(id, _)| *id != conn);
            !subs.is_empty()
        });
    }

    /// Push each view's delta to its subscribers, except the connection
    /// that caused it (its own reply already carries the deltas). A
    /// subscriber whose socket is dead is dropped from the table.
    fn publish(&self, deltas: &[DeltaOut], from_conn: u64) {
        for delta in deltas {
            let targets: Vec<(u64, SharedWriter)> = {
                let t = self.table.lock();
                match t.get(&delta.view) {
                    Some(subs) => subs
                        .iter()
                        .filter(|(id, _)| *id != from_conn)
                        .cloned()
                        .collect(),
                    None => continue,
                }
            };
            if targets.is_empty() {
                continue;
            }
            let push = Response {
                ok: true,
                event: Some("delta".to_string()),
                deltas: vec![delta.clone()],
                ..Response::default()
            };
            let mut line = push.to_json();
            line.push('\n');
            let mut dead = Vec::new();
            for (id, writer) in &targets {
                let mut w = writer.lock();
                if w.write_all(line.as_bytes())
                    .and_then(|()| w.flush())
                    .is_err()
                {
                    dead.push(*id);
                }
            }
            for id in dead {
                self.unsubscribe(&delta.view, id);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// A running nestdb server: an accept loop plus one reader/executor
/// thread pair per live connection. Dropping the handle (or calling
/// [`Server::shutdown`]) stops accepting; established connections drain
/// on their own when their clients disconnect.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use `"127.0.0.1:0"` for an ephemeral test port) and
    /// start serving `handler` on background threads.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        handler: Arc<dyn Handler>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::new(&config));
        let subs = Arc::new(Subscriptions::new());
        let accept = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || accept_loop(listener, handler, metrics, subs, stop))
        };
        Ok(Server {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block forever serving requests (the accept loop never exits on its
    /// own); for the `nestdb serve` foreground process.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    handler: Arc<dyn Handler>,
    metrics: Arc<Metrics>,
    subs: Arc<Subscriptions>,
    stop: Arc<AtomicBool>,
) {
    let mut next_conn_id = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let handler = Arc::clone(&handler);
                let metrics = Arc::clone(&metrics);
                let subs = Arc::clone(&subs);
                let conn_id = next_conn_id;
                next_conn_id += 1;
                thread::spawn(move || {
                    metrics.connections.fetch_add(1, Ordering::SeqCst);
                    let _ = serve_connection(stream, handler, &metrics, &subs, conn_id);
                    subs.drop_conn(conn_id);
                    metrics.connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
            // nonblocking accept so the loop can observe `stop`
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One connection: a dedicated reader thread feeds request lines through
/// a channel (and fires the in-flight [`CancelToken`] the instant the
/// socket hits EOF), while this thread executes requests in order and
/// writes response lines back.
fn serve_connection(
    stream: TcpStream,
    handler: Arc<dyn Handler>,
    metrics: &Metrics,
    subs: &Subscriptions,
    conn_id: u64,
) -> io::Result<()> {
    let read_half = stream.try_clone()?;
    let (tx, rx) = mpsc::channel::<String>();
    let in_flight: Arc<Mutex<Option<CancelToken>>> =
        Arc::new(Mutex::new_named("server.in_flight", None));
    let reader = {
        let in_flight = Arc::clone(&in_flight);
        thread::spawn(move || {
            let mut lines = BufReader::new(read_half);
            let mut line = String::new();
            loop {
                line.clear();
                match lines.read_line(&mut line) {
                    Ok(0) | Err(_) => break, // disconnect
                    Ok(_) => {
                        if tx.send(std::mem::take(&mut line)).is_err() {
                            break; // executor is gone
                        }
                    }
                }
            }
            // the client is gone: abort whatever is running for it
            let current = in_flight.lock().take();
            if let Some(token) = current {
                token.cancel();
            }
        })
    };
    let out: SharedWriter = Arc::new(Mutex::new_named(
        "server.conn_writer",
        BufWriter::new(stream),
    ));
    while let Ok(line) = rx.recv() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let resp = process_line(
            line,
            handler.as_ref(),
            metrics,
            &in_flight,
            subs,
            conn_id,
            &out,
        );
        let mut encoded = resp.to_json();
        encoded.push('\n');
        let written = {
            let mut w = out.lock();
            w.write_all(encoded.as_bytes()).and_then(|()| w.flush())
        };
        if written.is_err() {
            break;
        }
    }
    drop(rx);
    let _ = reader.join();
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn process_line(
    line: &str,
    handler: &dyn Handler,
    metrics: &Metrics,
    in_flight: &Mutex<Option<CancelToken>>,
    subs: &Subscriptions,
    conn_id: u64,
    writer: &SharedWriter,
) -> Response {
    let req = match Request::from_json(line) {
        Ok(r) => r,
        Err(e) => return Response::error("protocol", format!("bad request: {e}")),
    };
    if req.op == Op::Stats {
        // introspection is never admission-controlled and never counted
        let mut resp = handler.handle(&req, &CancelToken::new());
        metrics.overlay(&mut resp);
        return resp;
    }
    // every other op — including Materialize/Update maintenance work —
    // pays admission in governor steps like any query
    if let Err(retry_ms) = metrics.admit(&req.tenant) {
        let mut resp = Response::error(
            "rejected",
            format!(
                "tenant {:?} is out of budget; retry in {retry_ms} ms",
                req.tenant
            ),
        );
        if let Some(err) = resp.error.as_mut() {
            err.retry_after_ms = Some(retry_ms);
        }
        return resp;
    }
    let token = CancelToken::new();
    *in_flight.lock() = Some(token.clone());
    let start = Instant::now();
    let resp = handler.handle(&req, &token);
    in_flight.lock().take();
    metrics.settle(&req.tenant, &resp, start.elapsed());
    if resp.ok {
        // the handler validated; the server owns connection-scoped state
        match req.op {
            Op::Subscribe => subs.subscribe(&req.view, conn_id, Arc::clone(writer)),
            Op::Unsubscribe => subs.unsubscribe(&req.view, conn_id),
            _ => {}
        }
        if !resp.deltas.is_empty() {
            // fan out BEFORE the originator's reply is written: once the
            // mutating client sees its response, every subscriber's push
            // is already on the wire
            subs.publish(&resp.deltas, conn_id);
        }
    }
    resp
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A minimal blocking protocol client, shared by the load generator and
/// the integration tests: one request line out, one response line back.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Send one request line without waiting for the response
    /// (pipelining).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        let mut line = req.to_json();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    /// Send one raw line, newline appended (for protocol-error tests).
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Read one response line.
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_json(line.trim()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Send one request and wait for its response.
    pub fn roundtrip(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conc::AtomicUsize;
    use no_proto::{Lang, Spend};

    /// Echoes the request text back and reports a fixed spend.
    struct Echo {
        steps_per_request: u64,
        calls: AtomicUsize,
    }

    impl Handler for Echo {
        fn handle(&self, req: &Request, _cancel: &CancelToken) -> Response {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let mut resp = Response::message(format!("echo: {}", req.text));
            resp.spend = Some(Spend {
                steps: self.steps_per_request,
                mem_bytes: 0,
                elapsed_us: 1,
            });
            resp
        }
    }

    fn echo_server(steps: u64, config: ServerConfig) -> (Server, Arc<Echo>) {
        let handler = Arc::new(Echo {
            steps_per_request: steps,
            calls: AtomicUsize::new(0),
        });
        let server = Server::bind("127.0.0.1:0", handler.clone(), config).unwrap();
        (server, handler)
    }

    #[test]
    fn round_trip_and_pipelining() {
        let (server, _h) = echo_server(1, ServerConfig::default());
        let mut client = Client::connect(server.local_addr()).unwrap();
        let resp = client
            .roundtrip(&Request::eval(Lang::Calc, "hello"))
            .unwrap();
        assert!(resp.ok);
        assert_eq!(resp.message.as_deref(), Some("echo: hello"));
        // pipelining: send three, then read three, in order
        for i in 0..3 {
            client
                .send(&Request::eval(Lang::Calc, format!("q{i}")))
                .unwrap();
        }
        for i in 0..3 {
            let resp = client.recv().unwrap();
            assert_eq!(
                resp.message.as_deref(),
                Some(format!("echo: q{i}").as_str())
            );
        }
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_protocol_errors_and_the_connection_survives() {
        let (server, _h) = echo_server(1, ServerConfig::default());
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.send_raw("this is not json").unwrap();
        let resp = client.recv().unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.error.as_ref().unwrap().kind, "protocol");
        // still serving
        let resp = client.roundtrip(&Request::eval(Lang::Calc, "ok")).unwrap();
        assert!(resp.ok);
        server.shutdown();
    }

    #[test]
    fn admission_control_rejects_with_retry_after() {
        // capacity 10 steps, each request spends 10: the second request
        // inside the refill window must be rejected
        let cfg = ServerConfig {
            tenant_capacity_steps: 10,
            tenant_refill_steps_per_sec: 1,
        };
        let (server, _h) = echo_server(10, cfg);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let mut req = Request::eval(Lang::Calc, "q");
        req.tenant = "acme".to_string();
        assert!(client.roundtrip(&req).unwrap().ok);
        let resp = client.roundtrip(&req).unwrap();
        assert!(!resp.ok);
        let err = resp.error.as_ref().unwrap();
        assert_eq!(err.kind, "rejected");
        assert!(err.retry_after_ms.unwrap() >= 1);
        // another tenant has its own bucket and is unaffected
        let mut other = Request::eval(Lang::Calc, "q");
        other.tenant = "zen".to_string();
        assert!(client.roundtrip(&other).unwrap().ok);
        server.shutdown();
    }

    #[test]
    fn stats_reports_counters_and_tenants() {
        let cfg = ServerConfig {
            tenant_capacity_steps: 10,
            tenant_refill_steps_per_sec: 1,
        };
        let (server, _h) = echo_server(10, cfg);
        let mut client = Client::connect(server.local_addr()).unwrap();
        let mut req = Request::eval(Lang::Calc, "q");
        req.tenant = "acme".to_string();
        client.roundtrip(&req).unwrap();
        client.roundtrip(&req).unwrap(); // rejected
        let stats_req = Request {
            op: Op::Stats,
            ..Request::default()
        };
        let resp = client.roundtrip(&stats_req).unwrap();
        assert!(resp.ok);
        let stats = resp.stats.as_ref().unwrap();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.connections, 1);
        assert!(stats.p50_us > 0);
        assert!(stats.p99_us >= stats.p50_us);
        let acme = stats.tenants.iter().find(|t| t.tenant == "acme").unwrap();
        assert_eq!(acme.requests, 1);
        assert_eq!(acme.rejected, 1);
        assert_eq!(acme.spent_steps, 10);
        server.shutdown();
    }

    #[test]
    fn disconnect_fires_the_inflight_cancel_token() {
        struct Blocker {
            cancelled: Arc<AtomicBool>,
        }
        impl Handler for Blocker {
            fn handle(&self, _req: &Request, cancel: &CancelToken) -> Response {
                let deadline = Instant::now() + Duration::from_secs(5);
                while !cancel.is_cancelled() {
                    if Instant::now() > deadline {
                        return Response::error("eval", "never cancelled");
                    }
                    thread::sleep(Duration::from_millis(5));
                }
                self.cancelled.store(true, Ordering::SeqCst);
                Response::error("resource", "cancelled")
            }
        }
        let cancelled = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(Blocker {
            cancelled: Arc::clone(&cancelled),
        });
        let server = Server::bind("127.0.0.1:0", handler, ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.send(&Request::eval(Lang::Calc, "block")).unwrap();
        thread::sleep(Duration::from_millis(50)); // let the request start
        drop(client); // disconnect mid-request
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cancelled.load(Ordering::SeqCst) && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(cancelled.load(Ordering::SeqCst), "token never fired");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_get_their_own_answers() {
        let (server, h) = echo_server(1, ServerConfig::default());
        let addr = server.local_addr();
        let threads: Vec<_> = (0..16)
            .map(|i| {
                thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for j in 0..10 {
                        let text = format!("client{i}-req{j}");
                        let resp = client.roundtrip(&Request::eval(Lang::Calc, &text)).unwrap();
                        assert_eq!(
                            resp.message.as_deref(),
                            Some(format!("echo: {text}").as_str())
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.calls.load(Ordering::SeqCst), 160);
        server.shutdown();
    }

    #[test]
    fn cancel_token_runs_hooks_registered_before_and_after_firing() {
        let token = CancelToken::new();
        let a = Arc::new(AtomicBool::new(false));
        let a2 = Arc::clone(&a);
        token.on_cancel(move || a2.store(true, Ordering::SeqCst));
        token.cancel();
        assert!(a.load(Ordering::SeqCst));
        let b = Arc::new(AtomicBool::new(false));
        let b2 = Arc::clone(&b);
        token.on_cancel(move || b2.store(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst), "late hooks fire immediately");
    }

    /// Accepts every subscribe; answers `Update` with a one-view delta.
    struct Viewy;

    impl Handler for Viewy {
        fn handle(&self, req: &Request, _cancel: &CancelToken) -> Response {
            match req.op {
                Op::Subscribe => Response::message(format!("subscribed to view {}", req.view)),
                Op::Unsubscribe => {
                    Response::message(format!("unsubscribed from view {}", req.view))
                }
                Op::Update => {
                    let mut resp = Response::message("applied 1 mutations");
                    resp.deltas = vec![DeltaOut {
                        view: "paths".to_string(),
                        added: vec![no_proto::RelationOut {
                            name: "tc".to_string(),
                            rows: vec![format!("('a', {})", req.text)],
                            rows_json: String::new(),
                        }],
                        removed: Vec::new(),
                    }];
                    resp
                }
                _ => Response::message("ok"),
            }
        }
    }

    fn sub_request(view: &str) -> Request {
        Request {
            op: Op::Subscribe,
            view: view.to_string(),
            ..Request::default()
        }
    }

    #[test]
    fn subscribers_get_pushed_deltas_from_other_connections() {
        let server = Server::bind("127.0.0.1:0", Arc::new(Viewy), ServerConfig::default()).unwrap();
        let mut watcher = Client::connect(server.local_addr()).unwrap();
        let mut mutator = Client::connect(server.local_addr()).unwrap();
        assert!(watcher.roundtrip(&sub_request("paths")).unwrap().ok);

        let update = Request {
            op: Op::Update,
            text: "'b'".to_string(),
            ..Request::default()
        };
        let reply = mutator.roundtrip(&update).unwrap();
        assert!(reply.ok);
        assert_eq!(reply.deltas.len(), 1);
        assert!(reply.event.is_none(), "a direct reply is not an event");

        // the mutator's reply arriving means the push is already sent
        let push = watcher.recv().unwrap();
        assert_eq!(push.event.as_deref(), Some("delta"));
        assert_eq!(push.deltas.len(), 1);
        assert_eq!(push.deltas[0].view, "paths");
        assert_eq!(push.deltas[0].added[0].rows, vec!["('a', 'b')".to_string()]);

        // unsubscribing stops the stream: the next thing the watcher
        // reads after another update must be its own stats reply
        assert!(
            watcher
                .roundtrip(&Request {
                    op: Op::Unsubscribe,
                    view: "paths".to_string(),
                    ..Request::default()
                })
                .unwrap()
                .ok
        );
        assert!(mutator.roundtrip(&update).unwrap().ok);
        let resp = watcher
            .roundtrip(&Request {
                op: Op::Stats,
                ..Request::default()
            })
            .unwrap();
        assert!(resp.event.is_none(), "push arrived after unsubscribe");
        assert!(resp.stats.is_some());
        server.shutdown();
    }

    #[test]
    fn mutators_do_not_get_their_own_deltas_pushed_back() {
        let server = Server::bind("127.0.0.1:0", Arc::new(Viewy), ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(client.roundtrip(&sub_request("paths")).unwrap().ok);
        // the reply carries the delta; no separate push line follows
        let reply = client
            .roundtrip(&Request {
                op: Op::Update,
                text: "'x'".to_string(),
                ..Request::default()
            })
            .unwrap();
        assert_eq!(reply.deltas.len(), 1);
        let resp = client
            .roundtrip(&Request {
                op: Op::Stats,
                ..Request::default()
            })
            .unwrap();
        assert!(resp.event.is_none(), "self-push would arrive before stats");
        assert!(resp.stats.is_some());
        server.shutdown();
    }

    #[test]
    fn disconnecting_a_subscriber_cleans_up_its_registration() {
        let server = Server::bind("127.0.0.1:0", Arc::new(Viewy), ServerConfig::default()).unwrap();
        let mut watcher = Client::connect(server.local_addr()).unwrap();
        assert!(watcher.roundtrip(&sub_request("paths")).unwrap().ok);
        drop(watcher); // disconnect with the subscription live
        let mut mutator = Client::connect(server.local_addr()).unwrap();
        // publishing into the dead subscription must not wedge anything
        for _ in 0..3 {
            assert!(
                mutator
                    .roundtrip(&Request {
                        op: Op::Update,
                        text: "'y'".to_string(),
                        ..Request::default()
                    })
                    .unwrap()
                    .ok
            );
        }
        server.shutdown();
    }

    #[test]
    fn percentiles_come_from_bucket_bounds() {
        let mut lat = [0u64; LAT_BOUNDS_US.len()];
        lat[2] = 98; // ≤ 200 µs
        lat[9] = 2; // ≤ 50 ms
        assert_eq!(Metrics::percentile(&lat, 0.50), 200);
        assert_eq!(Metrics::percentile(&lat, 0.99), 50_000);
        let empty = [0u64; LAT_BOUNDS_US.len()];
        assert_eq!(Metrics::percentile(&empty, 0.99), 0);
    }

    #[test]
    fn empty_tenant_is_the_anonymous_bucket() {
        let cfg = ServerConfig {
            tenant_capacity_steps: 10,
            tenant_refill_steps_per_sec: 1,
        };
        let (server, _h) = echo_server(10, cfg);
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(
            client
                .roundtrip(&Request::eval(Lang::Calc, "q"))
                .unwrap()
                .ok
        );
        let resp = client.roundtrip(&Request::eval(Lang::Calc, "q")).unwrap();
        assert_eq!(resp.error.as_ref().unwrap().kind, "rejected");
        let stats = client
            .roundtrip(&Request {
                op: Op::Stats,
                ..Request::default()
            })
            .unwrap();
        let anon = stats
            .stats
            .as_ref()
            .unwrap()
            .tenants
            .iter()
            .find(|t| t.tenant.is_empty())
            .unwrap();
        assert_eq!(anon.rejected, 1);
        server.shutdown();
    }
}
