//! Text syntax for Datalog¬ programs.
//!
//! ```text
//! rel tc(U, U).
//! tc(x, y) :- G(x, y).
//! tc(x, y) :- tc(x, z), G(z, y).
//! odd(x)   :- Node(x), !even(x), x != 'root', x in S.
//! ```
//!
//! Declarations `rel name(T1, …, Tn).` give IDB signatures (types in the
//! same syntax as CALC: `U`, `{T}`, `[T1,…,Tn]`); every other clause is a
//! rule. Constants are quoted atoms `'a'` (interned into the caller's
//! [`Universe`]) or set/tuple literals `{…}` / `[…]` over constants.
//! Comments run from `%` to end of line.

use crate::program::{DTerm, Literal, Program};
use no_object::{caret_excerpt, Span, Type, Universe, Value};
use std::fmt;

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl ParseError {
    /// The (point) span of the failure.
    pub fn span(&self) -> Span {
        Span::point(self.at)
    }

    /// Render the error with a caret excerpt of the offending line.
    /// `src` must be the source text the error came from.
    pub fn render(&self, src: &str) -> String {
        format!("{self}\n{}", caret_excerpt(src, self.span()))
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "datalog parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct P<'s, 'u> {
    src: &'s [u8],
    pos: usize,
    universe: &'u mut Universe,
    rule_spans: Vec<Span>,
}

impl<'s, 'u> P<'s, 'u> {
    fn err(&self, m: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: m.into(),
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self
                .src
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
            if self.src.get(self.pos) == Some(&b'%') {
                while self.src.get(self.pos).is_some_and(|&b| b != b'\n') {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn try_eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("non-UTF8 identifier"))?
            .to_string())
    }

    fn keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let end = self.pos + kw.len();
        if self.src.len() >= end
            && &self.src[self.pos..end] == kw.as_bytes()
            && !self
                .src
                .get(end)
                .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        match self.peek() {
            Some(b'U') => {
                // bare U (not a longer identifier)
                let id = self.ident()?;
                if id == "U" {
                    Ok(Type::Atom)
                } else {
                    Err(self.err(format!("expected type, found {id}")))
                }
            }
            Some(b'{') => {
                self.eat(b'{')?;
                let inner = self.ty()?;
                self.eat(b'}')?;
                Ok(Type::set(inner))
            }
            Some(b'[') => {
                self.eat(b'[')?;
                let mut comps = vec![self.ty()?];
                while self.try_eat(b',') {
                    comps.push(self.ty()?);
                }
                self.eat(b']')?;
                Ok(Type::tuple(comps))
            }
            _ => Err(self.err("expected type")),
        }
    }

    fn constant(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'\'') => {
                self.pos += 1;
                let start = self.pos;
                while self.src.get(self.pos).is_some_and(|&b| b != b'\'') {
                    self.pos += 1;
                }
                if self.src.get(self.pos) != Some(&b'\'') {
                    return Err(self.err("unterminated atom literal"));
                }
                let name = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("non-UTF8 atom"))?
                    .to_string();
                self.pos += 1;
                Ok(Value::Atom(self.universe.intern(&name)))
            }
            Some(b'{') => {
                self.eat(b'{')?;
                let mut elems = Vec::new();
                if self.peek() != Some(b'}') {
                    elems.push(self.constant()?);
                    while self.try_eat(b',') {
                        elems.push(self.constant()?);
                    }
                }
                self.eat(b'}')?;
                Ok(Value::set(elems))
            }
            Some(b'[') => {
                self.eat(b'[')?;
                let mut elems = vec![self.constant()?];
                while self.try_eat(b',') {
                    elems.push(self.constant()?);
                }
                self.eat(b']')?;
                Ok(Value::tuple(elems))
            }
            _ => Err(self.err("expected constant")),
        }
    }

    fn term(&mut self) -> Result<DTerm, ParseError> {
        match self.peek() {
            Some(b'\'') | Some(b'{') | Some(b'[') => Ok(DTerm::Const(self.constant()?)),
            _ => Ok(DTerm::Var(self.ident()?)),
        }
    }

    fn terms(&mut self) -> Result<Vec<DTerm>, ParseError> {
        self.eat(b'(')?;
        let mut out = Vec::new();
        if self.peek() != Some(b')') {
            out.push(self.term()?);
            while self.try_eat(b',') {
                out.push(self.term()?);
            }
        }
        self.eat(b')')?;
        Ok(out)
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        if self.try_eat(b'!') {
            let name = self.ident()?;
            let args = self.terms()?;
            return Ok(Literal::Neg(name, args));
        }
        // either rel(args) or a comparison starting with a term
        let save = self.pos;
        if let Ok(name) = self.ident() {
            if self.peek() == Some(b'(') {
                let args = self.terms()?;
                return Ok(Literal::Pos(name, args));
            }
            self.pos = save;
        } else {
            self.pos = save;
        }
        let lhs = self.term()?;
        self.skip_ws();
        if self.try_eat(b'=') {
            return Ok(Literal::Eq(lhs, self.term()?));
        }
        if self.src.get(self.pos) == Some(&b'!') && self.src.get(self.pos + 1) == Some(&b'=') {
            self.pos += 2;
            return Ok(Literal::Neq(lhs, self.term()?));
        }
        if self.keyword("notin") {
            return Ok(Literal::NotIn(lhs, self.term()?));
        }
        if self.keyword("in") {
            return Ok(Literal::In(lhs, self.term()?));
        }
        Err(self.err("expected comparison or relation literal"))
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        loop {
            if self.peek().is_none() {
                return Ok(program);
            }
            if self.keyword("rel") {
                let name = self.ident()?;
                self.eat(b'(')?;
                let mut types = vec![self.ty()?];
                while self.try_eat(b',') {
                    types.push(self.ty()?);
                }
                self.eat(b')')?;
                self.eat(b'.')?;
                program.declare(name, types);
                continue;
            }
            // rule: head(args) :- body .   or a fact: head(args).
            self.skip_ws();
            let head_at = self.pos;
            let head = self.ident()?;
            self.rule_spans.push(Span::new(head_at, self.pos));
            let head_args = self.terms()?;
            let mut body = Vec::new();
            self.skip_ws();
            if self.src.get(self.pos) == Some(&b':') && self.src.get(self.pos + 1) == Some(&b'-') {
                self.pos += 2;
                body.push(self.literal()?);
                while self.try_eat(b',') {
                    body.push(self.literal()?);
                }
            }
            self.eat(b'.')?;
            program.rule(head, head_args, body);
        }
    }
}

/// Parse a Datalog program, interning atom constants into `universe`.
pub fn parse_program(src: &str, universe: &mut Universe) -> Result<Program, ParseError> {
    parse_program_spanned(src, universe).map(|(p, _)| p)
}

/// Like [`parse_program`], additionally returning the span of each rule's
/// head identifier, in rule order (one entry per entry of
/// `Program::rules`). Declarations carry no span.
pub fn parse_program_spanned(
    src: &str,
    universe: &mut Universe,
) -> Result<(Program, Vec<Span>), ParseError> {
    let mut p = P {
        src: src.as_bytes(),
        pos: 0,
        universe,
        rule_spans: Vec::new(),
    };
    let program = p.program()?;
    Ok((program, p.rule_spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Strategy};
    use no_object::{Instance, RelationSchema, Schema};

    #[test]
    fn tc_program_parses_and_runs() {
        let mut u = Universe::new();
        let p = parse_program(
            "% transitive closure\n\
             rel tc(U, U).\n\
             tc(x, y) :- G(x, y).\n\
             tc(x, y) :- tc(x, z), G(z, y).\n",
            &mut u,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let mut i = Instance::empty(schema);
        let (a, b, c) = (u.intern("a"), u.intern("b"), u.intern("c"));
        i.insert("G", vec![Value::Atom(a), Value::Atom(b)]);
        i.insert("G", vec![Value::Atom(b), Value::Atom(c)]);
        let (idb, _) = eval(&p, &i, Strategy::SemiNaive).unwrap();
        assert_eq!(idb["tc"].len(), 3);
    }

    #[test]
    fn declarations_with_nested_types() {
        let mut u = Universe::new();
        let p = parse_program("rel r([U,{U}], {[U,U]}).", &mut u).unwrap();
        let sig = &p.idb["r"];
        assert_eq!(sig[0].to_string(), "[U,{U}]");
        assert_eq!(sig[1].to_string(), "{[U,U]}");
    }

    #[test]
    fn all_literal_forms() {
        let mut u = Universe::new();
        let p = parse_program(
            "rel r(U).\n\
             r(x) :- P(x, S), x in S, x notin T, !Q(x), x != 'bob', y = x, x = {'a','b'}.",
            &mut u,
        )
        .unwrap();
        let body = &p.rules[0].body;
        assert_eq!(body.len(), 7);
        assert!(matches!(body[0], Literal::Pos(..)));
        assert!(matches!(body[1], Literal::In(..)));
        assert!(matches!(body[2], Literal::NotIn(..)));
        assert!(matches!(body[3], Literal::Neg(..)));
        assert!(matches!(body[4], Literal::Neq(..)));
        assert!(matches!(body[5], Literal::Eq(..)));
        assert!(matches!(body[6], Literal::Eq(..)));
        assert_eq!(u.len(), 3); // bob, a, b
    }

    #[test]
    fn facts_parse_as_bodyless_rules() {
        let mut u = Universe::new();
        let p = parse_program("rel f(U).\nf('a').\nf('b').", &mut u).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules.iter().all(|r| r.body.is_empty()));
    }

    #[test]
    fn display_reparses() {
        let mut u = Universe::new();
        let p = parse_program(
            "rel tc(U, U).\n\
             tc(x, y) :- G(x, y).\n\
             tc(x, y) :- tc(x, z), G(z, y), x != y.",
            &mut u,
        )
        .unwrap();
        let printed = p.to_string();
        let back = parse_program(&printed, &mut u).unwrap();
        assert_eq!(back.rules, p.rules);
        assert_eq!(back.idb, p.idb);
    }

    #[test]
    fn errors_are_located() {
        let mut u = Universe::new();
        let e = parse_program("rel r(U)\nr(x) :- G(x).", &mut u).unwrap_err();
        assert!(e.at >= 8, "at = {}", e.at); // missing '.' after declaration
        assert!(parse_program("r(x) :- .", &mut u).is_err());
        assert!(parse_program("r(x :- G(x).", &mut u).is_err());
        assert!(parse_program("rel r(V).", &mut u).is_err());
    }

    #[test]
    fn errors_render_with_a_caret_excerpt() {
        let mut u = Universe::new();
        let src = "rel r(U).\nr(x :- G(x).";
        let e = parse_program(src, &mut u).unwrap_err();
        let rendered = e.render(src);
        assert!(rendered.contains("datalog parse error at byte"));
        assert!(rendered.contains("line 2"), "rendered:\n{rendered}");
        assert!(rendered.contains("r(x :- G(x)."), "rendered:\n{rendered}");
        assert!(rendered.contains('^'), "rendered:\n{rendered}");
    }

    #[test]
    fn comments_and_whitespace() {
        let mut u = Universe::new();
        let p = parse_program(
            "% leading comment\n  rel r(U). % trailing\n\n r(x) :- G(x, x). % done",
            &mut u,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 1);
    }
}
