//! Simultaneous fixpoints: translating **multi-IDB** Datalog¬ programs to
//! a single `CALC + IFP` fixpoint.
//!
//! [`crate::translate::to_ifp`] handles one inductively defined relation;
//! the general `inf-Datalog¬ ≡ CALC + IFP` correspondence of Section 3
//! needs *simultaneous* induction over several relations, folded into one
//! relation `S` with
//!
//! * `2·⌈log₂ k⌉` atom-typed **tag columns**: relation `j` is encoded by
//!   the equality pattern of consecutive tag pairs (`pair b equal` ⇔ bit
//!   `b` of `j` is 1) — the classic generic tagging device, since generic
//!   queries have no constants to tag with;
//! * one **value segment per IDB relation**, concatenated; a row carries
//!   real values only in its own relation's segment.
//!
//! Padding the foreign segments must not blow up the fixpoint, so pad
//! columns are pinned: set-typed components to the constant `{}`,
//! atom-typed components left free (a polynomial `n^p` duplication factor,
//! harmless). The decoder projects a relation's segment from the rows
//! matching its tag pattern.
//!
//! The translation is validated against the Datalog engine on mutually
//! recursive programs (even/odd reachability) in the tests.

use crate::eval::Idb;
use crate::program::{DTerm, Literal, Program, Rule};
use crate::translate::TranslateError;
use no_core::ast::{FixOp, Fixpoint, Formula, Term};
use no_core::error::EvalError;
use no_core::eval::Evaluator;
use no_object::{AtomOrder, Governor, Instance, Relation, Type, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A multi-IDB translation: the fixpoint plus the layout needed to embed
/// literals and decode results.
pub struct Simultaneous {
    /// The single simultaneous fixpoint.
    pub fixpoint: Arc<Fixpoint>,
    /// Number of tag bits (`2·tag_bits` leading atom columns).
    pub tag_bits: usize,
    /// Per relation: its index (tag pattern) and `(offset, arity)` of its
    /// value segment within the combined columns (offsets count from the
    /// first value column).
    pub layout: BTreeMap<String, (usize, (usize, usize))>,
}

fn bit(j: usize, b: usize) -> bool {
    (j >> b) & 1 == 1
}

impl Simultaneous {
    /// The tag-pattern constraint for relation index `j` over the given
    /// tag-column terms (pairs `(t_{2b}, t_{2b+1})`).
    fn tag_pattern(&self, j: usize, tags: &[Term]) -> Formula {
        let mut parts = Vec::with_capacity(self.tag_bits);
        for b in 0..self.tag_bits {
            let eq = Formula::Eq(tags[2 * b].clone(), tags[2 * b + 1].clone());
            parts.push(if bit(j, b) { eq } else { eq.not() });
        }
        Formula::and(parts)
    }

    /// Decode one IDB relation from the computed combined relation.
    pub fn decode(&self, rel_name: &str, combined: &Relation) -> Option<Relation> {
        let &(j, (offset, arity)) = self.layout.get(rel_name)?;
        let tagw = 2 * self.tag_bits;
        let mut out = Relation::new();
        for row in combined.iter() {
            let tags_match = (0..self.tag_bits).all(|b| {
                let eq = row[2 * b] == row[2 * b + 1];
                eq == bit(j, b)
            });
            if tags_match {
                out.insert(row[tagw + offset..tagw + offset + arity].to_vec());
            }
        }
        Some(out)
    }
}

/// Constraints pinning a pad variable of type `ty` to a canonical shape:
/// set components equal `{}`, atoms left free.
fn pad_constraints(term: Term, ty: &Type, out: &mut Vec<Formula>) {
    match ty {
        Type::Atom => {}
        Type::Set(_) => out.push(Formula::Eq(term, Term::Const(Value::empty_set()))),
        Type::Tuple(ts) => {
            for (i, t) in ts.iter().enumerate() {
                pad_constraints(term.clone().proj(i + 1), t, out);
            }
        }
    }
}

/// Translate a (possibly multi-IDB) program into one simultaneous `IFP`
/// fixpoint. `body_var_types` supplies types for non-head body variables
/// (defaulting to `U`).
pub fn to_simultaneous_ifp(
    program: &Program,
    body_var_types: &[(&str, Type)],
) -> Result<Simultaneous, TranslateError> {
    let idb_names: Vec<&String> = program.idb.keys().collect();
    if idb_names.is_empty() {
        return Err(TranslateError::NoIdb);
    }
    let k = idb_names.len();
    let tag_bits = if k <= 1 {
        0
    } else {
        (usize::BITS - (k - 1).leading_zeros()) as usize
    };
    // layout: offsets within the value columns
    let mut layout: BTreeMap<String, (usize, (usize, usize))> = BTreeMap::new();
    let mut value_types: Vec<Type> = Vec::new();
    for (j, name) in idb_names.iter().enumerate() {
        let sig = &program.idb[*name];
        layout.insert((*name).clone(), (j, (value_types.len(), sig.len())));
        value_types.extend(sig.iter().cloned());
    }
    let sim_stub = Simultaneous {
        fixpoint: Arc::new(Fixpoint {
            op: FixOp::Ifp,
            rel: "SIM".into(),
            vars: vec![],
            body: Box::new(Formula::And(vec![])),
        }),
        tag_bits,
        layout: layout.clone(),
    };

    // fixpoint columns: tags then value segments; names are reserved
    let mut columns: Vec<(String, Type)> = Vec::new();
    for b in 0..2 * tag_bits {
        columns.push((format!("_tag{b}"), Type::Atom));
    }
    for (i, t) in value_types.iter().enumerate() {
        columns.push((format!("_v{i}"), t.clone()));
    }
    let col_term = |i: usize| -> Term { Term::var(columns[i].0.clone()) };
    let tag_terms: Vec<Term> = (0..2 * tag_bits).map(col_term).collect();

    // translate an IDB literal occurrence into a membership formula over
    // SIM: existential fresh tags + pinned pads + args in the segment
    let mut fresh_counter = 0usize;
    let embed_literal = |name: &str, args: &[DTerm], fresh_counter: &mut usize| -> Formula {
        let (j, (offset, arity)) = layout[name];
        let mut sim_args: Vec<Term> = Vec::with_capacity(2 * tag_bits + value_types.len());
        let mut quantified: Vec<(String, Type)> = Vec::new();
        let mut constraints: Vec<Formula> = Vec::new();
        // fresh tag variables
        let mut my_tags = Vec::new();
        for _ in 0..2 * tag_bits {
            *fresh_counter += 1;
            let v = format!("_s{fresh_counter}");
            quantified.push((v.clone(), Type::Atom));
            my_tags.push(Term::var(v.clone()));
            sim_args.push(Term::var(v));
        }
        if tag_bits > 0 {
            constraints.push(sim_stub.tag_pattern(j, &my_tags));
        }
        // value columns: own segment ← args; others ← pinned pads
        for (i, ty) in value_types.iter().enumerate() {
            if i >= offset && i < offset + arity {
                let arg = &args[i - offset];
                sim_args.push(match arg {
                    DTerm::Var(v) => Term::var(v.clone()),
                    DTerm::Const(c) => Term::Const(c.clone()),
                });
            } else {
                *fresh_counter += 1;
                let v = format!("_s{fresh_counter}");
                quantified.push((v.clone(), ty.clone()));
                pad_constraints(Term::var(v.clone()), ty, &mut constraints);
                sim_args.push(Term::var(v));
            }
        }
        let mut f =
            Formula::and(std::iter::once(Formula::Rel("SIM".into(), sim_args)).chain(constraints));
        for (v, t) in quantified.into_iter().rev() {
            f = Formula::exists(v, t, f);
        }
        f
    };

    // translate each rule into a disjunct over the combined columns
    let mut disjuncts: Vec<Formula> = Vec::new();
    for rule in &program.rules {
        let (j, (offset, arity)) = layout[&rule.head];
        let mut parts: Vec<Formula> = Vec::new();
        // tag pattern on the column variables
        if tag_bits > 0 {
            parts.push(sim_stub.tag_pattern(j, &tag_terms));
        }
        // bind the head segment columns to the head argument terms
        for (pos, arg) in rule.head_args.iter().enumerate() {
            let col = col_term(2 * tag_bits + offset + pos);
            let t = match arg {
                DTerm::Var(v) => Term::var(v.clone()),
                DTerm::Const(c) => Term::Const(c.clone()),
            };
            parts.push(Formula::Eq(col, t));
        }
        // pin the pad columns
        for (i, ty) in value_types.iter().enumerate() {
            if i < offset || i >= offset + arity {
                pad_constraints(col_term(2 * tag_bits + i), ty, &mut parts);
            }
        }
        // body literals: EDB stays, IDB embeds
        for lit in &rule.body {
            let f = match lit {
                Literal::Pos(name, args) if layout.contains_key(name) => {
                    embed_literal(name, args, &mut fresh_counter)
                }
                Literal::Neg(name, args) if layout.contains_key(name) => {
                    embed_literal(name, args, &mut fresh_counter).not()
                }
                other => crate::translate::literal_formula(other),
            };
            parts.push(f);
        }
        // existentially close rule variables that are not column variables
        let mut body = Formula::and(parts);
        let head_vars: Vec<&str> = rule
            .head_args
            .iter()
            .filter_map(|t| match t {
                DTerm::Var(v) => Some(v.as_str()),
                DTerm::Const(_) => None,
            })
            .collect();
        let mut extra: Vec<String> = rule_body_vars(rule)
            .into_iter()
            .filter(|v| !head_vars.contains(&v.as_str()))
            .collect();
        extra.sort();
        extra.dedup();
        for v in extra.into_iter().rev() {
            let ty = body_var_types
                .iter()
                .find(|(n, _)| *n == v)
                .map(|(_, t)| t.clone())
                .unwrap_or(Type::Atom);
            body = Formula::exists(v, ty, body);
        }
        // substitute head variables by the column variables: done above via
        // equality conjuncts; now close them existentially too
        for v in head_vars.into_iter().rev() {
            let ty = lookup_head_type(program, rule, v).unwrap_or(Type::Atom);
            body = Formula::exists(v.to_string(), ty, body);
        }
        disjuncts.push(body);
    }

    let fixpoint = Arc::new(Fixpoint {
        op: FixOp::Ifp,
        rel: "SIM".into(),
        vars: columns,
        body: Box::new(Formula::or(disjuncts)),
    });
    Ok(Simultaneous {
        fixpoint,
        tag_bits,
        layout,
    })
}

/// Failures of the one-shot simultaneous-fixpoint evaluation strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvalError {
    /// The program could not be translated into one fixpoint.
    Translate(TranslateError),
    /// The CALC evaluator failed (including governor budget exhaustion,
    /// surfaced as [`EvalError::Resource`]).
    Eval(EvalError),
}

impl fmt::Display for SimEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimEvalError::Translate(e) => write!(f, "{e}"),
            SimEvalError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimEvalError {}

/// The fourth evaluation strategy: translate the whole program into one
/// simultaneous `IFP` fixpoint and run it on the CALC evaluator under the
/// given [`Governor`] (sharing its allowance with any surrounding query),
/// then decode every IDB relation.
pub fn eval_simultaneous(
    program: &Program,
    body_var_types: &[(&str, Type)],
    instance: &Instance,
    order: AtomOrder,
    governor: &Governor,
) -> Result<Idb, SimEvalError> {
    eval_simultaneous_pooled(
        program,
        body_var_types,
        instance,
        order,
        governor,
        &minipool::ThreadPool::sequential(),
    )
}

/// [`eval_simultaneous`] with an explicit [`minipool::ThreadPool`]: the
/// single combined fixpoint's stage enumeration fans out over the pool via
/// the CALC evaluator's parallel quantifier driver.
pub fn eval_simultaneous_pooled(
    program: &Program,
    body_var_types: &[(&str, Type)],
    instance: &Instance,
    order: AtomOrder,
    governor: &Governor,
    pool: &minipool::ThreadPool,
) -> Result<Idb, SimEvalError> {
    let sim = to_simultaneous_ifp(program, body_var_types).map_err(SimEvalError::Translate)?;
    let mut ev =
        Evaluator::with_governor(instance, order, governor.clone()).with_pool(pool.clone());
    let combined = ev
        .eval_fixpoint(&sim.fixpoint)
        .map_err(SimEvalError::Eval)?;
    Ok(program
        .idb
        .keys()
        .map(|name| {
            let rel = sim
                .decode(name, &combined)
                .expect("layout covers every declared IDB");
            (name.clone(), rel)
        })
        .collect())
}

fn rule_body_vars(rule: &Rule) -> Vec<String> {
    let mut out = Vec::new();
    let mut note = |t: &DTerm| {
        if let DTerm::Var(v) = t {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
    };
    for l in &rule.body {
        match l {
            Literal::Pos(_, args) | Literal::Neg(_, args) => args.iter().for_each(&mut note),
            Literal::Eq(a, b) | Literal::Neq(a, b) | Literal::In(a, b) | Literal::NotIn(a, b) => {
                note(a);
                note(b);
            }
        }
    }
    out
}

fn lookup_head_type(program: &Program, rule: &Rule, var: &str) -> Option<Type> {
    let sig = program.idb.get(&rule.head)?;
    rule.head_args
        .iter()
        .zip(sig)
        .find_map(|(arg, ty)| matches!(arg, DTerm::Var(v) if v == var).then(|| ty.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Strategy};
    use crate::program::Program;
    use no_core::error::EvalConfig;
    use no_core::eval::Evaluator;
    use no_object::{AtomOrder, Instance, RelationSchema, Schema, Universe};

    fn graph(edges: &[(&str, &str)]) -> (Universe, Instance) {
        let mut u = Universe::new();
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let mut i = Instance::empty(schema);
        for (a, b) in edges {
            let (a, b) = (u.intern(a), u.intern(b));
            i.insert("G", vec![Value::Atom(a), Value::Atom(b)]);
        }
        (u, i)
    }

    /// even/odd path lengths from a source — mutually recursive IDBs.
    fn even_odd_program(source: &Value) -> Program {
        let mut p = Program::new();
        p.declare("even", vec![Type::Atom]);
        p.declare("odd", vec![Type::Atom]);
        p.rule(
            "even",
            vec![DTerm::var("x")],
            vec![Literal::Eq(DTerm::var("x"), DTerm::Const(source.clone()))],
        );
        p.rule(
            "odd",
            vec![DTerm::var("y")],
            vec![
                Literal::Pos("even".into(), vec![DTerm::var("x")]),
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("y")]),
            ],
        );
        p.rule(
            "even",
            vec![DTerm::var("y")],
            vec![
                Literal::Pos("odd".into(), vec![DTerm::var("x")]),
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("y")]),
            ],
        );
        p
    }

    fn run_sim(sim: &Simultaneous, instance: &Instance) -> Relation {
        let order = AtomOrder::new(instance.atoms().into_iter().collect());
        let mut ev = Evaluator::new(instance, order, EvalConfig::default());
        ev.eval_fixpoint(&sim.fixpoint).unwrap().as_ref().clone()
    }

    #[test]
    fn even_odd_agrees_with_engine() {
        let (u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "b")]);
        let src = Value::Atom(u.get("a").unwrap());
        let p = even_odd_program(&src);
        let sim = to_simultaneous_ifp(&p, &[]).unwrap();
        assert_eq!(sim.tag_bits, 1);
        let combined = run_sim(&sim, &i);
        let (idb, _) = eval(&p, &i, Strategy::Naive).unwrap();
        for rel in ["even", "odd"] {
            let decoded = sim.decode(rel, &combined).unwrap();
            assert_eq!(decoded, idb[rel], "relation {rel}");
        }
    }

    #[test]
    fn single_idb_degenerates_to_no_tags() {
        let (_u, i) = graph(&[("a", "b"), ("b", "c")]);
        let mut p = Program::new();
        p.declare("tc", vec![Type::Atom, Type::Atom]);
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("tc".into(), vec![DTerm::var("x"), DTerm::var("z")]),
                Literal::Pos("G".into(), vec![DTerm::var("z"), DTerm::var("y")]),
            ],
        );
        let sim = to_simultaneous_ifp(&p, &[("z", Type::Atom)]).unwrap();
        assert_eq!(sim.tag_bits, 0);
        let combined = run_sim(&sim, &i);
        let (idb, _) = eval(&p, &i, Strategy::SemiNaive).unwrap();
        assert_eq!(sim.decode("tc", &combined).unwrap(), idb["tc"]);
    }

    #[test]
    fn eval_simultaneous_matches_naive_and_respects_budget() {
        use no_object::{BudgetKind, Limits};
        let (u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "b")]);
        let src = Value::Atom(u.get("a").unwrap());
        let p = even_odd_program(&src);
        let order = AtomOrder::new(i.atoms().into_iter().collect());

        // Unlimited governor: agrees with the naive strategy.
        let idb = eval_simultaneous(&p, &[], &i, order.clone(), &Governor::unlimited()).unwrap();
        let (naive, _) = eval(&p, &i, Strategy::Naive).unwrap();
        for rel in ["even", "odd"] {
            assert_eq!(idb[rel], naive[rel], "relation {rel}");
        }

        // Tight step fuel: the shared governor trips inside the CALC engine
        // and the error surfaces structurally instead of panicking.
        let g = Governor::new(Limits {
            max_steps: 5,
            ..Limits::unlimited()
        });
        match eval_simultaneous(&p, &[], &i, order.clone(), &g) {
            Err(SimEvalError::Eval(EvalError::Resource(e))) => {
                assert_eq!(e.budget, BudgetKind::Steps);
                assert_eq!(e.limit, 5);
            }
            other => panic!("expected step-budget trip, got {other:?}"),
        }

        // Cancellation is honoured too.
        let g = Governor::unlimited();
        g.cancel();
        match eval_simultaneous(&p, &[], &i, order, &g) {
            Err(SimEvalError::Eval(EvalError::Resource(e))) => {
                assert_eq!(e.budget, BudgetKind::Cancelled);
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn set_typed_segments_pad_with_empty_set() {
        // IDBs of different column types: groups({U}) and marks(U)
        let su = Type::set(Type::Atom);
        let schema = Schema::from_relations([RelationSchema::new("D", vec![su.clone()])]);
        let mut u = Universe::new();
        let (a, b) = (u.intern("a"), u.intern("b"));
        let mut i = Instance::empty(schema);
        i.insert("D", vec![Value::set([Value::Atom(a), Value::Atom(b)])]);
        i.insert("D", vec![Value::set([Value::Atom(a)])]);
        let mut p = Program::new();
        p.declare("groups", vec![su.clone()]);
        p.declare("marks", vec![Type::Atom]);
        p.rule(
            "groups",
            vec![DTerm::var("s")],
            vec![Literal::Pos("D".into(), vec![DTerm::var("s")])],
        );
        p.rule(
            "marks",
            vec![DTerm::var("x")],
            vec![
                Literal::Pos("groups".into(), vec![DTerm::var("s")]),
                Literal::In(DTerm::var("x"), DTerm::var("s")),
            ],
        );
        let sim = to_simultaneous_ifp(&p, &[("s", su)]).unwrap();
        let combined = run_sim(&sim, &i);
        let (idb, _) = eval(&p, &i, Strategy::Naive).unwrap();
        assert_eq!(sim.decode("groups", &combined).unwrap(), idb["groups"]);
        assert_eq!(sim.decode("marks", &combined).unwrap(), idb["marks"]);
        assert_eq!(idb["marks"].len(), 2);
    }

    #[test]
    fn negation_across_idbs() {
        // nodes reachable at both even and odd distances. Three IDBs need
        // 2 tag bits = 4 extra atom columns, so the candidate space grows
        // as n^7 — keep the graph tiny (the even/odd test covers n = 4).
        let (u, i) = graph(&[("a", "b"), ("b", "a")]);
        let src = Value::Atom(u.get("a").unwrap());
        let mut p = even_odd_program(&src);
        p.declare("both", vec![Type::Atom]);
        p.rule(
            "both",
            vec![DTerm::var("x")],
            vec![
                Literal::Pos("even".into(), vec![DTerm::var("x")]),
                Literal::Pos("odd".into(), vec![DTerm::var("x")]),
            ],
        );
        let sim = to_simultaneous_ifp(&p, &[]).unwrap();
        assert_eq!(sim.tag_bits, 2); // 3 relations → 2 bits
        let combined = run_sim(&sim, &i);
        let (idb, _) = eval(&p, &i, Strategy::Naive).unwrap();
        for rel in ["even", "odd", "both"] {
            assert_eq!(
                sim.decode(rel, &combined).unwrap(),
                idb[rel],
                "relation {rel}"
            );
        }
    }

    #[test]
    fn no_idb_rejected() {
        let p = Program::new();
        assert!(matches!(
            to_simultaneous_ifp(&p, &[]),
            Err(TranslateError::NoIdb)
        ));
    }
}
