//! Datalog programs over complex objects.
//!
//! Section 3 of the paper relates the fixpoint calculi to deductive
//! languages: "inf-Datalog¬ₖᵢ [...] is equivalent to CALC_i^k + IFP". This
//! crate provides that deductive side: rules with positive and negative
//! relation literals, equality, and membership over complex-object terms,
//! evaluated with inflationary semantics.

use no_object::{ResourceError, Schema, Type, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A Datalog term: a variable or a complex-object constant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DTerm {
    /// A variable.
    Var(String),
    /// A constant value.
    Const(Value),
}

impl DTerm {
    /// Convenience: a variable.
    pub fn var(name: impl Into<String>) -> DTerm {
        DTerm::Var(name.into())
    }

    fn var_name(&self) -> Option<&str> {
        match self {
            DTerm::Var(v) => Some(v),
            DTerm::Const(_) => None,
        }
    }
}

/// A body literal.
#[derive(Clone, PartialEq, Debug)]
pub enum Literal {
    /// `R(t1,…,tn)` — positive relation atom (EDB or IDB).
    Pos(String, Vec<DTerm>),
    /// `¬R(t1,…,tn)` — negated relation atom, inflationary semantics.
    Neg(String, Vec<DTerm>),
    /// `t1 = t2`.
    Eq(DTerm, DTerm),
    /// `t1 ≠ t2`.
    Neq(DTerm, DTerm),
    /// `t1 ∈ t2` — complex-object membership.
    In(DTerm, DTerm),
    /// `t1 ∉ t2`.
    NotIn(DTerm, DTerm),
}

/// One rule `head(args) :- body`.
#[derive(Clone, PartialEq, Debug)]
pub struct Rule {
    /// Head relation name (must be an IDB relation).
    pub head: String,
    /// Head argument terms.
    pub head_args: Vec<DTerm>,
    /// Body literals, evaluated left to right.
    pub body: Vec<Literal>,
}

/// A program: IDB declarations plus rules. EDB relations come from the
/// instance schema at evaluation time.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// IDB relation signatures.
    pub idb: BTreeMap<String, Vec<Type>>,
    /// The rules.
    pub rules: Vec<Rule>,
}

/// Errors in program construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A head relation is not declared as IDB.
    UndeclaredHead(String),
    /// A rule head or literal has the wrong number of arguments.
    ArityMismatch {
        /// The relation.
        rel: String,
        /// Declared arity.
        expected: usize,
        /// Found arity.
        found: usize,
    },
    /// A body relation is neither EDB (in the schema) nor IDB.
    UnknownRelation(String),
    /// A rule is unsafe: a variable in the head, a negated literal, or a
    /// comparison cannot be bound by the positive body.
    Unsafe {
        /// The offending rule (display form).
        rule: String,
        /// The unbound variable.
        var: String,
    },
    /// A rule wrote an EDB relation.
    HeadIsEdb(String),
    /// A governor budget (step fuel, fixpoint rounds, memory, deadline, or
    /// cancellation) was exhausted during evaluation.
    Resource(ResourceError),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UndeclaredHead(r) => write!(f, "head relation {r} not declared"),
            ProgramError::ArityMismatch {
                rel,
                expected,
                found,
            } => {
                write!(
                    f,
                    "relation {rel}: declared arity {expected}, used with {found}"
                )
            }
            ProgramError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            ProgramError::Unsafe { rule, var } => {
                write!(
                    f,
                    "unsafe rule {rule}: variable {var} is not bound by the positive body"
                )
            }
            ProgramError::HeadIsEdb(r) => write!(f, "rule head {r} is an EDB relation"),
            ProgramError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl From<ResourceError> for ProgramError {
    fn from(e: ResourceError) -> Self {
        ProgramError::Resource(e)
    }
}

impl Program {
    /// Create an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Declare an IDB relation.
    pub fn declare(&mut self, name: impl Into<String>, types: Vec<Type>) -> &mut Self {
        self.idb.insert(name.into(), types);
        self
    }

    /// Add a rule.
    pub fn rule(
        &mut self,
        head: impl Into<String>,
        head_args: Vec<DTerm>,
        body: Vec<Literal>,
    ) -> &mut Self {
        self.rules.push(Rule {
            head: head.into(),
            head_args,
            body,
        });
        self
    }

    /// Validate the program against an EDB schema: declared heads, known
    /// relations, arities, and rule safety (every head/negated/compared
    /// variable bound by a positive literal, an equality with a constant,
    /// or a membership in a bound set).
    pub fn validate(&self, edb: &Schema) -> Result<(), ProgramError> {
        let arity_of = |name: &str| -> Option<usize> {
            self.idb
                .get(name)
                .map(Vec::len)
                .or_else(|| edb.get(name).map(|r| r.arity()))
        };
        for rule in &self.rules {
            if edb.get(&rule.head).is_some() {
                return Err(ProgramError::HeadIsEdb(rule.head.clone()));
            }
            let head_arity = self
                .idb
                .get(&rule.head)
                .ok_or_else(|| ProgramError::UndeclaredHead(rule.head.clone()))?
                .len();
            if head_arity != rule.head_args.len() {
                return Err(ProgramError::ArityMismatch {
                    rel: rule.head.clone(),
                    expected: head_arity,
                    found: rule.head_args.len(),
                });
            }
            for lit in &rule.body {
                if let Literal::Pos(name, args) | Literal::Neg(name, args) = lit {
                    let arity = arity_of(name)
                        .ok_or_else(|| ProgramError::UnknownRelation(name.clone()))?;
                    if arity != args.len() {
                        return Err(ProgramError::ArityMismatch {
                            rel: name.clone(),
                            expected: arity,
                            found: args.len(),
                        });
                    }
                }
            }
            // safety: saturate bound variables
            let mut bound: BTreeSet<&str> = BTreeSet::new();
            loop {
                let before = bound.len();
                for lit in &rule.body {
                    match lit {
                        Literal::Pos(_, args) => {
                            for a in args {
                                if let Some(v) = a.var_name() {
                                    bound.insert(v);
                                }
                            }
                        }
                        Literal::Eq(a, b) => match (a.var_name(), b.var_name()) {
                            (Some(v), None) | (None, Some(v)) => {
                                bound.insert(v);
                            }
                            (Some(v), Some(w)) => {
                                if bound.contains(v) {
                                    bound.insert(w);
                                }
                                if bound.contains(w) {
                                    bound.insert(v);
                                }
                            }
                            (None, None) => {}
                        },
                        Literal::In(a, b) => {
                            if let (Some(v), bset) = (a.var_name(), b.var_name()) {
                                let b_bound = bset.is_none_or(|w| bound.contains(w));
                                if b_bound {
                                    bound.insert(v);
                                }
                            }
                        }
                        _ => {}
                    }
                }
                if bound.len() == before {
                    break;
                }
            }
            let mut need: Vec<&str> = Vec::new();
            for a in &rule.head_args {
                if let Some(v) = a.var_name() {
                    need.push(v);
                }
            }
            for lit in &rule.body {
                match lit {
                    Literal::Neg(_, args) => need.extend(args.iter().filter_map(DTerm::var_name)),
                    Literal::Neq(a, b) | Literal::NotIn(a, b) => {
                        need.extend([a, b].into_iter().filter_map(DTerm::var_name))
                    }
                    Literal::In(_, b) => need.extend(b.var_name()),
                    _ => {}
                }
            }
            for v in need {
                if !bound.contains(v) {
                    return Err(ProgramError::Unsafe {
                        rule: rule.to_string(),
                        var: v.to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for DTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DTerm::Var(v) => write!(f, "{v}"),
            DTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args = |args: &[DTerm]| -> String {
            args.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        };
        match self {
            Literal::Pos(r, a) => write!(f, "{r}({})", args(a)),
            Literal::Neg(r, a) => write!(f, "!{r}({})", args(a)),
            Literal::Eq(a, b) => write!(f, "{a} = {b}"),
            Literal::Neq(a, b) => write!(f, "{a} != {b}"),
            Literal::In(a, b) => write!(f, "{a} in {b}"),
            Literal::NotIn(a, b) => write!(f, "{a} notin {b}"),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head)?;
        for (i, a) in self.head_args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ") :- ")?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, types) in &self.idb {
            let cols: Vec<String> = types.iter().map(ToString::to_string).collect();
            writeln!(f, "rel {name}({}).", cols.join(", "))?;
        }
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::RelationSchema;

    fn edb() -> Schema {
        Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])])
    }

    fn tc_program() -> Program {
        let mut p = Program::new();
        p.declare("tc", vec![Type::Atom, Type::Atom]);
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("tc".into(), vec![DTerm::var("x"), DTerm::var("z")]),
                Literal::Pos("G".into(), vec![DTerm::var("z"), DTerm::var("y")]),
            ],
        );
        p
    }

    #[test]
    fn tc_program_validates() {
        assert_eq!(tc_program().validate(&edb()), Ok(()));
    }

    #[test]
    fn undeclared_head_rejected() {
        let mut p = Program::new();
        p.rule("oops", vec![DTerm::var("x")], vec![]);
        assert!(matches!(
            p.validate(&edb()),
            Err(ProgramError::UndeclaredHead(_))
        ));
    }

    #[test]
    fn edb_head_rejected() {
        let mut p = Program::new();
        p.declare("G", vec![Type::Atom, Type::Atom]);
        p.rule(
            "G",
            vec![DTerm::var("x"), DTerm::var("x")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("x")],
            )],
        );
        assert!(matches!(
            p.validate(&edb()),
            Err(ProgramError::HeadIsEdb(_))
        ));
    }

    #[test]
    fn unsafe_head_var_rejected() {
        let mut p = Program::new();
        p.declare("r", vec![Type::Atom]);
        p.rule("r", vec![DTerm::var("x")], vec![]);
        match p.validate(&edb()) {
            Err(ProgramError::Unsafe { var, .. }) => assert_eq!(var, "x"),
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn unsafe_negation_rejected() {
        let mut p = Program::new();
        p.declare("r", vec![Type::Atom]);
        p.rule(
            "r",
            vec![DTerm::var("x")],
            vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("x")]),
                Literal::Neg("G".into(), vec![DTerm::var("x"), DTerm::var("w")]),
            ],
        );
        match p.validate(&edb()) {
            Err(ProgramError::Unsafe { var, .. }) => assert_eq!(var, "w"),
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn membership_binds_variables() {
        // r(x) :- P(S), x in S — safe: x bound via membership in bound S
        let su = Type::set(Type::Atom);
        let schema = Schema::from_relations([RelationSchema::new("P", vec![su.clone()])]);
        let mut p = Program::new();
        p.declare("r", vec![Type::Atom]);
        p.rule(
            "r",
            vec![DTerm::var("x")],
            vec![
                Literal::Pos("P".into(), vec![DTerm::var("S")]),
                Literal::In(DTerm::var("x"), DTerm::var("S")),
            ],
        );
        assert_eq!(p.validate(&schema), Ok(()));
    }

    #[test]
    fn equality_chains_bind() {
        let mut p = Program::new();
        p.declare("r", vec![Type::Atom]);
        p.rule(
            "r",
            vec![DTerm::var("y")],
            vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("x")]),
                Literal::Eq(DTerm::var("y"), DTerm::var("x")),
            ],
        );
        assert_eq!(p.validate(&edb()), Ok(()));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut p = Program::new();
        p.declare("r", vec![Type::Atom]);
        p.rule(
            "r",
            vec![DTerm::var("x")],
            vec![Literal::Pos("G".into(), vec![DTerm::var("x")])],
        );
        assert!(matches!(
            p.validate(&edb()),
            Err(ProgramError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn display_roundtrips_visually() {
        let p = tc_program();
        let s = p.to_string();
        assert!(s.contains("rel tc(U, U)."), "{s}");
        assert!(s.contains("tc(x, y) :- tc(x, z), G(z, y)."), "{s}");
    }
}
