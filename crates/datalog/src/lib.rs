//! # `no-datalog` — inflationary Datalog¬ over complex objects
//!
//! The deductive side of the paper's Section 3 correspondence: rules with
//! negation and membership over complex-object terms ([`program`]),
//! inflationary naive/semi-naive evaluation ([`mod@eval`]), and translation
//! into `CALC + IFP` fixpoints ([`translate`]).
//!
//! # Example
//!
//! ```
//! use no_datalog::{eval, parse_program, Strategy};
//! use no_object::{Instance, RelationSchema, Schema, Type, Universe, Value};
//!
//! let mut universe = Universe::new();
//! let program = parse_program(
//!     "rel tc(U, U).\n\
//!      tc(x, y) :- G(x, y).\n\
//!      tc(x, y) :- tc(x, z), G(z, y).",
//!     &mut universe,
//! ).unwrap();
//!
//! let schema = Schema::from_relations([
//!     RelationSchema::new("G", vec![Type::Atom, Type::Atom]),
//! ]);
//! let mut db = Instance::empty(schema);
//! let (a, b, c) = (universe.intern("a"), universe.intern("b"), universe.intern("c"));
//! db.insert("G", vec![Value::Atom(a), Value::Atom(b)]);
//! db.insert("G", vec![Value::Atom(b), Value::Atom(c)]);
//!
//! let (idb, stats) = eval(&program, &db, Strategy::SemiNaive).unwrap();
//! assert_eq!(idb["tc"].len(), 3);
//! assert!(stats.rounds >= 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod eval;
pub mod parser;
pub mod program;
pub mod simultaneous;
pub mod stratified;
pub mod translate;

pub use eval::{eval, eval_governed, eval_pooled, EvalStats, Idb, Strategy};
pub use parser::{parse_program, parse_program_spanned};
pub use program::{DTerm, Literal, Program, ProgramError, Rule};
pub use simultaneous::{
    eval_simultaneous, eval_simultaneous_pooled, to_simultaneous_ifp, SimEvalError, Simultaneous,
};
pub use stratified::{
    eval_stratified, eval_stratified_governed, eval_stratified_pooled, stratify, StratifyError,
};
pub use translate::{to_ifp, TranslateError};
