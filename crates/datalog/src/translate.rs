//! Translation from Datalog¬ to `CALC + IFP` (the Section 3 connection).
//!
//! A program whose rules all define a *single* IDB relation translates
//! directly: each rule becomes one disjunct — body literals conjoined,
//! non-head variables existentially quantified, IDB occurrences replaced
//! by the fixpoint relation — and the program becomes
//! `IFP(⋁ rules, S)`. The tests check that evaluating the translated
//! fixpoint with the generic CALC evaluator gives exactly the facts the
//! Datalog engine derives (both semantics are inflationary).
//!
//! Programs with several IDB relations require the classic simultaneous-
//! fixpoint encoding into a single wider relation; that transformation is
//! out of scope here and reported as [`TranslateError::MultipleIdb`]
//! (the paper defers the full correspondence to its companion \[GV91a\]).

use crate::program::{DTerm, Literal, Program, Rule};
use no_core::ast::{FixOp, Fixpoint, Formula, Term};
use no_object::Type;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Why a program could not be translated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// More than one IDB relation.
    MultipleIdb(Vec<String>),
    /// No IDB relation declared.
    NoIdb,
    /// A head argument is not a plain variable (head constants would need
    /// an equality rewrite; keep rules in head-normal form instead).
    HeadNotVariable {
        /// The offending rule, displayed.
        rule: String,
    },
    /// Head variables differ across rules (rules must be normalised to a
    /// common head variable vector).
    InconsistentHeads {
        /// The expected head variables.
        expected: Vec<String>,
        /// The offending rule, displayed.
        rule: String,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::MultipleIdb(names) => {
                write!(f, "program defines several IDB relations: {names:?}")
            }
            TranslateError::NoIdb => write!(f, "program declares no IDB relation"),
            TranslateError::HeadNotVariable { rule } => {
                write!(f, "rule head has a non-variable argument: {rule}")
            }
            TranslateError::InconsistentHeads { expected, rule } => {
                write!(f, "rule {rule} must use head variables {expected:?}")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

fn dterm_to_term(t: &DTerm) -> Term {
    match t {
        DTerm::Var(v) => Term::var(v.clone()),
        DTerm::Const(c) => Term::Const(c.clone()),
    }
}

pub(crate) fn literal_formula(l: &Literal) -> Formula {
    match l {
        Literal::Pos(name, args) => {
            Formula::Rel(name.clone(), args.iter().map(dterm_to_term).collect())
        }
        Literal::Neg(name, args) => {
            Formula::Rel(name.clone(), args.iter().map(dterm_to_term).collect()).not()
        }
        Literal::Eq(a, b) => Formula::Eq(dterm_to_term(a), dterm_to_term(b)),
        Literal::Neq(a, b) => Formula::Eq(dterm_to_term(a), dterm_to_term(b)).not(),
        Literal::In(a, b) => Formula::In(dterm_to_term(a), dterm_to_term(b)),
        Literal::NotIn(a, b) => Formula::In(dterm_to_term(a), dterm_to_term(b)).not(),
    }
}

fn rule_vars(rule: &Rule) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut note = |t: &DTerm| {
        if let DTerm::Var(v) = t {
            out.insert(v.clone());
        }
    };
    for t in &rule.head_args {
        note(t);
    }
    for l in &rule.body {
        match l {
            Literal::Pos(_, args) | Literal::Neg(_, args) => args.iter().for_each(&mut note),
            Literal::Eq(a, b) | Literal::Neq(a, b) | Literal::In(a, b) | Literal::NotIn(a, b) => {
                note(a);
                note(b);
            }
        }
    }
    out
}

/// Translate a single-IDB program into the equivalent `IFP` fixpoint
/// expression. `var_types` for body variables are taken from the IDB and
/// EDB signatures implicitly at evaluation time; quantifier types must be
/// supplied per variable via `infer` against the EDB schema — here we
/// require the caller to pass the type of every non-head variable.
pub fn to_ifp(
    program: &Program,
    body_var_types: &[(&str, Type)],
) -> Result<Arc<Fixpoint>, TranslateError> {
    let mut idb_names: Vec<&String> = program.idb.keys().collect();
    if idb_names.is_empty() {
        return Err(TranslateError::NoIdb);
    }
    if idb_names.len() > 1 {
        return Err(TranslateError::MultipleIdb(
            idb_names.drain(..).cloned().collect(),
        ));
    }
    let rel = idb_names[0].clone();
    let col_types = program.idb[&rel].clone();

    // head variables from the first rule fix the column variable names
    let first = program.rules.first().ok_or(TranslateError::NoIdb)?;
    let head_vars: Vec<String> = first
        .head_args
        .iter()
        .map(|t| match t {
            DTerm::Var(v) => Ok(v.clone()),
            DTerm::Const(_) => Err(TranslateError::HeadNotVariable {
                rule: first.to_string(),
            }),
        })
        .collect::<Result<_, _>>()?;

    let mut disjuncts = Vec::with_capacity(program.rules.len());
    for rule in &program.rules {
        let these: Vec<String> = rule
            .head_args
            .iter()
            .map(|t| match t {
                DTerm::Var(v) => Ok(v.clone()),
                DTerm::Const(_) => Err(TranslateError::HeadNotVariable {
                    rule: rule.to_string(),
                }),
            })
            .collect::<Result<_, _>>()?;
        if these != head_vars {
            return Err(TranslateError::InconsistentHeads {
                expected: head_vars.clone(),
                rule: rule.to_string(),
            });
        }
        let mut body = Formula::and(rule.body.iter().map(literal_formula));
        // existentially close non-head variables, innermost first
        let extra: Vec<String> = rule_vars(rule)
            .into_iter()
            .filter(|v| !head_vars.contains(v))
            .collect();
        for v in extra.into_iter().rev() {
            let ty = body_var_types
                .iter()
                .find(|(n, _)| *n == v)
                .map(|(_, t)| t.clone())
                .unwrap_or(Type::Atom);
            body = Formula::exists(v, ty, body);
        }
        disjuncts.push(body);
    }

    Ok(Arc::new(Fixpoint {
        op: FixOp::Ifp,
        rel,
        vars: head_vars.into_iter().zip(col_types).collect(),
        body: Box::new(Formula::or(disjuncts)),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Strategy};
    use no_core::error::EvalConfig;
    use no_core::eval::{eval_query_with, Query};
    use no_object::{Instance, RelationSchema, Schema, Universe, Value};

    fn graph(edges: &[(&str, &str)]) -> (Universe, Instance) {
        let mut u = Universe::new();
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let mut i = Instance::empty(schema);
        for (a, b) in edges {
            let (a, b) = (u.intern(a), u.intern(b));
            i.insert("G", vec![Value::Atom(a), Value::Atom(b)]);
        }
        (u, i)
    }

    fn tc_program() -> Program {
        let mut p = Program::new();
        p.declare("tc", vec![Type::Atom, Type::Atom]);
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("tc".into(), vec![DTerm::var("x"), DTerm::var("z")]),
                Literal::Pos("G".into(), vec![DTerm::var("z"), DTerm::var("y")]),
            ],
        );
        p
    }

    #[test]
    fn tc_translation_matches_datalog_engine() {
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "b")]);
        let fix = to_ifp(&tc_program(), &[("z", Type::Atom)]).unwrap();
        let q = Query::new(
            vec![("u".into(), Type::Atom), ("v".into(), Type::Atom)],
            Formula::FixApp(fix, vec![Term::var("u"), Term::var("v")]),
        );
        let by_calc = eval_query_with(&i, &q, EvalConfig::default()).unwrap();
        let (idb, _) = eval(&tc_program(), &i, Strategy::SemiNaive).unwrap();
        assert_eq!(by_calc, idb["tc"]);
    }

    #[test]
    fn translation_with_negation_matches() {
        // loop-free successors: s(x,y) :- G(x,y), !G(y,x).
        let (_u, i) = graph(&[("a", "b"), ("b", "a"), ("b", "c")]);
        let mut p = Program::new();
        p.declare("s", vec![Type::Atom, Type::Atom]);
        p.rule(
            "s",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("y")]),
                Literal::Neg("G".into(), vec![DTerm::var("y"), DTerm::var("x")]),
            ],
        );
        let fix = to_ifp(&p, &[]).unwrap();
        let q = Query::new(
            vec![("u".into(), Type::Atom), ("v".into(), Type::Atom)],
            Formula::FixApp(fix, vec![Term::var("u"), Term::var("v")]),
        );
        let by_calc = eval_query_with(&i, &q, EvalConfig::default()).unwrap();
        let (idb, _) = eval(&p, &i, Strategy::Naive).unwrap();
        assert_eq!(by_calc, idb["s"]);
        assert_eq!(by_calc.len(), 1); // only (b, c)
    }

    #[test]
    fn multiple_idb_rejected() {
        let mut p = tc_program();
        p.declare("other", vec![Type::Atom]);
        assert!(matches!(
            to_ifp(&p, &[]),
            Err(TranslateError::MultipleIdb(_))
        ));
    }

    #[test]
    fn head_constants_rejected() {
        let (u, _i) = graph(&[("a", "b")]);
        let a = Value::Atom(u.get("a").unwrap());
        let mut p = Program::new();
        p.declare("r", vec![Type::Atom]);
        p.rule(
            "r",
            vec![DTerm::Const(a)],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        assert!(matches!(
            to_ifp(&p, &[]),
            Err(TranslateError::HeadNotVariable { .. })
        ));
    }

    #[test]
    fn inconsistent_heads_rejected() {
        let mut p = Program::new();
        p.declare("r", vec![Type::Atom]);
        p.rule(
            "r",
            vec![DTerm::var("x")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "r",
            vec![DTerm::var("w")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("w"), DTerm::var("z")],
            )],
        );
        assert!(matches!(
            to_ifp(&p, &[]),
            Err(TranslateError::InconsistentHeads { .. })
        ));
    }

    #[test]
    fn translated_formula_is_range_restricted() {
        let fix = to_ifp(&tc_program(), &[("z", Type::Atom)]).unwrap();
        let f = Formula::FixApp(fix, vec![Term::var("u"), Term::var("v")]);
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let types = no_core::typeck::check(
            &schema,
            &[("u".into(), Type::Atom), ("v".into(), Type::Atom)],
            &f,
        )
        .unwrap()
        .var_types;
        assert!(no_core::rr::is_range_restricted(&schema, &types, &f));
    }
}
