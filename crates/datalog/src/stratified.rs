//! Stratified semantics for Datalog¬ — the classical alternative to the
//! paper's inflationary semantics.
//!
//! Inflationary evaluation (Section 3's `inf-Datalog¬`) applies negation
//! against the *current*, still-growing database: a fact derived early
//! from a negation that later fails is kept. Stratified evaluation instead
//! orders the IDB predicates so that negation only ever consults fully
//! computed relations, yielding the perfect model — when such an order
//! exists. The two semantics genuinely differ (see the
//! `stratified_vs_inflationary` test, the textbook unreachability
//! example), which is exactly why the paper is explicit about using the
//! inflationary one for its `CALC+IFP` correspondence.

use crate::eval::{Idb, Strategy};
use crate::program::{Literal, Program, ProgramError};
use no_object::{Governor, Instance};
use std::collections::BTreeMap;
use std::fmt;

/// Why a program cannot be stratified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StratifyError {
    /// A cycle through negation: the listed predicate depends negatively
    /// on itself (possibly through others).
    NegativeCycle {
        /// A predicate on the cycle.
        on: String,
    },
    /// The underlying program is invalid.
    Program(ProgramError),
}

impl fmt::Display for StratifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StratifyError::NegativeCycle { on } => {
                write!(
                    f,
                    "program is not stratifiable: negative cycle through {on}"
                )
            }
            StratifyError::Program(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StratifyError {}

impl From<ProgramError> for StratifyError {
    fn from(e: ProgramError) -> Self {
        StratifyError::Program(e)
    }
}

/// Assign strata to the IDB predicates: `stratum(P) ≥ stratum(Q)` when `P`
/// depends positively on `Q`, strictly greater when negatively. Returns
/// predicates grouped by stratum, lowest first.
pub fn stratify(program: &Program) -> Result<Vec<Vec<String>>, StratifyError> {
    let idb: Vec<&String> = program.idb.keys().collect();
    let mut stratum: BTreeMap<&str, usize> = idb.iter().map(|n| (n.as_str(), 0)).collect();
    let max_stratum = idb.len().max(1);
    // Bellman–Ford style relaxation; more than |IDB| rounds of growth
    // implies a negative cycle.
    for _round in 0..=max_stratum {
        let mut changed = false;
        for rule in &program.rules {
            let head_stratum = stratum[rule.head.as_str()];
            for lit in &rule.body {
                let (name, negated) = match lit {
                    Literal::Pos(n, _) => (n, false),
                    Literal::Neg(n, _) => (n, true),
                    _ => continue,
                };
                let Some(&body_stratum) = stratum.get(name.as_str()) else {
                    continue; // EDB
                };
                let required = if negated {
                    body_stratum + 1
                } else {
                    body_stratum
                };
                if head_stratum < required {
                    // raise the head's stratum
                    if required > max_stratum {
                        return Err(StratifyError::NegativeCycle {
                            on: rule.head.clone(),
                        });
                    }
                    stratum.insert(rule.head.as_str(), required);
                    changed = true;
                }
            }
        }
        if !changed {
            let top = stratum.values().copied().max().unwrap_or(0);
            let mut out = vec![Vec::new(); top + 1];
            for (name, s) in stratum {
                out[s].push(name.to_string());
            }
            out.retain(|layer| !layer.is_empty());
            return Ok(out);
        }
    }
    Err(StratifyError::NegativeCycle {
        on: idb.first().map(|s| (*s).clone()).unwrap_or_default(),
    })
}

/// Evaluate with stratified semantics: strata bottom-up, each stratum run
/// to fixpoint (semi-naive) with all lower strata frozen. Runs under a
/// fresh default [`Governor`].
pub fn eval_stratified(program: &Program, instance: &Instance) -> Result<Idb, StratifyError> {
    eval_stratified_governed(program, instance, &Governor::default())
}

/// [`eval_stratified`] under an existing [`Governor`]: all strata draw
/// from the *same* allowance, so a program cannot multiply its budget by
/// stratifying work across layers.
pub fn eval_stratified_governed(
    program: &Program,
    instance: &Instance,
    governor: &Governor,
) -> Result<Idb, StratifyError> {
    eval_stratified_pooled(
        program,
        instance,
        governor,
        &minipool::ThreadPool::sequential(),
    )
}

/// [`eval_stratified_governed`] with an explicit [`minipool::ThreadPool`]:
/// each stratum's inflationary fixpoint runs through
/// [`crate::eval::eval_pooled`], so rule evaluation inside every stratum
/// fans out over the pool (strata themselves stay sequential — each one
/// negates over the previous ones, a hard dependency).
pub fn eval_stratified_pooled(
    program: &Program,
    instance: &Instance,
    governor: &Governor,
    pool: &minipool::ThreadPool,
) -> Result<Idb, StratifyError> {
    program.validate(instance.schema())?;
    let strata = stratify(program)?;
    // Evaluate one stratum at a time. Lower strata are *frozen*: their
    // computed relations are materialised into an extended instance as
    // ordinary EDB relations, so the current stratum's negation only ever
    // consults finished relations — the perfect-model guarantee.
    let mut computed: Idb = Idb::new();
    let mut frozen = instance.clone();
    for layer in &strata {
        let mut sub = Program::new();
        for name in layer {
            sub.declare(name.clone(), program.idb[name].clone());
        }
        for rule in &program.rules {
            if layer.contains(&rule.head) {
                sub.rules.push(rule.clone());
            }
        }
        governor
            .checkpoint("datalog.stratum")
            .map_err(|e| StratifyError::Program(ProgramError::Resource(e)))?;
        let (idb, _) = crate::eval::eval_pooled(&sub, &frozen, Strategy::SemiNaive, governor, pool)
            .map_err(StratifyError::Program)?;
        // freeze this stratum's results into the instance for the next one
        let mut schema = frozen.schema().clone();
        for name in layer {
            schema.add(no_object::RelationSchema::new(
                name.clone(),
                program.idb[name].clone(),
            ));
        }
        let mut next = Instance::empty(schema);
        for rel in frozen.schema().relations() {
            next.set_relation(&rel.name, frozen.relation(&rel.name).clone());
        }
        for (name, rel) in &idb {
            next.set_relation(name, rel.clone());
        }
        frozen = next;
        computed.extend(idb);
    }
    // ensure all declared IDBs appear (empty when no rule derives them)
    for name in program.idb.keys() {
        computed.entry(name.clone()).or_default();
    }
    Ok(computed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::DTerm;
    use no_object::{RelationSchema, Schema, Type, Universe, Value};

    fn graph(edges: &[(&str, &str)]) -> (Universe, Instance) {
        let mut u = Universe::new();
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let mut i = Instance::empty(schema);
        for (a, b) in edges {
            let (a, b) = (u.intern(a), u.intern(b));
            i.insert("G", vec![Value::Atom(a), Value::Atom(b)]);
        }
        (u, i)
    }

    /// tc + node + unreach — the textbook stratified program.
    fn unreach_program() -> Program {
        let mut p = Program::new();
        p.declare("tc", vec![Type::Atom, Type::Atom]);
        p.declare("node", vec![Type::Atom]);
        p.declare("unreach", vec![Type::Atom, Type::Atom]);
        p.rule(
            "node",
            vec![DTerm::var("x")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "node",
            vec![DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("tc".into(), vec![DTerm::var("x"), DTerm::var("z")]),
                Literal::Pos("G".into(), vec![DTerm::var("z"), DTerm::var("y")]),
            ],
        );
        p.rule(
            "unreach",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("node".into(), vec![DTerm::var("x")]),
                Literal::Pos("node".into(), vec![DTerm::var("y")]),
                Literal::Neg("tc".into(), vec![DTerm::var("x"), DTerm::var("y")]),
            ],
        );
        p
    }

    #[test]
    fn strata_order_negation_last() {
        let strata = stratify(&unreach_program()).unwrap();
        assert_eq!(strata.len(), 2);
        assert!(strata[0].contains(&"tc".to_string()));
        assert!(strata[0].contains(&"node".to_string()));
        assert_eq!(strata[1], vec!["unreach".to_string()]);
    }

    #[test]
    fn negative_cycle_rejected() {
        // p :- !q. q :- !p.
        let mut p = Program::new();
        p.declare("p", vec![Type::Atom]);
        p.declare("q", vec![Type::Atom]);
        p.rule(
            "p",
            vec![DTerm::var("x")],
            vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("x")]),
                Literal::Neg("q".into(), vec![DTerm::var("x")]),
            ],
        );
        p.rule(
            "q",
            vec![DTerm::var("x")],
            vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("x")]),
                Literal::Neg("p".into(), vec![DTerm::var("x")]),
            ],
        );
        assert!(matches!(
            stratify(&p),
            Err(StratifyError::NegativeCycle { .. })
        ));
    }

    #[test]
    fn stratified_vs_inflationary() {
        // On a path a → b → c: (a,c) IS reachable. Inflationary semantics
        // derives unreach(a,c) in round one (before tc closes) and keeps
        // it; stratified semantics computes tc first and never derives it.
        let (u, i) = graph(&[("a", "b"), ("b", "c")]);
        let a = Value::Atom(u.get("a").unwrap());
        let c = Value::Atom(u.get("c").unwrap());
        let p = unreach_program();
        let stratified = eval_stratified(&p, &i).unwrap();
        assert!(!stratified["unreach"].contains(&[a.clone(), c.clone()]));
        let (inflationary, _) = crate::eval::eval(&i_p(&p), &i, Strategy::Naive).unwrap();
        assert!(inflationary["unreach"].contains(&[a.clone(), c.clone()]));
        // and both contain the genuinely unreachable pair (c, a)
        assert!(stratified["unreach"].contains(&[c.clone(), a.clone()]));
        assert!(inflationary["unreach"].contains(&[c, a]));
    }

    fn i_p(p: &Program) -> Program {
        p.clone()
    }

    #[test]
    fn stratified_matches_reference_complement() {
        let (u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "a"), ("d", "a")]);
        let idb = eval_stratified(&unreach_program(), &i).unwrap();
        // reference: complement of TC over the 4 nodes
        let names = ["a", "b", "c", "d"];
        let reachable = |x: &str, y: &str| -> bool {
            // closure of a→b→c→a cycle plus d→a
            match (x, y) {
                ("a", _) | ("b", _) | ("c", _) if y != "d" => true,
                ("d", _) if y != "d" => true,
                _ => false,
            }
        };
        for x in names {
            for y in names {
                let row = vec![
                    Value::Atom(u.get(x).unwrap()),
                    Value::Atom(u.get(y).unwrap()),
                ];
                assert_eq!(
                    idb["unreach"].contains(&row),
                    !reachable(x, y),
                    "({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn positive_programs_agree_across_semantics() {
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let mut p = Program::new();
        p.declare("tc", vec![Type::Atom, Type::Atom]);
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("tc".into(), vec![DTerm::var("x"), DTerm::var("z")]),
                Literal::Pos("G".into(), vec![DTerm::var("z"), DTerm::var("y")]),
            ],
        );
        let stratified = eval_stratified(&p, &i).unwrap();
        let (inflationary, _) = crate::eval::eval(&p, &i, Strategy::SemiNaive).unwrap();
        assert_eq!(stratified, inflationary);
    }

    #[test]
    fn strata_share_one_budget() {
        use no_object::{BudgetKind, Limits};
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let g = Governor::new(Limits {
            max_steps: 50,
            ..Limits::unlimited()
        });
        match eval_stratified_governed(&unreach_program(), &i, &g) {
            Err(StratifyError::Program(ProgramError::Resource(e))) => {
                assert_eq!(e.budget, BudgetKind::Steps);
            }
            other => panic!("expected step Resource error, got {other:?}"),
        }
        // the shared governor records the consumption that tripped it
        assert!(g.steps_spent() >= 50);
    }

    #[test]
    fn undeclared_relations_still_reported() {
        let mut p = Program::new();
        p.rule("ghost", vec![DTerm::var("x")], vec![]);
        let (_u, i) = graph(&[("a", "b")]);
        assert!(matches!(
            eval_stratified(&p, &i),
            Err(StratifyError::Program(_))
        ));
    }
}
