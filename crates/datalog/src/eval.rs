//! Inflationary evaluation of Datalog¬ programs, naive and semi-naive.
//!
//! The inflationary semantics (`inf-Datalog¬` in Section 3) iterates the
//! immediate-consequence operator against the *current* database and
//! accumulates: `J_i = J_{i−1} ∪ T(J_{i−1})`. Negation is evaluated
//! against the current state, so no stratification is required and the
//! iteration always converges (facts only accumulate).
//!
//! Semi-naive evaluation exploits a monotonicity fact specific to the
//! inflationary semantics: relations only grow, so a rule body that newly
//! becomes satisfiable must use a fact derived in the previous round in a
//! *positive* literal. Each round therefore only joins rule bodies with at
//! least one delta-positive literal (after the first full round). The
//! `naive_equals_seminaive` tests check the equivalence, and benchmark
//! `datalog_seminaive` measures the speedup (a design-choice ablation from
//! DESIGN.md §6).
//!
//! The join loops run over hash-consed rows: the EDB is interned once per
//! evaluation, the IDB and deltas are [`IdRelation`]s, and unification
//! binds [`ValueId`]s — so fact dedup and (not-)membership tests cost
//! O(arity) id compares regardless of value nesting. Results resolve back
//! to [`Relation`]s at the boundary.
//!
//! Positive body literals are *index-probed*: per rule evaluation, the
//! first literal argument whose value is already known when the literal
//! is reached (a constant, or a variable bound by an earlier literal)
//! keys a lazily-built hash index over the literal's relation, and only
//! the matching group is unified. Under semi-naive evaluation this is the
//! `HashJoin(probe=Δ)` shape `:explain` reports: each delta row's
//! bindings probe the indexes of the later body literals. Probing is an
//! iteration-order optimization only — the rows it skips would have
//! failed the same id compare inside the unification loop *without
//! consuming fuel* — so derived facts, [`EvalStats::joins`], and step
//! accounting are bit-for-bit identical to the full-scan engine.

use crate::program::{DTerm, Literal, Program, ProgramError, Rule};
use minipool::ThreadPool;
use no_object::intern::{IdRelation, Interner, ValueId};
use no_object::{Governor, Instance, Relation};
use std::collections::{BTreeMap, HashMap};

/// The computed IDB: relation name → facts.
pub type Idb = BTreeMap<String, Relation>;

/// The interned IDB used internally during evaluation.
type IdbI = BTreeMap<String, IdRelation>;

/// Evaluation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds until convergence.
    pub rounds: usize,
    /// Total facts derived.
    pub facts: usize,
    /// Rule-body join attempts (work measure).
    pub joins: u64,
}

/// Evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Re-evaluate every rule against the full database each round.
    Naive,
    /// Only evaluate rules with a delta-positive literal after round one.
    SemiNaive,
}

/// Evaluate `program` on `instance` with inflationary semantics, under a
/// fresh default [`Governor`].
pub fn eval(
    program: &Program,
    instance: &Instance,
    strategy: Strategy,
) -> Result<(Idb, EvalStats), ProgramError> {
    eval_governed(program, instance, strategy, &Governor::default())
}

/// Evaluate `program` on `instance` with inflationary semantics under an
/// existing [`Governor`]: every rule-body join attempt costs one unit of
/// step fuel, every derived fact is charged against the memory budget, and
/// each fixpoint round is checked against the iteration cap.
pub fn eval_governed(
    program: &Program,
    instance: &Instance,
    strategy: Strategy,
    governor: &Governor,
) -> Result<(Idb, EvalStats), ProgramError> {
    eval_pooled(
        program,
        instance,
        strategy,
        governor,
        &ThreadPool::sequential(),
    )
}

/// A rule task's view of the delta: which body position (if any) is pinned
/// to last round's delta, and the rows it is pinned to. Chunked tasks own
/// their slice of the delta; unchunked tasks borrow the whole relation.
enum Pin<'r> {
    None,
    Borrowed(usize, &'r IdRelation),
    Owned(usize, IdRelation),
}

impl Pin<'_> {
    fn get(&self) -> Option<(usize, &IdRelation)> {
        match self {
            Pin::None => None,
            Pin::Borrowed(pos, rel) => Some((*pos, rel)),
            Pin::Owned(pos, rel) => Some((*pos, rel)),
        }
    }
}

/// Split `rel` into at most `parts` non-empty relations covering its rows.
fn partition_rows(rel: &IdRelation, parts: usize) -> Vec<IdRelation> {
    let n = parts.clamp(1, rel.len().max(1));
    let mut chunks = vec![IdRelation::new(); n];
    for (i, row) in rel.iter().enumerate() {
        chunks[i % n].insert(row.to_vec().into_boxed_slice());
    }
    chunks
}

/// [`eval_governed`] with an explicit [`ThreadPool`]. At `threads == 1` the
/// round loop is executed exactly as in previous releases; at higher
/// parallelism each round's rule evaluations — and, under semi-naive, each
/// (rule, delta-position, delta-chunk) — become independent tasks fanned
/// out over the pool, with worker-local outputs merged at the round
/// barrier. Derived relations are identical at every parallelism level;
/// [`EvalStats::joins`] and the exact step-fuel trip point may differ when
/// `threads > 1` because chunked tasks re-scan the body prefix before the
/// pinned literal.
pub fn eval_pooled(
    program: &Program,
    instance: &Instance,
    strategy: Strategy,
    governor: &Governor,
    pool: &ThreadPool,
) -> Result<(Idb, EvalStats), ProgramError> {
    program.validate(instance.schema())?;
    let interner = Interner::new();
    // Intern the EDB once, as input data (uncharged).
    let edb: HashMap<String, IdRelation> = instance
        .schema()
        .relations()
        .map(|r| {
            (
                r.name.clone(),
                IdRelation::from_relation(&interner, instance.relation(&r.name)),
            )
        })
        .collect();
    let mut idb: IdbI = program
        .idb
        .keys()
        .map(|k| (k.clone(), IdRelation::new()))
        .collect();
    let mut delta: IdbI = idb.clone();
    let mut stats = EvalStats::default();
    loop {
        stats.rounds += 1;
        governor.check_iters("datalog.round", stats.rounds as u64)?;
        let mut new_delta: IdbI = program
            .idb
            .keys()
            .map(|k| (k.clone(), IdRelation::new()))
            .collect();
        let mut grew = false;
        // Build this round's task list: one task per rule under naive
        // evaluation (and in the first full round), one per delta-positive
        // literal occurrence under semi-naive — split further into
        // per-chunk tasks when the delta is large enough to share.
        let mut tasks: Vec<(&Rule, Pin<'_>)> = Vec::new();
        for rule in &program.rules {
            let use_delta = strategy == Strategy::SemiNaive && stats.rounds > 1;
            if use_delta {
                for (pos, lit) in rule.body.iter().enumerate() {
                    let Literal::Pos(name, _) = lit else { continue };
                    if !idb.contains_key(name) {
                        continue;
                    }
                    let d = &delta[name];
                    if pool.threads() > 1 && d.len() >= 2 {
                        for chunk in partition_rows(d, pool.threads()) {
                            tasks.push((rule, Pin::Owned(pos, chunk)));
                        }
                    } else {
                        tasks.push((rule, Pin::Borrowed(pos, d)));
                    }
                }
            } else {
                tasks.push((rule, Pin::None));
            }
        }
        if pool.threads() > 1 && tasks.len() > 1 {
            let results = pool.try_map(tasks, |(rule, pin)| {
                let mut local: IdbI = program
                    .idb
                    .keys()
                    .map(|k| (k.clone(), IdRelation::new()))
                    .collect();
                let mut local_stats = EvalStats::default();
                derive(
                    rule,
                    &edb,
                    &idb,
                    pin.get(),
                    &mut local,
                    &mut local_stats,
                    governor,
                    &interner,
                )?;
                Ok::<(IdbI, u64), ProgramError>((local, local_stats.joins))
            })?;
            for (local, joins) in results {
                stats.joins += joins;
                for (name, rel) in local {
                    if !rel.is_empty() {
                        new_delta.get_mut(&name).expect("declared IDB").absorb(&rel);
                    }
                }
            }
        } else {
            for (rule, pin) in &tasks {
                derive(
                    rule,
                    &edb,
                    &idb,
                    pin.get(),
                    &mut new_delta,
                    &mut stats,
                    governor,
                    &interner,
                )?;
            }
        }
        for (name, facts) in &new_delta {
            let target = idb.get_mut(name).expect("declared IDB");
            let mut fresh = IdRelation::new();
            for row in facts.iter() {
                if !target.contains(row) {
                    fresh.insert(row.to_vec().into_boxed_slice());
                }
            }
            if !fresh.is_empty() {
                grew = true;
                target.absorb(&fresh);
            }
            delta.insert(name.to_string(), fresh);
        }
        if !grew {
            break;
        }
    }
    stats.facts = idb.values().map(IdRelation::len).sum();
    let resolved: Idb = idb
        .into_iter()
        .map(|(name, rel)| (name, rel.to_relation(&interner)))
        .collect();
    Ok((resolved, stats))
}

/// A positive literal's lazily-built probe index. Which argument position
/// keys the index depends only on the body *prefix* (the set of variables
/// bound before a given depth is the same for every visit), so one slot
/// per body literal suffices for a whole rule evaluation.
enum Probe {
    /// Not yet decided for this rule evaluation.
    Unbuilt,
    /// No argument is known when the literal is reached: scan.
    Scan,
    /// Rows grouped by the value at `col`; probes clone only the matching
    /// group (O(matches), each of which is recursed into anyway).
    Index {
        /// The probed argument position.
        col: usize,
        /// Rows grouped by their value at `col`.
        groups: HashMap<ValueId, Vec<Box<[ValueId]>>>,
    },
}

/// Evaluate one rule body by backtracking over literals left to right,
/// inserting derived head facts into `out`.
#[allow(clippy::too_many_arguments)]
fn derive(
    rule: &Rule,
    edb: &HashMap<String, IdRelation>,
    idb: &IdbI,
    pinned: Option<(usize, &IdRelation)>,
    out: &mut IdbI,
    stats: &mut EvalStats,
    governor: &Governor,
    int: &Interner,
) -> Result<(), ProgramError> {
    let mut env: HashMap<String, ValueId> = HashMap::new();
    let mut probes: Vec<Probe> = rule.body.iter().map(|_| Probe::Unbuilt).collect();
    search(
        rule,
        edb,
        idb,
        pinned,
        0,
        &mut env,
        &mut probes,
        out,
        stats,
        governor,
        int,
    )
}

fn lookup_rel<'a>(
    name: &str,
    edb: &'a HashMap<String, IdRelation>,
    idb: &'a IdbI,
) -> Option<&'a IdRelation> {
    idb.get(name).or_else(|| edb.get(name))
}

fn eval_term(t: &DTerm, env: &HashMap<String, ValueId>, int: &Interner) -> Option<ValueId> {
    match t {
        // hash-consed: repeated constant evaluation is a map lookup
        DTerm::Const(c) => Some(int.intern(c)),
        DTerm::Var(v) => env.get(v).copied(),
    }
}

/// Unify a row against a literal's arguments under `env`. Returns whether
/// the row matched and which variables this row newly bound (for the
/// caller to undo); on mismatch, bindings made before the failing column
/// are already recorded in the returned list.
fn unify<'a>(
    args: &'a [DTerm],
    consts: &[Option<ValueId>],
    row: &[ValueId],
    env: &mut HashMap<String, ValueId>,
) -> (bool, Vec<&'a str>) {
    let mut bound_here: Vec<&str> = Vec::new();
    for ((arg, cid), &val) in args.iter().zip(consts).zip(row.iter()) {
        match arg {
            DTerm::Const(_) => {
                if *cid != Some(val) {
                    return (false, bound_here);
                }
            }
            DTerm::Var(v) => match env.get(v) {
                Some(&existing) => {
                    if existing != val {
                        return (false, bound_here);
                    }
                }
                None => {
                    env.insert(v.clone(), val);
                    bound_here.push(v);
                }
            },
        }
    }
    (true, bound_here)
}

#[allow(clippy::too_many_arguments)]
fn search(
    rule: &Rule,
    edb: &HashMap<String, IdRelation>,
    idb: &IdbI,
    pinned: Option<(usize, &IdRelation)>,
    depth: usize,
    env: &mut HashMap<String, ValueId>,
    probes: &mut Vec<Probe>,
    out: &mut IdbI,
    stats: &mut EvalStats,
    governor: &Governor,
    int: &Interner,
) -> Result<(), ProgramError> {
    stats.joins += 1;
    governor.tick("datalog.search")?;
    if depth == rule.body.len() {
        // all literals satisfied: emit the head fact
        let row: Option<Vec<ValueId>> = rule
            .head_args
            .iter()
            .map(|t| eval_term(t, env, int))
            .collect();
        if let Some(row) = row {
            // one id per column; the values behind the ids were admitted
            // to the arena (and charged, where applicable) once
            governor.charge_mem("datalog.derive", 8 * row.len() as u64)?;
            out.get_mut(&rule.head)
                .expect("declared IDB")
                .insert(row.into_boxed_slice());
        }
        return Ok(());
    }
    let lit = &rule.body[depth];
    match lit {
        Literal::Pos(name, args) => {
            let rel = match pinned {
                Some((pos, drel)) if pos == depth => drel,
                _ => match lookup_rel(name, edb, idb) {
                    Some(r) => r,
                    None => return Ok(()),
                },
            };
            // Pre-intern constant args so unification inside the scan is
            // pure id compares.
            let consts: Vec<Option<ValueId>> = args
                .iter()
                .map(|a| match a {
                    DTerm::Const(c) => Some(int.intern(c)),
                    DTerm::Var(_) => None,
                })
                .collect();
            // Decide (once per rule evaluation) whether this literal can
            // probe: the first argument whose value is known here keys a
            // hash index over the relation. Scratch only — never charged,
            // like the scans it replaces.
            if matches!(probes[depth], Probe::Unbuilt) {
                let col = args.iter().position(|a| match a {
                    DTerm::Const(_) => true,
                    DTerm::Var(v) => env.contains_key(v),
                });
                probes[depth] = match col {
                    None => Probe::Scan,
                    Some(col) => {
                        let mut groups: HashMap<ValueId, Vec<Box<[ValueId]>>> = HashMap::new();
                        for row in rel.iter() {
                            groups
                                .entry(row[col])
                                .or_default()
                                .push(row.to_vec().into_boxed_slice());
                        }
                        Probe::Index { col, groups }
                    }
                };
            }
            let probed: Option<Vec<Box<[ValueId]>>> = match &probes[depth] {
                Probe::Scan => None,
                Probe::Index { col, groups } => {
                    let key = match &args[*col] {
                        DTerm::Const(_) => consts[*col].expect("interned above"),
                        DTerm::Var(v) => env[v.as_str()],
                    };
                    Some(groups.get(&key).cloned().unwrap_or_default())
                }
                Probe::Unbuilt => unreachable!("decided above"),
            };
            match probed {
                Some(rows) => {
                    for row in &rows {
                        let (ok, bound_here) = unify(args, &consts, row, env);
                        let deeper = if ok {
                            search(
                                rule,
                                edb,
                                idb,
                                pinned,
                                depth + 1,
                                env,
                                probes,
                                out,
                                stats,
                                governor,
                                int,
                            )
                        } else {
                            Ok(())
                        };
                        for v in bound_here {
                            env.remove(v);
                        }
                        deeper?;
                    }
                }
                None => {
                    for row in rel.iter() {
                        let (ok, bound_here) = unify(args, &consts, row, env);
                        let deeper = if ok {
                            search(
                                rule,
                                edb,
                                idb,
                                pinned,
                                depth + 1,
                                env,
                                probes,
                                out,
                                stats,
                                governor,
                                int,
                            )
                        } else {
                            Ok(())
                        };
                        for v in bound_here {
                            env.remove(v);
                        }
                        deeper?;
                    }
                }
            }
            Ok(())
        }
        Literal::Neg(name, args) => {
            let row: Option<Vec<ValueId>> = args.iter().map(|t| eval_term(t, env, int)).collect();
            let Some(row) = row else { return Ok(()) };
            let holds = lookup_rel(name, edb, idb)
                .map(|r| r.contains(&row))
                .unwrap_or(false);
            if !holds {
                search(
                    rule,
                    edb,
                    idb,
                    pinned,
                    depth + 1,
                    env,
                    probes,
                    out,
                    stats,
                    governor,
                    int,
                )?;
            }
            Ok(())
        }
        Literal::Eq(a, b) => match (eval_term(a, env, int), eval_term(b, env, int)) {
            (Some(x), Some(y)) => {
                if x == y {
                    search(
                        rule,
                        edb,
                        idb,
                        pinned,
                        depth + 1,
                        env,
                        probes,
                        out,
                        stats,
                        governor,
                        int,
                    )?;
                }
                Ok(())
            }
            (Some(x), None) => bind_and_continue(
                rule, edb, idb, pinned, depth, env, probes, out, stats, governor, int, b, x,
            ),
            (None, Some(y)) => bind_and_continue(
                rule, edb, idb, pinned, depth, env, probes, out, stats, governor, int, a, y,
            ),
            (None, None) => Ok(()),
        },
        Literal::Neq(a, b) => {
            if let (Some(x), Some(y)) = (eval_term(a, env, int), eval_term(b, env, int)) {
                if x != y {
                    search(
                        rule,
                        edb,
                        idb,
                        pinned,
                        depth + 1,
                        env,
                        probes,
                        out,
                        stats,
                        governor,
                        int,
                    )?;
                }
            }
            Ok(())
        }
        Literal::In(a, b) => {
            let Some(set) = eval_term(b, env, int) else {
                return Ok(());
            };
            let Some(elems) = int.set_elems(set).map(<[ValueId]>::to_vec) else {
                return Ok(());
            };
            match eval_term(a, env, int) {
                Some(x) => {
                    if int.set_contains(&elems, x) {
                        search(
                            rule,
                            edb,
                            idb,
                            pinned,
                            depth + 1,
                            env,
                            probes,
                            out,
                            stats,
                            governor,
                            int,
                        )?;
                    }
                    Ok(())
                }
                None => {
                    let DTerm::Var(v) = a else { return Ok(()) };
                    let mut result = Ok(());
                    for elem in elems {
                        env.insert(v.clone(), elem);
                        result = search(
                            rule,
                            edb,
                            idb,
                            pinned,
                            depth + 1,
                            env,
                            probes,
                            out,
                            stats,
                            governor,
                            int,
                        );
                        if result.is_err() {
                            break;
                        }
                    }
                    env.remove(v);
                    result
                }
            }
        }
        Literal::NotIn(a, b) => {
            if let (Some(x), Some(set)) = (eval_term(a, env, int), eval_term(b, env, int)) {
                if let Some(elems) = int.set_elems(set) {
                    if !int.set_contains(elems, x) {
                        search(
                            rule,
                            edb,
                            idb,
                            pinned,
                            depth + 1,
                            env,
                            probes,
                            out,
                            stats,
                            governor,
                            int,
                        )?;
                    }
                }
            }
            Ok(())
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn bind_and_continue(
    rule: &Rule,
    edb: &HashMap<String, IdRelation>,
    idb: &IdbI,
    pinned: Option<(usize, &IdRelation)>,
    depth: usize,
    env: &mut HashMap<String, ValueId>,
    probes: &mut Vec<Probe>,
    out: &mut IdbI,
    stats: &mut EvalStats,
    governor: &Governor,
    int: &Interner,
    target: &DTerm,
    value: ValueId,
) -> Result<(), ProgramError> {
    let DTerm::Var(v) = target else { return Ok(()) };
    env.insert(v.clone(), value);
    let result = search(
        rule,
        edb,
        idb,
        pinned,
        depth + 1,
        env,
        probes,
        out,
        stats,
        governor,
        int,
    );
    env.remove(v);
    result
}
#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{RelationSchema, Schema, Type, Universe, Value};

    fn graph(edges: &[(&str, &str)]) -> (Universe, Instance) {
        let mut u = Universe::new();
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let mut i = Instance::empty(schema);
        for (a, b) in edges {
            let (a, b) = (u.intern(a), u.intern(b));
            i.insert("G", vec![Value::Atom(a), Value::Atom(b)]);
        }
        (u, i)
    }

    fn tc_program() -> Program {
        let mut p = Program::new();
        p.declare("tc", vec![Type::Atom, Type::Atom]);
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("tc".into(), vec![DTerm::var("x"), DTerm::var("z")]),
                Literal::Pos("G".into(), vec![DTerm::var("z"), DTerm::var("y")]),
            ],
        );
        p
    }

    #[test]
    fn transitive_closure_naive() {
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let (idb, stats) = eval(&tc_program(), &i, Strategy::Naive).unwrap();
        assert_eq!(idb["tc"].len(), 6);
        assert!(stats.rounds >= 3);
    }

    #[test]
    fn naive_equals_seminaive_on_chains_and_cycles() {
        for edges in [
            vec![("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")],
            vec![("a", "b"), ("b", "a"), ("b", "c")],
            vec![("a", "a")],
            vec![],
        ] {
            let (_u, i) = graph(&edges);
            let (n, _) = eval(&tc_program(), &i, Strategy::Naive).unwrap();
            let (s, _) = eval(&tc_program(), &i, Strategy::SemiNaive).unwrap();
            assert_eq!(n, s, "edges {edges:?}");
        }
    }

    #[test]
    fn seminaive_does_less_work() {
        let edges: Vec<(String, String)> = (0..30)
            .map(|k| (format!("n{k}"), format!("n{}", k + 1)))
            .collect();
        let edge_refs: Vec<(&str, &str)> = edges
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let (_u, i) = graph(&edge_refs);
        let (_, naive) = eval(&tc_program(), &i, Strategy::Naive).unwrap();
        let (_, semi) = eval(&tc_program(), &i, Strategy::SemiNaive).unwrap();
        assert!(
            semi.joins * 2 < naive.joins,
            "semi {} vs naive {}",
            semi.joins,
            naive.joins
        );
    }

    #[test]
    fn negation_inflationary_semantics() {
        // unreach(x, y) :- node(x), node(y), !tc(x, y).
        // Evaluated inflationarily *with* tc rules: unreach snapshots
        // pairs while tc is still growing, so it ends up a superset of the
        // true complement — the paper's point that inflationary negation
        // is about *when* a fact is derived. We check the final state
        // contains at least the true complement.
        let (u, i) = graph(&[("a", "b"), ("b", "c")]);
        let mut p = tc_program();
        p.declare("node", vec![Type::Atom]);
        p.declare("unreach", vec![Type::Atom, Type::Atom]);
        p.rule(
            "node",
            vec![DTerm::var("x")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "node",
            vec![DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "unreach",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("node".into(), vec![DTerm::var("x")]),
                Literal::Pos("node".into(), vec![DTerm::var("y")]),
                Literal::Neg("tc".into(), vec![DTerm::var("x"), DTerm::var("y")]),
            ],
        );
        let (idb, _) = eval(&p, &i, Strategy::Naive).unwrap();
        let a = Value::Atom(u.get("a").unwrap());
        let c = Value::Atom(u.get("c").unwrap());
        // (c, a) is never reachable, so it must be in unreach
        assert!(idb["unreach"].contains(&[c.clone(), a.clone()]));
        // (a, c) IS reachable but was unreach-derived in round 1 before tc
        // closed — inflationary semantics keeps it
        assert!(idb["unreach"].contains(&[a, c]));
    }

    #[test]
    fn membership_generates_bindings() {
        // flatten(x) :- P(S), x in S.
        let su = Type::set(Type::Atom);
        let schema = Schema::from_relations([RelationSchema::new("P", vec![su])]);
        let mut u = Universe::new();
        let (a, b, c) = (u.intern("a"), u.intern("b"), u.intern("c"));
        let mut i = Instance::empty(schema);
        i.insert("P", vec![Value::set([Value::Atom(a), Value::Atom(b)])]);
        i.insert("P", vec![Value::set([Value::Atom(c)])]);
        let mut p = Program::new();
        p.declare("flat", vec![Type::Atom]);
        p.rule(
            "flat",
            vec![DTerm::var("x")],
            vec![
                Literal::Pos("P".into(), vec![DTerm::var("S")]),
                Literal::In(DTerm::var("x"), DTerm::var("S")),
            ],
        );
        let (idb, _) = eval(&p, &i, Strategy::SemiNaive).unwrap();
        assert_eq!(idb["flat"].len(), 3);
    }

    #[test]
    fn constants_filter() {
        let (u, i) = graph(&[("a", "b"), ("b", "c")]);
        let a = Value::Atom(u.get("a").unwrap());
        let mut p = Program::new();
        p.declare("from_a", vec![Type::Atom]);
        p.rule(
            "from_a",
            vec![DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::Const(a), DTerm::var("y")],
            )],
        );
        let (idb, _) = eval(&p, &i, Strategy::Naive).unwrap();
        assert_eq!(idb["from_a"].len(), 1);
    }

    #[test]
    fn neq_and_notin_filters() {
        let (u, i) = graph(&[("a", "b"), ("b", "b")]);
        let mut p = Program::new();
        p.declare("proper", vec![Type::Atom, Type::Atom]);
        p.rule(
            "proper",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("y")]),
                Literal::Neq(DTerm::var("x"), DTerm::var("y")),
            ],
        );
        let (idb, _) = eval(&p, &i, Strategy::SemiNaive).unwrap();
        assert_eq!(idb["proper"].len(), 1);
        assert!(idb["proper"].contains(&[
            Value::Atom(u.get("a").unwrap()),
            Value::Atom(u.get("b").unwrap())
        ]));
    }

    #[test]
    fn step_fuel_bounds_join_attempts() {
        use no_object::{BudgetKind, Limits};
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d")]);
        for strategy in [Strategy::Naive, Strategy::SemiNaive] {
            let g = Governor::new(Limits {
                max_steps: 10,
                ..Limits::unlimited()
            });
            match eval_governed(&tc_program(), &i, strategy, &g) {
                Err(ProgramError::Resource(e)) => {
                    assert_eq!(e.budget, BudgetKind::Steps, "{strategy:?}");
                    assert_eq!(e.site, "datalog.search");
                }
                other => panic!("{strategy:?}: expected step Resource error, got {other:?}"),
            }
        }
    }

    #[test]
    fn iteration_cap_bounds_rounds() {
        use no_object::{BudgetKind, Limits};
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]);
        let g = Governor::new(Limits {
            max_fixpoint_iters: 2,
            ..Limits::unlimited()
        });
        match eval_governed(&tc_program(), &i, Strategy::Naive, &g) {
            Err(ProgramError::Resource(e)) => {
                assert_eq!(e.budget, BudgetKind::FixpointIters);
                assert_eq!(e.site, "datalog.round");
            }
            other => panic!("expected iteration Resource error, got {other:?}"),
        }
    }

    #[test]
    fn memory_budget_bounds_derived_facts() {
        use no_object::{BudgetKind, Limits};
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let g = Governor::new(Limits {
            max_memory_bytes: 32,
            ..Limits::unlimited()
        });
        match eval_governed(&tc_program(), &i, Strategy::SemiNaive, &g) {
            Err(ProgramError::Resource(e)) => {
                assert_eq!(e.budget, BudgetKind::Memory);
                assert_eq!(e.site, "datalog.derive");
            }
            other => panic!("expected memory Resource error, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_evaluation() {
        let (_u, i) = graph(&[("a", "b")]);
        let g = Governor::default();
        g.cancel();
        match eval_governed(&tc_program(), &i, Strategy::Naive, &g) {
            Err(ProgramError::Resource(e)) => {
                assert_eq!(e.budget, no_object::BudgetKind::Cancelled)
            }
            other => panic!("expected cancellation error, got {other:?}"),
        }
    }

    #[test]
    fn pooled_matches_sequential() {
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("b", "a")]);
        let (seq, _) =
            eval_governed(&tc_program(), &i, Strategy::SemiNaive, &Governor::default()).unwrap();
        for threads in [2, 4] {
            for strategy in [Strategy::Naive, Strategy::SemiNaive] {
                let pool = ThreadPool::new(threads);
                let (par, _) =
                    eval_pooled(&tc_program(), &i, strategy, &Governor::default(), &pool).unwrap();
                assert_eq!(seq, par, "threads {threads} {strategy:?}");
            }
        }
    }

    #[test]
    fn empty_program_converges_immediately() {
        let (_u, i) = graph(&[("a", "b")]);
        let p = Program::new();
        let (idb, stats) = eval(&p, &i, Strategy::Naive).unwrap();
        assert!(idb.is_empty());
        assert_eq!(stats.rounds, 1);
    }
}
