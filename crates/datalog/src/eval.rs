//! Inflationary evaluation of Datalog¬ programs, naive and semi-naive.
//!
//! The inflationary semantics (`inf-Datalog¬` in Section 3) iterates the
//! immediate-consequence operator against the *current* database and
//! accumulates: `J_i = J_{i−1} ∪ T(J_{i−1})`. Negation is evaluated
//! against the current state, so no stratification is required and the
//! iteration always converges (facts only accumulate).
//!
//! Semi-naive evaluation exploits a monotonicity fact specific to the
//! inflationary semantics: relations only grow, so a rule body that newly
//! becomes satisfiable must use a fact derived in the previous round in a
//! *positive* literal. Each round therefore only joins rule bodies with at
//! least one delta-positive literal (after the first full round). The
//! `naive_equals_seminaive` tests check the equivalence, and benchmark
//! `datalog_seminaive` measures the speedup (a design-choice ablation from
//! DESIGN.md §6).

use crate::program::{DTerm, Literal, Program, ProgramError, Rule};
use no_object::{Governor, Instance, Relation, Value};
use std::collections::{BTreeMap, HashMap};

/// The computed IDB: relation name → facts.
pub type Idb = BTreeMap<String, Relation>;

/// Evaluation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds until convergence.
    pub rounds: usize,
    /// Total facts derived.
    pub facts: usize,
    /// Rule-body join attempts (work measure).
    pub joins: u64,
}

/// Evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Re-evaluate every rule against the full database each round.
    Naive,
    /// Only evaluate rules with a delta-positive literal after round one.
    SemiNaive,
}

/// Evaluate `program` on `instance` with inflationary semantics, under a
/// fresh default [`Governor`].
pub fn eval(
    program: &Program,
    instance: &Instance,
    strategy: Strategy,
) -> Result<(Idb, EvalStats), ProgramError> {
    eval_governed(program, instance, strategy, &Governor::default())
}

/// Evaluate `program` on `instance` with inflationary semantics under an
/// existing [`Governor`]: every rule-body join attempt costs one unit of
/// step fuel, every derived fact is charged against the memory budget, and
/// each fixpoint round is checked against the iteration cap.
pub fn eval_governed(
    program: &Program,
    instance: &Instance,
    strategy: Strategy,
    governor: &Governor,
) -> Result<(Idb, EvalStats), ProgramError> {
    program.validate(instance.schema())?;
    let mut idb: Idb = program
        .idb
        .keys()
        .map(|k| (k.clone(), Relation::new()))
        .collect();
    let mut delta: Idb = idb.clone();
    let mut stats = EvalStats::default();
    loop {
        stats.rounds += 1;
        governor.check_iters("datalog.round", stats.rounds as u64)?;
        let mut new_delta: Idb = program
            .idb
            .keys()
            .map(|k| (k.clone(), Relation::new()))
            .collect();
        let mut grew = false;
        for rule in &program.rules {
            let use_delta = strategy == Strategy::SemiNaive && stats.rounds > 1;
            if use_delta {
                // evaluate once per delta-positive literal occurrence,
                // pinning that literal to the delta relation
                let delta_positions: Vec<usize> = rule
                    .body
                    .iter()
                    .enumerate()
                    .filter_map(|(i, l)| match l {
                        Literal::Pos(name, _) if idb.contains_key(name) => Some(i),
                        _ => None,
                    })
                    .collect();
                for pos in delta_positions {
                    derive(
                        rule,
                        instance,
                        &idb,
                        Some((pos, &delta)),
                        &mut new_delta,
                        &mut stats,
                        governor,
                    )?;
                }
            } else {
                derive(
                    rule,
                    instance,
                    &idb,
                    None,
                    &mut new_delta,
                    &mut stats,
                    governor,
                )?;
            }
        }
        for (name, facts) in &new_delta {
            let target = idb.get_mut(name).expect("declared IDB");
            let mut fresh = Relation::new();
            for row in facts.iter() {
                if !target.contains(row) {
                    fresh.insert(row.clone());
                }
            }
            if !fresh.is_empty() {
                grew = true;
                target.absorb(&fresh);
            }
            new_delta_replace(&mut delta, name, fresh);
        }
        if !grew {
            break;
        }
    }
    stats.facts = idb.values().map(Relation::len).sum();
    Ok((idb, stats))
}

fn new_delta_replace(delta: &mut Idb, name: &str, fresh: Relation) {
    delta.insert(name.to_string(), fresh);
}

/// Evaluate one rule body by backtracking over literals left to right,
/// inserting derived head facts into `out`.
#[allow(clippy::too_many_arguments)]
fn derive(
    rule: &Rule,
    instance: &Instance,
    idb: &Idb,
    pinned: Option<(usize, &Idb)>,
    out: &mut Idb,
    stats: &mut EvalStats,
    governor: &Governor,
) -> Result<(), ProgramError> {
    let mut env: HashMap<String, Value> = HashMap::new();
    search(
        rule, instance, idb, pinned, 0, &mut env, out, stats, governor,
    )
}

fn lookup_rel<'a>(name: &str, instance: &'a Instance, idb: &'a Idb) -> Option<&'a Relation> {
    idb.get(name)
        .or_else(|| instance.schema().get(name).map(|_| instance.relation(name)))
}

fn eval_term(t: &DTerm, env: &HashMap<String, Value>) -> Option<Value> {
    match t {
        DTerm::Const(c) => Some(c.clone()),
        DTerm::Var(v) => env.get(v).cloned(),
    }
}

#[allow(clippy::too_many_arguments)]
fn search(
    rule: &Rule,
    instance: &Instance,
    idb: &Idb,
    pinned: Option<(usize, &Idb)>,
    depth: usize,
    env: &mut HashMap<String, Value>,
    out: &mut Idb,
    stats: &mut EvalStats,
    governor: &Governor,
) -> Result<(), ProgramError> {
    stats.joins += 1;
    governor.tick("datalog.search")?;
    if depth == rule.body.len() {
        // all literals satisfied: emit the head fact
        let row: Option<Vec<Value>> = rule.head_args.iter().map(|t| eval_term(t, env)).collect();
        if let Some(row) = row {
            let bytes: u64 = row.iter().map(Value::approx_bytes).sum();
            governor.charge_mem("datalog.derive", bytes)?;
            out.get_mut(&rule.head).expect("declared IDB").insert(row);
        }
        return Ok(());
    }
    let lit = &rule.body[depth];
    match lit {
        Literal::Pos(name, args) => {
            let rel = match pinned {
                Some((pos, delta)) if pos == depth => {
                    delta.get(name).expect("pinned literal is IDB")
                }
                _ => match lookup_rel(name, instance, idb) {
                    Some(r) => r,
                    None => return Ok(()),
                },
            };
            for row in rel.iter() {
                let mut bound_here: Vec<String> = Vec::new();
                let mut ok = true;
                for (arg, val) in args.iter().zip(row.iter()) {
                    match arg {
                        DTerm::Const(c) => {
                            if c != val {
                                ok = false;
                                break;
                            }
                        }
                        DTerm::Var(v) => match env.get(v) {
                            Some(existing) => {
                                if existing != val {
                                    ok = false;
                                    break;
                                }
                            }
                            None => {
                                env.insert(v.clone(), val.clone());
                                bound_here.push(v.clone());
                            }
                        },
                    }
                }
                let deeper = if ok {
                    search(
                        rule,
                        instance,
                        idb,
                        pinned,
                        depth + 1,
                        env,
                        out,
                        stats,
                        governor,
                    )
                } else {
                    Ok(())
                };
                for v in bound_here {
                    env.remove(&v);
                }
                deeper?;
            }
            Ok(())
        }
        Literal::Neg(name, args) => {
            let row: Option<Vec<Value>> = args.iter().map(|t| eval_term(t, env)).collect();
            let Some(row) = row else { return Ok(()) };
            let holds = lookup_rel(name, instance, idb)
                .map(|r| r.contains(&row))
                .unwrap_or(false);
            if !holds {
                search(
                    rule,
                    instance,
                    idb,
                    pinned,
                    depth + 1,
                    env,
                    out,
                    stats,
                    governor,
                )?;
            }
            Ok(())
        }
        Literal::Eq(a, b) => match (eval_term(a, env), eval_term(b, env)) {
            (Some(x), Some(y)) => {
                if x == y {
                    search(
                        rule,
                        instance,
                        idb,
                        pinned,
                        depth + 1,
                        env,
                        out,
                        stats,
                        governor,
                    )?;
                }
                Ok(())
            }
            (Some(x), None) => bind_and_continue(
                rule, instance, idb, pinned, depth, env, out, stats, governor, b, x,
            ),
            (None, Some(y)) => bind_and_continue(
                rule, instance, idb, pinned, depth, env, out, stats, governor, a, y,
            ),
            (None, None) => Ok(()),
        },
        Literal::Neq(a, b) => {
            if let (Some(x), Some(y)) = (eval_term(a, env), eval_term(b, env)) {
                if x != y {
                    search(
                        rule,
                        instance,
                        idb,
                        pinned,
                        depth + 1,
                        env,
                        out,
                        stats,
                        governor,
                    )?;
                }
            }
            Ok(())
        }
        Literal::In(a, b) => {
            let Some(Value::Set(set)) = eval_term(b, env) else {
                return Ok(());
            };
            match eval_term(a, env) {
                Some(x) => {
                    if set.contains(&x) {
                        search(
                            rule,
                            instance,
                            idb,
                            pinned,
                            depth + 1,
                            env,
                            out,
                            stats,
                            governor,
                        )?;
                    }
                    Ok(())
                }
                None => {
                    let DTerm::Var(v) = a else { return Ok(()) };
                    let mut result = Ok(());
                    for elem in set.iter() {
                        env.insert(v.clone(), elem.clone());
                        result = search(
                            rule,
                            instance,
                            idb,
                            pinned,
                            depth + 1,
                            env,
                            out,
                            stats,
                            governor,
                        );
                        if result.is_err() {
                            break;
                        }
                    }
                    env.remove(v);
                    result
                }
            }
        }
        Literal::NotIn(a, b) => {
            if let (Some(x), Some(Value::Set(set))) = (eval_term(a, env), eval_term(b, env)) {
                if !set.contains(&x) {
                    search(
                        rule,
                        instance,
                        idb,
                        pinned,
                        depth + 1,
                        env,
                        out,
                        stats,
                        governor,
                    )?;
                }
            }
            Ok(())
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn bind_and_continue(
    rule: &Rule,
    instance: &Instance,
    idb: &Idb,
    pinned: Option<(usize, &Idb)>,
    depth: usize,
    env: &mut HashMap<String, Value>,
    out: &mut Idb,
    stats: &mut EvalStats,
    governor: &Governor,
    target: &DTerm,
    value: Value,
) -> Result<(), ProgramError> {
    let DTerm::Var(v) = target else { return Ok(()) };
    env.insert(v.clone(), value);
    let result = search(
        rule,
        instance,
        idb,
        pinned,
        depth + 1,
        env,
        out,
        stats,
        governor,
    );
    env.remove(v);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{RelationSchema, Schema, Type, Universe};

    fn graph(edges: &[(&str, &str)]) -> (Universe, Instance) {
        let mut u = Universe::new();
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let mut i = Instance::empty(schema);
        for (a, b) in edges {
            let (a, b) = (u.intern(a), u.intern(b));
            i.insert("G", vec![Value::Atom(a), Value::Atom(b)]);
        }
        (u, i)
    }

    fn tc_program() -> Program {
        let mut p = Program::new();
        p.declare("tc", vec![Type::Atom, Type::Atom]);
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("tc".into(), vec![DTerm::var("x"), DTerm::var("z")]),
                Literal::Pos("G".into(), vec![DTerm::var("z"), DTerm::var("y")]),
            ],
        );
        p
    }

    #[test]
    fn transitive_closure_naive() {
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let (idb, stats) = eval(&tc_program(), &i, Strategy::Naive).unwrap();
        assert_eq!(idb["tc"].len(), 6);
        assert!(stats.rounds >= 3);
    }

    #[test]
    fn naive_equals_seminaive_on_chains_and_cycles() {
        for edges in [
            vec![("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")],
            vec![("a", "b"), ("b", "a"), ("b", "c")],
            vec![("a", "a")],
            vec![],
        ] {
            let (_u, i) = graph(&edges);
            let (n, _) = eval(&tc_program(), &i, Strategy::Naive).unwrap();
            let (s, _) = eval(&tc_program(), &i, Strategy::SemiNaive).unwrap();
            assert_eq!(n, s, "edges {edges:?}");
        }
    }

    #[test]
    fn seminaive_does_less_work() {
        let edges: Vec<(String, String)> = (0..30)
            .map(|k| (format!("n{k}"), format!("n{}", k + 1)))
            .collect();
        let edge_refs: Vec<(&str, &str)> = edges
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let (_u, i) = graph(&edge_refs);
        let (_, naive) = eval(&tc_program(), &i, Strategy::Naive).unwrap();
        let (_, semi) = eval(&tc_program(), &i, Strategy::SemiNaive).unwrap();
        assert!(
            semi.joins * 2 < naive.joins,
            "semi {} vs naive {}",
            semi.joins,
            naive.joins
        );
    }

    #[test]
    fn negation_inflationary_semantics() {
        // unreach(x, y) :- node(x), node(y), !tc(x, y).
        // Evaluated inflationarily *with* tc rules: unreach snapshots
        // pairs while tc is still growing, so it ends up a superset of the
        // true complement — the paper's point that inflationary negation
        // is about *when* a fact is derived. We check the final state
        // contains at least the true complement.
        let (u, i) = graph(&[("a", "b"), ("b", "c")]);
        let mut p = tc_program();
        p.declare("node", vec![Type::Atom]);
        p.declare("unreach", vec![Type::Atom, Type::Atom]);
        p.rule(
            "node",
            vec![DTerm::var("x")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "node",
            vec![DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "unreach",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("node".into(), vec![DTerm::var("x")]),
                Literal::Pos("node".into(), vec![DTerm::var("y")]),
                Literal::Neg("tc".into(), vec![DTerm::var("x"), DTerm::var("y")]),
            ],
        );
        let (idb, _) = eval(&p, &i, Strategy::Naive).unwrap();
        let a = Value::Atom(u.get("a").unwrap());
        let c = Value::Atom(u.get("c").unwrap());
        // (c, a) is never reachable, so it must be in unreach
        assert!(idb["unreach"].contains(&[c.clone(), a.clone()]));
        // (a, c) IS reachable but was unreach-derived in round 1 before tc
        // closed — inflationary semantics keeps it
        assert!(idb["unreach"].contains(&[a, c]));
    }

    #[test]
    fn membership_generates_bindings() {
        // flatten(x) :- P(S), x in S.
        let su = Type::set(Type::Atom);
        let schema = Schema::from_relations([RelationSchema::new("P", vec![su])]);
        let mut u = Universe::new();
        let (a, b, c) = (u.intern("a"), u.intern("b"), u.intern("c"));
        let mut i = Instance::empty(schema);
        i.insert("P", vec![Value::set([Value::Atom(a), Value::Atom(b)])]);
        i.insert("P", vec![Value::set([Value::Atom(c)])]);
        let mut p = Program::new();
        p.declare("flat", vec![Type::Atom]);
        p.rule(
            "flat",
            vec![DTerm::var("x")],
            vec![
                Literal::Pos("P".into(), vec![DTerm::var("S")]),
                Literal::In(DTerm::var("x"), DTerm::var("S")),
            ],
        );
        let (idb, _) = eval(&p, &i, Strategy::SemiNaive).unwrap();
        assert_eq!(idb["flat"].len(), 3);
    }

    #[test]
    fn constants_filter() {
        let (u, i) = graph(&[("a", "b"), ("b", "c")]);
        let a = Value::Atom(u.get("a").unwrap());
        let mut p = Program::new();
        p.declare("from_a", vec![Type::Atom]);
        p.rule(
            "from_a",
            vec![DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::Const(a), DTerm::var("y")],
            )],
        );
        let (idb, _) = eval(&p, &i, Strategy::Naive).unwrap();
        assert_eq!(idb["from_a"].len(), 1);
    }

    #[test]
    fn neq_and_notin_filters() {
        let (u, i) = graph(&[("a", "b"), ("b", "b")]);
        let mut p = Program::new();
        p.declare("proper", vec![Type::Atom, Type::Atom]);
        p.rule(
            "proper",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("G".into(), vec![DTerm::var("x"), DTerm::var("y")]),
                Literal::Neq(DTerm::var("x"), DTerm::var("y")),
            ],
        );
        let (idb, _) = eval(&p, &i, Strategy::SemiNaive).unwrap();
        assert_eq!(idb["proper"].len(), 1);
        assert!(idb["proper"].contains(&[
            Value::Atom(u.get("a").unwrap()),
            Value::Atom(u.get("b").unwrap())
        ]));
    }

    #[test]
    fn step_fuel_bounds_join_attempts() {
        use no_object::{BudgetKind, Limits};
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d")]);
        for strategy in [Strategy::Naive, Strategy::SemiNaive] {
            let g = Governor::new(Limits {
                max_steps: 10,
                ..Limits::unlimited()
            });
            match eval_governed(&tc_program(), &i, strategy, &g) {
                Err(ProgramError::Resource(e)) => {
                    assert_eq!(e.budget, BudgetKind::Steps, "{strategy:?}");
                    assert_eq!(e.site, "datalog.search");
                }
                other => panic!("{strategy:?}: expected step Resource error, got {other:?}"),
            }
        }
    }

    #[test]
    fn iteration_cap_bounds_rounds() {
        use no_object::{BudgetKind, Limits};
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]);
        let g = Governor::new(Limits {
            max_fixpoint_iters: 2,
            ..Limits::unlimited()
        });
        match eval_governed(&tc_program(), &i, Strategy::Naive, &g) {
            Err(ProgramError::Resource(e)) => {
                assert_eq!(e.budget, BudgetKind::FixpointIters);
                assert_eq!(e.site, "datalog.round");
            }
            other => panic!("expected iteration Resource error, got {other:?}"),
        }
    }

    #[test]
    fn memory_budget_bounds_derived_facts() {
        use no_object::{BudgetKind, Limits};
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let g = Governor::new(Limits {
            max_memory_bytes: 32,
            ..Limits::unlimited()
        });
        match eval_governed(&tc_program(), &i, Strategy::SemiNaive, &g) {
            Err(ProgramError::Resource(e)) => {
                assert_eq!(e.budget, BudgetKind::Memory);
                assert_eq!(e.site, "datalog.derive");
            }
            other => panic!("expected memory Resource error, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_stops_evaluation() {
        let (_u, i) = graph(&[("a", "b")]);
        let g = Governor::default();
        g.cancel();
        match eval_governed(&tc_program(), &i, Strategy::Naive, &g) {
            Err(ProgramError::Resource(e)) => {
                assert_eq!(e.budget, no_object::BudgetKind::Cancelled)
            }
            other => panic!("expected cancellation error, got {other:?}"),
        }
    }

    #[test]
    fn empty_program_converges_immediately() {
        let (_u, i) = graph(&[("a", "b")]);
        let p = Program::new();
        let (idb, stats) = eval(&p, &i, Strategy::Naive).unwrap();
        assert!(idb.is_empty());
        assert_eq!(stats.rounds, 1);
    }
}
