//! A minimal work-stealing thread pool built on `std::thread::scope`.
//!
//! The workspace has no crates.io access, so this vendored crate provides
//! the tiny slice of a rayon-like API the evaluators need:
//!
//! * [`ThreadPool::try_map`] — apply a fallible function to every element
//!   of a `Vec`, in parallel, returning results **in input order**;
//! * [`split`] / [`split_u64`] — partition an index space into contiguous,
//!   nearly-even chunks (the unit of work distribution).
//!
//! Design notes:
//!
//! * **Scoped tasks.** Workers are spawned inside `std::thread::scope`, so
//!   closures may borrow from the caller's stack — no `'static` bounds, no
//!   `Arc` plumbing for read-only inputs.
//! * **Work stealing.** Each worker owns a deque seeded with a contiguous
//!   block of input indices; it pops from the front of its own deque and,
//!   when empty, steals from the back of a sibling's. Contiguous seeding
//!   keeps cache locality for the common balanced case while stealing
//!   absorbs skew.
//! * **Determinism.** Results land in a slot table indexed by input
//!   position, so the output `Vec` order never depends on scheduling. With
//!   `threads <= 1` (or a single item) the map runs inline on the caller's
//!   thread in input order, making the sequential configuration bit-for-bit
//!   identical to a plain loop.
//! * **Errors.** On the first observed error the pool sets a stop flag;
//!   workers finish their in-flight item and exit. The reported error is
//!   the smallest-index failure among those observed (items after the flag
//!   is seen are simply never started, so a run is budget-bounded but the
//!   winning error is stable for deterministic single-failure workloads).
//! * **Panics.** A panicking task no longer poisons the pool's internal
//!   mutexes into a process-wide panic storm: the pool's locks recover
//!   poison, the panic is caught at the task boundary, remaining work is
//!   cancelled via the stop flag, and exactly one structured panic
//!   (`minipool: task <smallest index> panicked: <message>`) is re-raised
//!   after all workers have parked.
//!
//! All synchronisation goes through the `conc` shims: zero-cost
//! `std::sync` wrappers in release builds, and — under the `concheck`
//! feature — instrumented scheduling points for the deterministic-schedule
//! model checker plus lockdep lock-order recording (lock classes
//! `minipool.deque`, `minipool.slot`, `minipool.result`,
//! `minipool.error`, `minipool.panic`).

use conc::{AtomicBool, Mutex};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;

/// Planted-bug switch for the concurrency sanitizer's self-validation:
/// when enabled, workers re-acquire the PR 5 ABBA steal order (holding
/// their own deque's lock while locking a sibling's). Both analyses —
/// lockdep (`CC001` self-cycle on `minipool.deque`) and the model checker
/// (`CC002` deadlocking schedule) — must catch it. Test-only; the switch
/// and the buggy path do not exist in release builds.
#[cfg(feature = "concheck")]
static ABBA_STEAL: AtomicBool = AtomicBool::new(false);

/// Enable or disable the planted ABBA steal order (see [`ABBA_STEAL`]).
/// Only compiled under `concheck`; callers must reset it to `false` when
/// done.
#[cfg(feature = "concheck")]
pub fn set_abba_steal(on: bool) {
    ABBA_STEAL.store(on, Ordering::SeqCst);
}

/// A handle describing how much parallelism to use.
///
/// The pool itself is stateless between calls — threads are spawned per
/// [`try_map`](ThreadPool::try_map) invocation via `std::thread::scope` and
/// joined before it returns, so a `ThreadPool` is cheap to clone and store.
#[derive(Clone, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool that runs `threads` workers. Clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// A pool that always runs inline on the caller's thread.
    pub fn sequential() -> Self {
        ThreadPool { threads: 1 }
    }

    /// The configured worker count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item, in parallel, returning the results in input
    /// order. Stops early on the first error (see module docs for which
    /// error wins when several workers fail concurrently).
    ///
    /// With `threads() <= 1` or fewer than two items this runs inline on
    /// the caller's thread, left to right — bit-for-bit identical to a
    /// sequential loop.
    pub fn try_map<T, R, E>(
        &self,
        items: Vec<T>,
        f: impl Fn(T) -> Result<R, E> + Sync,
    ) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send,
    {
        let len = items.len();
        let workers = self.threads.min(len);
        if workers <= 1 {
            let mut out = Vec::with_capacity(len);
            for item in items {
                out.push(f(item)?);
            }
            return Ok(out);
        }

        let slots: Vec<Mutex<Option<T>>> = items
            .into_iter()
            .map(|t| Mutex::new_named("minipool.slot", Some(t)))
            .collect();
        let results: Vec<Mutex<Option<R>>> = (0..len)
            .map(|_| Mutex::new_named("minipool.result", None))
            .collect();
        let error: Mutex<Option<(usize, E)>> = Mutex::new_named("minipool.error", None);
        let panicked: Mutex<Option<(usize, String)>> = Mutex::new_named("minipool.panic", None);
        let stop = AtomicBool::new(false);
        let queues: Vec<Mutex<VecDeque<usize>>> = split(len, workers)
            .into_iter()
            .map(|r| Mutex::new_named("minipool.deque", r.collect()))
            .collect();

        let pop_job = |me: usize| -> Option<usize> {
            #[cfg(feature = "concheck")]
            if ABBA_STEAL.load(Ordering::Relaxed) {
                // Planted PR 5 bug: hold our own deque's guard across the
                // steal. Two workers stealing from each other deadlock.
                let mut own = queues[me].lock();
                return own.pop_front().or_else(|| {
                    (0..queues.len())
                        .filter(|&k| k != me)
                        .find_map(|k| queues[k].lock().pop_back())
                });
            }
            // Pop in its own statement so the guard on our deque drops
            // before stealing: holding it while locking a sibling's deque
            // deadlocks when two workers steal from each other at once.
            let own = queues[me].lock().pop_front();
            own.or_else(|| {
                // Own deque empty: steal from the back of a sibling's.
                (0..queues.len())
                    .filter(|&k| k != me)
                    .find_map(|k| queues[k].lock().pop_back())
            })
        };

        let worker = |me: usize| loop {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let Some(job) = pop_job(me) else { return };
            let Some(item) = slots[job].lock().take() else {
                continue;
            };
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(Ok(r)) => *results[job].lock() = Some(r),
                Ok(Err(e)) => {
                    let mut slot = error.lock();
                    match &*slot {
                        Some((prev, _)) if *prev <= job => {}
                        _ => *slot = Some((job, e)),
                    }
                    stop.store(true, Ordering::Relaxed);
                }
                Err(payload) => {
                    // Task panicked. Record the smallest-index panic as a
                    // structured error and cancel remaining work; the
                    // pool's own locks recover poison, so nothing
                    // cascades. Non-string payloads (including the model
                    // checker's schedule-abort token) pass through raw.
                    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        resume_unwind(payload);
                    };
                    let mut slot = panicked.lock();
                    match &*slot {
                        Some((prev, _)) if *prev <= job => {}
                        _ => *slot = Some((job, msg)),
                    }
                    drop(slot);
                    stop.store(true, Ordering::Relaxed);
                }
            }
        };

        conc::thread::scope(|s| {
            let worker = &worker;
            for me in 1..workers {
                conc::thread::spawn_scoped(s, move || worker(me));
            }
            worker(0);
            conc::thread::await_children();
        });

        if let Some((idx, msg)) = panicked.into_inner() {
            panic!("minipool: task {idx} panicked: {msg} (smallest panicking index; remaining work was cancelled)");
        }
        if let Some((_, e)) = error.into_inner() {
            return Err(e);
        }
        Ok(results
            .into_iter()
            .map(|m| m.into_inner().expect("no error ⇒ every slot ran"))
            .collect())
    }

    /// Infallible variant of [`try_map`](ThreadPool::try_map).
    pub fn map<T, R>(&self, items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        enum Never {}
        match self.try_map(items, |t| Ok::<R, Never>(f(t))) {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }
}

/// Partition `0..len` into at most `parts` contiguous, nearly-even,
/// non-empty ranges. The concatenation of the ranges is exactly `0..len`.
pub fn split(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.max(1).min(len);
    let mut out = Vec::with_capacity(parts);
    let (base, extra) = (len / parts, len % parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// [`split`] over a `u64` index space (used for powerset bitmask ranges,
/// which can exceed `usize` expressiveness concerns on 32-bit hosts).
pub fn split_u64(len: u64, parts: u64) -> Vec<Range<u64>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.max(1).min(len);
    let mut out = Vec::with_capacity(parts as usize);
    let (base, extra) = (len / parts, len % parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + u64::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use conc::AtomicUsize;

    #[test]
    fn split_covers_exactly() {
        for len in 0..40usize {
            for parts in 1..10usize {
                let ranges = split(len, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, len);
                assert!(ranges.len() <= parts);
            }
        }
    }

    #[test]
    fn split_u64_covers_exactly() {
        let ranges = split_u64(1 << 20, 8);
        assert_eq!(ranges.len(), 8);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 1 << 20);
    }

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let items: Vec<usize> = (0..1000).collect();
            let out = pool.map(items, |x| x * 2);
            assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_map_reports_smallest_observed_error() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let err = pool
            .try_map(items, |x| if x == 37 { Err(x) } else { Ok(x) })
            .unwrap_err();
        assert_eq!(err, 37);
    }

    #[test]
    fn try_map_runs_inline_when_sequential() {
        let pool = ThreadPool::sequential();
        let main = std::thread::current().id();
        let out = pool
            .try_map(vec![1, 2, 3], |x| {
                assert_eq!(std::thread::current().id(), main);
                Ok::<_, ()>(x + 1)
            })
            .unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn error_stops_remaining_work() {
        let pool = ThreadPool::new(4);
        let started = AtomicUsize::new(0);
        let items: Vec<usize> = (0..10_000).collect();
        let res = pool.try_map(items, |x| {
            started.fetch_add(1, Ordering::Relaxed);
            if x == 0 {
                Err(())
            } else {
                Ok(x)
            }
        });
        assert!(res.is_err());
        // Workers drain at most their in-flight item after the stop flag;
        // the vast majority of the input is never started.
        assert!(started.load(Ordering::Relaxed) < 10_000);
    }

    #[test]
    fn stealing_balances_skewed_work() {
        // One block is much more expensive; stealing must still finish and
        // preserve order.
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let out = pool.map(items, |x| {
            if x < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    /// Regression: a panicking task must surface as exactly one
    /// structured panic, and the pool must remain fully usable afterwards
    /// — previously the panic poisoned the shared result/error mutexes
    /// and every later `.lock().unwrap()` cascaded.
    #[test]
    fn task_panic_is_structured_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map(items, |x| {
                if x == 7 {
                    panic!("boom at {x}");
                }
                x
            })
        }))
        .expect_err("task panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .expect("structured panic is a String");
        assert!(
            msg.contains("minipool: task") && msg.contains("panicked: boom at"),
            "unstructured panic: {msg}"
        );
        // Exactly one index is reported, and it is a panicking one.
        assert!(msg.contains("boom at 7") || !msg.contains("boom at 7 boom"));
        // The pool (and fresh mutexes) work fine on the next call.
        let out = pool.map((0..32).collect::<Vec<usize>>(), |x| x * 2);
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }

    /// Regression: when several tasks panic concurrently, the reported
    /// index is the smallest observed one (mirrors the error contract).
    #[test]
    fn panic_reports_smallest_observed_index() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..256).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map(items, |x| {
                if x % 2 == 0 {
                    panic!("even {x}");
                }
                x
            })
        }))
        .expect_err("panics must propagate");
        let msg = caught.downcast_ref::<String>().unwrap();
        // With every even index panicking, whichever panic is recorded
        // first can only be displaced by a smaller index; index 0 is in
        // worker 0's own deque, so the winner is always small and even.
        let idx: usize = msg
            .split("task ")
            .nth(1)
            .and_then(|r| r.split(' ').next())
            .and_then(|n| n.parse().ok())
            .expect("message names an index");
        assert_eq!(idx % 2, 0, "{msg}");
    }

    /// Regression: workers must release their own deque's lock *before*
    /// stealing. Holding it across the steal deadlocked two workers that
    /// emptied their deques simultaneously (each holding its own lock,
    /// each waiting on the other's). Tiny inputs with trivial work make
    /// simultaneous stealing likely; hammer enough rounds that the old
    /// code locked up well within the suite timeout.
    #[test]
    fn concurrent_stealing_does_not_deadlock() {
        for workers in [2usize, 4] {
            let pool = ThreadPool::new(workers);
            for round in 0..500 {
                let items: Vec<usize> = (0..workers * 2).collect();
                let out = pool.map(items, |x| x + round);
                assert_eq!(out.len(), workers * 2);
            }
        }
    }
}
