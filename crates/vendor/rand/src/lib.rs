//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the minimal API surface it actually consumes: a seedable deterministic
//! generator (`rngs::StdRng`) with [`SeedableRng::seed_from_u64`] and
//! [`Rng::random_bool`]. The generator is a SplitMix64 stream — statistically
//! fine for test-instance generation, NOT cryptographic, and intentionally
//! stable across runs so seeded instance families stay reproducible.

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface used by this workspace.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits are plenty for instance generation.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    fn random_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "random_below(0)");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
        // irrelevant for test data.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = StdRng::seed_from_u64(7);
        assert!(r.random_bool(1.0));
        assert!(!r.random_bool(0.0));
        let hits = (0..1000).filter(|_| r.random_bool(0.5)).count();
        assert!((350..650).contains(&hits), "suspicious bias: {hits}");
    }
}
