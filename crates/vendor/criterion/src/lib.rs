//! Offline stand-in for the `criterion` bench harness.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! subset of the criterion API its benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_with_input`,
//! `bench_function`, `BenchmarkId`, `Bencher::iter`). Instead of statistical
//! sampling it times a small fixed number of iterations and prints the mean —
//! enough to compare orders of magnitude and to keep `cargo bench` / bench
//! compilation working offline. Passing `--test` (as `cargo test --benches`
//! does) runs every closure exactly once without timing output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        let function_name = function_name.into();
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Mean wall-clock time per iteration, recorded by [`Bencher::iter`].
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Run the routine `self.iters` times and record the mean duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed() / self.iters.max(1);
    }
}

/// Top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` executes harness=false targets with `--test`;
        // run each routine once, skip timing noise.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sampling-count hint; retained for API compatibility only.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: if self.test_mode { 1 } else { 3 },
        };
        f(&mut b);
        if !self.test_mode {
            let label = if self.name.is_empty() {
                id.name.clone()
            } else {
                format!("{}/{}", self.name, id.name)
            };
            println!("{label:<48} {:>14.3?} /iter", b.elapsed);
        }
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut ran = 0;
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3, |b, n| {
            b.iter(|| ran += *n);
        });
        group.finish();
        assert_eq!(ran, 3);
    }
}
