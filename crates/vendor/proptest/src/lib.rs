//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice of the proptest API its tests use: the [`strategy::Strategy`] trait
//! with `prop_map` / `prop_flat_map` / `boxed`, integer-range / tuple / vec
//! strategies, [`strategy::Just`], weighted [`prop_oneof!`], `any::<T>()`,
//! `prop::collection::vec`, `prop::sample::select`, a small regex-subset
//! string strategy, and the [`proptest!`] / `prop_assert*!` / [`prop_assume!`]
//! macros.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! test-only stand-in:
//!
//! * **No shrinking** — a failing case reports the panic directly. Seeds are
//!   derived deterministically from the test path and case index, so every
//!   failure reproduces exactly under `cargo test`.
//! * **No persistence** — `proptest-regressions` files are not read; the
//!   deterministic seeding makes every run cover the same cases anyway.
//! * Failed assertions panic immediately (same observable effect: the test
//!   fails and prints the offending values via `assert_eq!` formatting).

use std::rc::Rc;

/// Deterministic SplitMix64 stream driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u128) -> u128 {
        assert!(n > 0, "below(0)");
        if n == 1 {
            return 0;
        }
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n
    }
}

/// FNV-1a hash of a test path — the deterministic base seed.
pub fn __fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer used to decorrelate per-case seeds.
pub fn __mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod test_runner {
    use std::fmt;

    /// Error type for a failed case. The stub never constructs one (failed
    /// assertions panic directly), but test bodies `return Ok(())` against
    /// this type for early case exit, matching real proptest.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-`proptest!` block configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    /// A generator of values of `Self::Value`.
    ///
    /// Object-safe core (`generate`) plus `Self: Sized` combinators, so
    /// `Rc<dyn Strategy<Value = T>>` works as the boxed form.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Clonable type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between boxed alternatives — the `prop_oneof!` target.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs a positive weight"
            );
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total as u128) as u64;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + rng.below(span as u128) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    (lo as i128 + rng.below(span as u128) as i128) as $t
                }
            }
        )+};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// A `Vec` of strategies generates element-wise (used for tuple values
    /// built from per-component strategies).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// `&'static str` regex-subset strategy: literals, `\`-escapes, `[...]`
    /// classes (with ranges), and `{m}` / `{m,n}` / `*` / `+` / `?`
    /// quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let pieces = super::string::parse_pattern(self);
            let mut out = String::new();
            for p in &pieces {
                let n = p.min + rng.below((p.max - p.min + 1) as u128) as usize;
                for _ in 0..n {
                    out.push(p.chars[rng.below(p.chars.len() as u128) as usize]);
                }
            }
            out
        }
    }
}

pub(crate) mod string {
    /// One regex element: a set of candidate chars and a repetition range.
    pub struct Piece {
        pub chars: Vec<char>,
        pub min: usize,
        pub max: usize,
    }

    /// Parse the supported regex subset; panics on anything else so an
    /// unsupported pattern fails loudly at test time rather than silently
    /// generating garbage.
    pub fn parse_pattern(pat: &str) -> Vec<Piece> {
        let mut chars = pat.chars().peekable();
        let mut pieces: Vec<Piece> = Vec::new();
        while let Some(c) = chars.next() {
            let set: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        match chars.next() {
                            None => panic!("unterminated char class in {pat:?}"),
                            Some(']') => break,
                            Some('\\') => {
                                set.push(
                                    chars
                                        .next()
                                        .unwrap_or_else(|| panic!("dangling escape in {pat:?}")),
                                );
                            }
                            Some(lo) => {
                                if chars.peek() == Some(&'-') {
                                    chars.next();
                                    match chars.next() {
                                        Some(']') | None => {
                                            set.push(lo);
                                            set.push('-');
                                            break;
                                        }
                                        Some(hi) => {
                                            for u in lo as u32..=hi as u32 {
                                                if let Some(ch) = char::from_u32(u) {
                                                    set.push(ch);
                                                }
                                            }
                                        }
                                    }
                                } else {
                                    set.push(lo);
                                }
                            }
                        }
                    }
                    set
                }
                '\\' => {
                    let e = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in {pat:?}"));
                    vec![e]
                }
                '{' | '}' | '*' | '+' | '?' => {
                    panic!("quantifier {c:?} without preceding element in {pat:?}")
                }
                lit => vec![lit],
            };
            assert!(!set.is_empty(), "empty char class in {pat:?}");
            // optional quantifier
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut body = String::new();
                    loop {
                        match chars.next() {
                            None => panic!("unterminated quantifier in {pat:?}"),
                            Some('}') => break,
                            Some(d) => body.push(d),
                        }
                    }
                    let parts: Vec<&str> = body.split(',').collect();
                    let parse = |s: &str| {
                        s.trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| panic!("bad quantifier {body:?} in {pat:?}"))
                    };
                    match parts.as_slice() {
                        [m] => (parse(m), parse(m)),
                        [m, ""] => (parse(m), parse(m) + 8),
                        [m, n] => (parse(m), parse(n)),
                        _ => panic!("bad quantifier {body:?} in {pat:?}"),
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "inverted quantifier in {pat:?}");
            pieces.push(Piece {
                chars: set,
                min,
                max,
            });
        }
        pieces
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u64>()` etc).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Inclusive element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u128) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u128) as usize].clone()
        }
    }

    /// Uniform choice from a non-empty vector.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs a non-empty pool");
        Select { items }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

// Re-exported so BoxedStrategy is nameable from the crate root too.
pub use strategy::{BoxedStrategy, Strategy};

#[doc(hidden)]
pub fn __case_seed(test_path_hash: u64, case: u64) -> u64 {
    test_path_hash ^ __mix(case.wrapping_add(1))
}

/// Type-erasure helper: `Rc`-wrap a strategy (mirrors `.boxed()`).
pub fn rc_strategy<T, S: Strategy<Value = T> + 'static>(s: S) -> Rc<dyn Strategy<Value = T>> {
    Rc::new(s)
}

/// Weighted or unweighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Assertion macros: identical to `assert*!` (no shrinking to report through).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skip the current case when a precondition fails. Case bodies run inside a
/// `Result`-returning closure, so this exits the case early as a pass.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ($($p:pat_param in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __base = $crate::__fnv(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new($crate::__case_seed(__base, __case as u64));
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("case {} failed: {}", __case, e);
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// The `proptest!` entry point. Supports the block form (optionally with
/// `#![proptest_config(...)]`) and the closure form
/// `proptest!(|(x in strat)| { ... })`.
#[macro_export]
macro_rules! proptest {
    (|($($p:pat_param in $s:expr),+ $(,)?)| $body:expr) => {{
        let __cfg = $crate::test_runner::ProptestConfig::default();
        let __base = $crate::__fnv(concat!(module_path!(), "::closure@", line!()));
        for __case in 0..__cfg.cases {
            let mut __rng = $crate::TestRng::new($crate::__case_seed(__base, __case as u64));
            $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
            let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| {
                    $body;
                    ::std::result::Result::Ok(())
                })();
            if let ::std::result::Result::Err(e) = __outcome {
                panic!("case {} failed: {}", __case, e);
            }
        }
    }};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let v = Strategy::generate(&(3u32..7), &mut rng);
            assert!((3..7).contains(&v));
        }
        let vs = prop::collection::vec(0usize..5, 2..=4);
        for _ in 0..100 {
            let v = Strategy::generate(&vs, &mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    #[test]
    fn oneof_weights_and_boxing() {
        let s: crate::strategy::Union<u32> = prop_oneof![
            3 => Just(1u32),
            1 => (10u32..20).prop_map(|x| x),
        ];
        let mut rng = crate::TestRng::new(2);
        let mut ones = 0;
        for _ in 0..400 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (10..20).contains(&v));
            if v == 1 {
                ones += 1;
            }
        }
        assert!(ones > 200, "weighting off: {ones}/400");
    }

    #[test]
    fn string_regex_subset() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let s = Strategy::generate(&"[01]{0,12}", &mut rng);
            assert!(s.len() <= 12 && s.chars().all(|c| c == '0' || c == '1'));
            let t = Strategy::generate(&"[01#{}\\[\\]]{0,14}", &mut rng);
            assert!(t.len() <= 14 && t.chars().all(|c| "01#{}[]".contains(c)));
            let u = Strategy::generate(&"[a-c]x{2}", &mut rng);
            assert_eq!(u.len(), 3);
            assert!(u.starts_with(['a', 'b', 'c']) && u.ends_with("xx"));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Block-form macro parses metas, mut patterns, and assume/assert.
        #[test]
        fn macro_block_form(mut xs in prop::collection::vec(0u64..10, 0..5), y in any::<u64>()) {
            prop_assume!(!xs.is_empty());
            xs.push(y % 10);
            prop_assert!(xs.iter().all(|x| *x < 10));
            prop_assert_eq!(xs.last().copied(), Some(y % 10), "tail {}", y);
        }
    }

    #[test]
    fn macro_closure_form() {
        let bound = 6u32;
        proptest!(|(v in (0u32..bound), w in Just(9u8))| {
            assert!(v < bound);
            assert_eq!(w, 9);
        });
    }

    #[test]
    fn flat_map_and_select() {
        let pool = vec!["a".to_string(), "b".to_string()];
        let s = prop::sample::select(pool.clone())
            .prop_flat_map(move |x| {
                let pool = pool.clone();
                prop::sample::select(pool).prop_map(move |y| format!("{x}{y}"))
            })
            .boxed();
        let cloned = s.clone();
        let mut rng = crate::TestRng::new(4);
        for _ in 0..50 {
            let v = cloned.generate(&mut rng);
            assert_eq!(v.len(), 2);
            assert!(v.chars().all(|c| c == 'a' || c == 'b'));
        }
    }
}
