//! Row predicates for the columnar select kernel.
//!
//! [`RowPred`] mirrors the algebra's `Pred` shape (equality between
//! columns, equality with a constant, membership, subset, and the boolean
//! connectives) but over **0-based** columns and carrying constants as
//! plain values: an execution plan is built once and executed against a
//! fresh interner each run, so constants are interned per execution by
//! [`RowPred::compile`], after which evaluation is pure id work.

use crate::table::ColumnTable;
use no_object::{Interner, Value, ValueId};

/// A predicate over one row of a [`ColumnTable`], columns 0-based.
#[derive(Clone, Debug, PartialEq)]
pub enum RowPred {
    /// Column = column.
    EqCols(usize, usize),
    /// Column = constant.
    EqConst(usize, Value),
    /// Column ∈ column (element, set).
    InCols(usize, usize),
    /// Column ⊆ column.
    SubsetCols(usize, usize),
    /// Negation.
    Not(Box<RowPred>),
    /// Conjunction.
    And(Box<RowPred>, Box<RowPred>),
    /// Disjunction.
    Or(Box<RowPred>, Box<RowPred>),
}

impl RowPred {
    /// `self ∧ other`.
    pub fn and(self, other: RowPred) -> RowPred {
        RowPred::And(Box::new(self), Box::new(other))
    }

    /// Intern every constant, producing the id-level form evaluated by
    /// the select kernel.
    pub fn compile(&self, int: &Interner) -> CompiledPred {
        match self {
            RowPred::EqCols(a, b) => CompiledPred::EqCols(*a, *b),
            RowPred::EqConst(c, v) => CompiledPred::EqConst(*c, int.intern(v)),
            RowPred::InCols(a, b) => CompiledPred::InCols(*a, *b),
            RowPred::SubsetCols(a, b) => CompiledPred::SubsetCols(*a, *b),
            RowPred::Not(p) => CompiledPred::Not(Box::new(p.compile(int))),
            RowPred::And(a, b) => {
                CompiledPred::And(Box::new(a.compile(int)), Box::new(b.compile(int)))
            }
            RowPred::Or(a, b) => {
                CompiledPred::Or(Box::new(a.compile(int)), Box::new(b.compile(int)))
            }
        }
    }
}

/// [`RowPred`] with constants resolved to ids of one interner.
#[derive(Clone, Debug)]
pub enum CompiledPred {
    /// Column = column.
    EqCols(usize, usize),
    /// Column = interned constant.
    EqConst(usize, ValueId),
    /// Column ∈ column.
    InCols(usize, usize),
    /// Column ⊆ column.
    SubsetCols(usize, usize),
    /// Negation.
    Not(Box<CompiledPred>),
    /// Conjunction.
    And(Box<CompiledPred>, Box<CompiledPred>),
    /// Disjunction.
    Or(Box<CompiledPred>, Box<CompiledPred>),
}

impl CompiledPred {
    /// Evaluate against row `i` of `t`.
    pub fn eval(&self, t: &ColumnTable, i: usize, int: &Interner) -> bool {
        match self {
            CompiledPred::EqCols(a, b) => t.col(*a)[i] == t.col(*b)[i],
            CompiledPred::EqConst(c, id) => t.col(*c)[i] == *id,
            CompiledPred::InCols(a, b) => int
                .set_elems(t.col(*b)[i])
                .is_some_and(|elems| int.set_contains(elems, t.col(*a)[i])),
            CompiledPred::SubsetCols(a, b) => {
                match (int.set_elems(t.col(*a)[i]), int.set_elems(t.col(*b)[i])) {
                    (Some(xs), Some(ys)) => int.set_is_subset(xs, ys),
                    _ => false,
                }
            }
            CompiledPred::Not(p) => !p.eval(t, i, int),
            CompiledPred::And(a, b) => a.eval(t, i, int) && b.eval(t, i, int),
            CompiledPred::Or(a, b) => a.eval(t, i, int) || b.eval(t, i, int),
        }
    }
}
