//! Columnar physical operators.
//!
//! Every kernel consumes and produces *canonical* [`ColumnTable`]s (see
//! [`crate::table`]), so for one interner the output of an operator is a
//! unique bit pattern: hash-join, merge-join, and nested-loop produce the
//! **identical** table for the same inputs, regardless of thread count or
//! hash-map iteration order — the property the differential fuzzer
//! asserts with `==`.
//!
//! The join kernels all reduce to the same two steps: enumerate the set of
//! matching `(left row, right row)` index pairs — by exhaustive pairing
//! (nested loop), by probing a key index built on one side (hash), or by
//! merging both sides' sorted permutations (merge) — then sort the pairs
//! and materialize them column-wise. Since each input is sorted and
//! duplicate-free, pair order `(i, j)` *is* raw-id lexicographic row
//! order, so the materialized table is canonical by construction.
//!
//! Governor accounting is block-batched through [`BlockMeter`]: one step
//! per row scanned, probed, or pair considered, and the engines' standard
//! `8 × arity` bytes per materialized row, flushed per
//! [`crate::meter::BLOCK`].

use crate::meter::BlockMeter;
use crate::pred::RowPred;
use crate::table::ColumnTable;
use minipool::{split, ThreadPool};
use no_object::{Governor, Interner, ResourceError, ValueId};
use std::cmp::Ordering;

/// Probe sides at or above this row count fan out across the pool.
const PARALLEL_PROBE_MIN: usize = 4096;

/// The physical join algorithm to run, chosen by the planner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Exhaustive pairing; right for tiny inputs (no build cost).
    NestedLoop,
    /// Build a key index on one side, probe with the other.
    Hash {
        /// Build on the left input (probe with the right) when true.
        build_left: bool,
    },
    /// Sort both sides by key and merge aligned groups; right for
    /// duplicate-heavy keys where hash buckets degenerate.
    Merge,
}

impl JoinAlgo {
    /// Short display form used in `:explain` notes.
    pub fn label(&self) -> String {
        match self {
            JoinAlgo::NestedLoop => "NestedLoopJoin".to_string(),
            JoinAlgo::Hash { build_left } => format!(
                "HashJoin(build={})",
                if *build_left { "left" } else { "right" }
            ),
            JoinAlgo::Merge => "MergeJoin".to_string(),
        }
    }
}

/// σ — keep the rows satisfying `pred`.
pub fn select(
    t: &ColumnTable,
    pred: &RowPred,
    int: &Interner,
    gov: &Governor,
) -> Result<ColumnTable, ResourceError> {
    let compiled = pred.compile(int);
    let mut m = BlockMeter::new(gov, "exec.select");
    let mut keep: Vec<u32> = Vec::new();
    for i in 0..t.len() {
        m.work(1)?;
        if compiled.eval(t, i, int) {
            keep.push(i as u32);
        }
    }
    m.rows(keep.len() as u64, t.arity())?;
    m.finish()?;
    // `keep` is ascending, so the filtered table stays canonical.
    Ok(t.gathered(&keep))
}

/// π — project to `cols` (0-based; may repeat or reorder), re-canonicalizing.
pub fn project(
    t: &ColumnTable,
    cols: &[usize],
    gov: &Governor,
) -> Result<ColumnTable, ResourceError> {
    let mut m = BlockMeter::new(gov, "exec.project");
    m.rows(t.len() as u64, cols.len())?;
    let mut out = ColumnTable::empty(cols.len());
    let mut row: Vec<ValueId> = Vec::with_capacity(cols.len());
    for i in 0..t.len() {
        row.clear();
        row.extend(cols.iter().map(|&c| t.col(c)[i]));
        out.push_row(&row);
    }
    out.canonicalize();
    m.finish()?;
    Ok(out)
}

/// ∪ — merge two canonical tables, deduplicating.
pub fn union(
    a: &ColumnTable,
    b: &ColumnTable,
    gov: &Governor,
) -> Result<ColumnTable, ResourceError> {
    merge_setop(a, b, gov, "exec.union", |ord| match ord {
        Ordering::Less => (true, false),
        Ordering::Greater => (false, true),
        Ordering::Equal => (true, false),
    })
}

/// ∖ — rows of `a` not in `b`.
pub fn difference(
    a: &ColumnTable,
    b: &ColumnTable,
    gov: &Governor,
) -> Result<ColumnTable, ResourceError> {
    merge_setop(a, b, gov, "exec.difference", |ord| match ord {
        Ordering::Less => (true, false),
        Ordering::Greater => (false, false),
        Ordering::Equal => (false, false),
    })
}

/// ∩ — rows in both.
pub fn intersect(
    a: &ColumnTable,
    b: &ColumnTable,
    gov: &Governor,
) -> Result<ColumnTable, ResourceError> {
    merge_setop(a, b, gov, "exec.intersect", |ord| match ord {
        Ordering::Less => (false, false),
        Ordering::Greater => (false, false),
        Ordering::Equal => (true, false),
    })
}

/// Shared sorted-merge walk. `decide(cmp(a_row, b_row))` returns
/// `(emit_a_row, emit_b_row)` for the smaller (or equal) head; both
/// cursors advance on `Equal`, the smaller side otherwise. Tail handling:
/// union keeps both tails, difference keeps `a`'s tail, intersect drops
/// both — encoded by `decide(Less)` for `a`'s tail and `decide(Greater)`
/// for `b`'s.
fn merge_setop(
    a: &ColumnTable,
    b: &ColumnTable,
    gov: &Governor,
    site: &'static str,
    decide: impl Fn(Ordering) -> (bool, bool),
) -> Result<ColumnTable, ResourceError> {
    debug_assert_eq!(a.arity(), b.arity());
    let mut m = BlockMeter::new(gov, site);
    let mut out = ColumnTable::empty(a.arity());
    let (mut i, mut j) = (0usize, 0usize);
    let mut emit = |t: &ColumnTable, k: usize, m: &mut BlockMeter<'_>| {
        let row: Vec<ValueId> = t.row(k);
        m.rows(1, row.len())?;
        // Emission follows the merged order, so `out` stays canonical.
        out.push_row(&row);
        Ok::<(), ResourceError>(())
    };
    while i < a.len() && j < b.len() {
        m.work(1)?;
        let ord = a.cmp_row_cross(i, b, j);
        let (ea, eb) = decide(ord);
        if ea {
            emit(a, i, &mut m)?;
        }
        if eb {
            emit(b, j, &mut m)?;
        }
        match ord {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    while i < a.len() {
        m.work(1)?;
        if decide(Ordering::Less).0 {
            emit(a, i, &mut m)?;
        }
        i += 1;
    }
    while j < b.len() {
        m.work(1)?;
        if decide(Ordering::Greater).1 {
            emit(b, j, &mut m)?;
        }
        j += 1;
    }
    m.finish()?;
    Ok(out)
}

/// × — Cartesian product, columns of `b` appended to `a`. The cell count
/// is pre-checked against the range budget (a product is a quantifier
/// range in disguise), then rows are materialized in `(i, j)` order —
/// canonical because both inputs are.
pub fn product(
    a: &ColumnTable,
    b: &ColumnTable,
    gov: &Governor,
) -> Result<ColumnTable, ResourceError> {
    let cells = a.len() as u64 * b.len() as u64;
    gov.check_range("exec.product", cells)?;
    let arity = a.arity() + b.arity();
    let mut m = BlockMeter::new(gov, "exec.product");
    let mut out = ColumnTable::empty(arity);
    let mut row: Vec<ValueId> = Vec::with_capacity(arity);
    for i in 0..a.len() {
        for j in 0..b.len() {
            m.rows(1, arity)?;
            row.clear();
            row.extend(a.row(i));
            row.extend(b.row(j));
            out.push_row(&row);
        }
    }
    m.finish()?;
    Ok(out)
}

/// ⋈ — equi-join on `keys` (pairs of 0-based columns, left then right),
/// with the algorithm picked by the planner. Output columns are the
/// left's followed by the right's, duplicates of key columns included
/// (projection is a separate operator).
pub fn join(
    l: &ColumnTable,
    r: &ColumnTable,
    keys: &[(usize, usize)],
    algo: JoinAlgo,
    gov: &Governor,
    pool: &ThreadPool,
) -> Result<ColumnTable, ResourceError> {
    let mut pairs = match algo {
        JoinAlgo::NestedLoop => nested_loop_pairs(l, r, keys, gov)?,
        JoinAlgo::Hash { build_left } => hash_pairs(l, r, keys, build_left, gov, pool)?,
        JoinAlgo::Merge => merge_pairs(l, r, keys, gov)?,
    };
    pairs.sort_unstable();
    materialize_pairs(l, r, &pairs, gov)
}

fn keys_match(
    l: &ColumnTable,
    i: usize,
    r: &ColumnTable,
    j: usize,
    keys: &[(usize, usize)],
) -> bool {
    keys.iter().all(|&(lc, rc)| l.col(lc)[i] == r.col(rc)[j])
}

fn nested_loop_pairs(
    l: &ColumnTable,
    r: &ColumnTable,
    keys: &[(usize, usize)],
    gov: &Governor,
) -> Result<Vec<(u32, u32)>, ResourceError> {
    let mut m = BlockMeter::new(gov, "exec.join");
    let mut pairs = Vec::new();
    for i in 0..l.len() {
        for j in 0..r.len() {
            m.work(1)?;
            if keys_match(l, i, r, j, keys) {
                pairs.push((i as u32, j as u32));
            }
        }
    }
    m.finish()?;
    Ok(pairs)
}

fn hash_pairs(
    l: &ColumnTable,
    r: &ColumnTable,
    keys: &[(usize, usize)],
    build_left: bool,
    gov: &Governor,
    pool: &ThreadPool,
) -> Result<Vec<(u32, u32)>, ResourceError> {
    let lkeys: Vec<usize> = keys.iter().map(|&(lc, _)| lc).collect();
    let rkeys: Vec<usize> = keys.iter().map(|&(_, rc)| rc).collect();
    let (build, bkeys, probe, pkeys) = if build_left {
        (l, &lkeys, r, &rkeys)
    } else {
        (r, &rkeys, l, &lkeys)
    };
    {
        let mut m = BlockMeter::new(gov, "exec.join.build");
        m.work(build.len() as u64)?;
        m.finish()?;
    }
    let index = build.key_index(bkeys);

    let probe_chunk = |range: std::ops::Range<usize>| -> Result<Vec<(u32, u32)>, ResourceError> {
        let mut m = BlockMeter::new(gov, "exec.join.probe");
        let mut out = Vec::new();
        for p in range {
            m.work(1)?;
            if let Some(hits) = index.get(&probe.key_at(pkeys, p)) {
                m.work(hits.len() as u64)?;
                for &b in hits {
                    let (i, j) = if build_left {
                        (b, p as u32)
                    } else {
                        (p as u32, b)
                    };
                    out.push((i, j));
                }
            }
        }
        m.finish()?;
        Ok(out)
    };

    let chunked: Vec<Vec<(u32, u32)>> = if pool.threads() > 1 && probe.len() >= PARALLEL_PROBE_MIN {
        pool.try_map(split(probe.len(), pool.threads()), probe_chunk)?
    } else {
        vec![probe_chunk(0..probe.len())?]
    };
    Ok(chunked.concat())
}

fn merge_pairs(
    l: &ColumnTable,
    r: &ColumnTable,
    keys: &[(usize, usize)],
    gov: &Governor,
) -> Result<Vec<(u32, u32)>, ResourceError> {
    let lkeys: Vec<usize> = keys.iter().map(|&(lc, _)| lc).collect();
    let rkeys: Vec<usize> = keys.iter().map(|&(_, rc)| rc).collect();
    let mut m = BlockMeter::new(gov, "exec.join");
    // Sorting both sides by key is the merge join's index build.
    m.work(l.len() as u64 + r.len() as u64)?;
    let lp = l.sort_perm(&lkeys);
    let rp = r.sort_perm(&rkeys);

    let cmp_cross = |li: u32, rj: u32| -> Ordering {
        for &(lc, rc) in keys {
            let ord = l.col(lc)[li as usize]
                .index()
                .cmp(&r.col(rc)[rj as usize].index());
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    };

    let mut pairs = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lp.len() && j < rp.len() {
        m.work(1)?;
        match cmp_cross(lp[i], rp[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // Aligned key groups: cross every l row of the group with
                // every r row of the group.
                let i_end = (i..lp.len())
                    .take_while(|&x| l.cmp_keys(&lkeys, lp[i] as usize, lp[x] as usize).is_eq())
                    .last()
                    .unwrap()
                    + 1;
                let j_end = (j..rp.len())
                    .take_while(|&x| r.cmp_keys(&rkeys, rp[j] as usize, rp[x] as usize).is_eq())
                    .last()
                    .unwrap()
                    + 1;
                for &li in &lp[i..i_end] {
                    for &rj in &rp[j..j_end] {
                        m.work(1)?;
                        pairs.push((li, rj));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    m.finish()?;
    Ok(pairs)
}

/// Materialize sorted `(left, right)` index pairs column-wise. Because
/// both inputs are canonical and the pairs are strictly increasing, the
/// output is canonical without a sort.
fn materialize_pairs(
    l: &ColumnTable,
    r: &ColumnTable,
    pairs: &[(u32, u32)],
    gov: &Governor,
) -> Result<ColumnTable, ResourceError> {
    let arity = l.arity() + r.arity();
    let mut m = BlockMeter::new(gov, "exec.join");
    m.rows(pairs.len() as u64, arity)?;
    m.finish()?;
    let mut out = ColumnTable::empty(arity);
    let mut row: Vec<ValueId> = Vec::with_capacity(arity);
    for &(i, j) in pairs {
        row.clear();
        row.extend(l.row(i as usize));
        row.extend(r.row(j as usize));
        out.push_row(&row);
    }
    Ok(out)
}
