//! The executable plan: a flat arena of columnar operators.
//!
//! [`ExecPlan`] is the physical artifact `crates/plan` lowers conjunctive
//! CALC queries and flat algebra expressions to. It is built once per
//! (query, schema) and executed many times: [`execute`] starts from a
//! fresh interner, interns the scanned base relations and plan constants
//! (single-threaded, so id admission order — and hence every canonical
//! table — is deterministic for a given plan and instance, independent of
//! the pool), evaluates the arena bottom-up with the kernels of
//! [`crate::kernels`], and resolves the root back to a value-level
//! [`Relation`].
//!
//! Join algorithm choice lives in the *plan* (picked by the planner from
//! collected statistics, recorded in `:explain`); this module only runs
//! what it is told.

use crate::kernels;
pub use crate::kernels::JoinAlgo;
use crate::meter::BlockMeter;
use crate::pred::RowPred;
use crate::table::ColumnTable;
use minipool::ThreadPool;
use no_object::{Governor, Instance, Interner, Relation, ResourceError, Value};
use std::collections::HashMap;

/// Index of a node in an [`ExecPlan`] arena.
pub type ExecId = usize;

/// One columnar operator. Children always precede parents in the arena.
#[derive(Clone, Debug)]
pub enum ExecOp {
    /// Scan a base relation by name.
    Scan {
        /// Relation name in the instance schema.
        rel: String,
    },
    /// The empty relation of a given arity (e.g. a statically
    /// unsatisfiable conjunct).
    Empty {
        /// Output arity.
        arity: usize,
    },
    /// A constant relation.
    Const {
        /// Output arity (needed when `rows` is empty).
        arity: usize,
        /// The rows, as values (interned per execution).
        rows: Vec<Vec<Value>>,
    },
    /// σ — filter by a row predicate.
    Select {
        /// Input node.
        input: ExecId,
        /// The predicate (0-based columns).
        pred: RowPred,
    },
    /// π — project to 0-based columns (may repeat or reorder).
    Project {
        /// Input node.
        input: ExecId,
        /// Output columns.
        cols: Vec<usize>,
    },
    /// ∪.
    Union {
        /// Left input.
        left: ExecId,
        /// Right input.
        right: ExecId,
    },
    /// ∖.
    Difference {
        /// Left input.
        left: ExecId,
        /// Right input.
        right: ExecId,
    },
    /// ∩.
    Intersect {
        /// Left input.
        left: ExecId,
        /// Right input.
        right: ExecId,
    },
    /// × — Cartesian product (right columns appended).
    Product {
        /// Left input.
        left: ExecId,
        /// Right input.
        right: ExecId,
    },
    /// ⋈ — equi-join with a planner-chosen algorithm.
    Join {
        /// Left input.
        left: ExecId,
        /// Right input.
        right: ExecId,
        /// Key column pairs (left column, right column), 0-based.
        keys: Vec<(usize, usize)>,
        /// The algorithm to run.
        algo: JoinAlgo,
    },
}

/// A flat-arena physical plan over the columnar kernels.
#[derive(Clone, Debug, Default)]
pub struct ExecPlan {
    nodes: Vec<ExecOp>,
    root: ExecId,
}

impl ExecPlan {
    /// An empty plan.
    pub fn new() -> Self {
        ExecPlan::default()
    }

    /// Append an operator (children must already be in the arena) and
    /// make it the root.
    pub fn push(&mut self, op: ExecOp) -> ExecId {
        debug_assert!(match &op {
            ExecOp::Select { input, .. } | ExecOp::Project { input, .. } =>
                *input < self.nodes.len(),
            ExecOp::Union { left, right }
            | ExecOp::Difference { left, right }
            | ExecOp::Intersect { left, right }
            | ExecOp::Product { left, right }
            | ExecOp::Join { left, right, .. } =>
                *left < self.nodes.len() && *right < self.nodes.len(),
            ExecOp::Scan { .. } | ExecOp::Empty { .. } | ExecOp::Const { .. } => true,
        });
        self.nodes.push(op);
        self.root = self.nodes.len() - 1;
        self.root
    }

    /// The operator arena, children before parents.
    pub fn nodes(&self) -> &[ExecOp] {
        &self.nodes
    }

    /// The root node.
    pub fn root(&self) -> ExecId {
        self.root
    }
}

/// Run a plan against an instance: fresh interner, bottom-up kernel
/// evaluation, root resolved to a value-level relation.
///
/// The first governor touch is a checkpoint at `"exec.start"`, so
/// injected faults and cancellations fire before any work. Base-relation
/// interning is treated as input admission (metered one step per row,
/// like the Datalog engine's EDB load, but not charged as materialized
/// memory); every operator's output is metered through [`BlockMeter`].
pub fn execute(
    plan: &ExecPlan,
    instance: &Instance,
    governor: &Governor,
    pool: &ThreadPool,
) -> Result<Relation, ResourceError> {
    governor.checkpoint("exec.start")?;
    let int = Interner::new();
    let mut scans: HashMap<&str, ColumnTable> = HashMap::new();
    let mut slots: Vec<ColumnTable> = Vec::with_capacity(plan.nodes.len());

    for op in plan.nodes() {
        let table = match op {
            ExecOp::Scan { rel } => {
                if let Some(t) = scans.get(rel.as_str()) {
                    t.clone()
                } else {
                    let arity = instance
                        .schema()
                        .get(rel)
                        .map_or(0, no_object::RelationSchema::arity);
                    let base = instance.relation(rel);
                    let mut m = BlockMeter::new(governor, "exec.scan");
                    m.work(base.len() as u64)?;
                    m.finish()?;
                    let mut t = ColumnTable::empty(arity);
                    for row in base.iter() {
                        t.push_row(&int.intern_row(row));
                    }
                    t.canonicalize();
                    scans.insert(rel.as_str(), t.clone());
                    t
                }
            }
            ExecOp::Empty { arity } => ColumnTable::empty(*arity),
            ExecOp::Const { arity, rows } => {
                let mut m = BlockMeter::new(governor, "exec.const");
                m.rows(rows.len() as u64, *arity)?;
                m.finish()?;
                let mut t = ColumnTable::empty(*arity);
                for row in rows {
                    t.push_row(&int.intern_row(row));
                }
                t.canonicalize();
                t
            }
            ExecOp::Select { input, pred } => {
                kernels::select(&slots[*input], pred, &int, governor)?
            }
            ExecOp::Project { input, cols } => kernels::project(&slots[*input], cols, governor)?,
            ExecOp::Union { left, right } => {
                kernels::union(&slots[*left], &slots[*right], governor)?
            }
            ExecOp::Difference { left, right } => {
                kernels::difference(&slots[*left], &slots[*right], governor)?
            }
            ExecOp::Intersect { left, right } => {
                kernels::intersect(&slots[*left], &slots[*right], governor)?
            }
            ExecOp::Product { left, right } => {
                kernels::product(&slots[*left], &slots[*right], governor)?
            }
            ExecOp::Join {
                left,
                right,
                keys,
                algo,
            } => kernels::join(&slots[*left], &slots[*right], keys, *algo, governor, pool)?,
        };
        slots.push(table);
    }

    let out = &slots[plan.root()];
    let mut m = BlockMeter::new(governor, "exec.out");
    m.work(out.len() as u64)?;
    m.finish()?;
    Ok(Relation::from_rows(
        (0..out.len()).map(|i| int.resolve_row(&out.row(i))),
    ))
}
