//! Δ — columnar delta kernels for incremental view maintenance.
//!
//! The maintenance engine (`crates/ivm`) propagates *changes* through an
//! operator tree instead of recomputing it. A change to a canonical
//! [`ColumnTable`] is a [`DeltaTable`] in **effective form**:
//!
//! * `add ∩ old = ∅` — every added row is genuinely new;
//! * `del ⊆ old`    — every deleted row is genuinely present;
//! * both halves are canonical tables of the relation's arity.
//!
//! Effective form makes application trivially correct and order-free
//! (`new = (old ∖ del) ∪ add`) and keeps every kernel's output unique:
//! like the full kernels in [`crate::kernels`], the same inputs produce
//! the same bit pattern regardless of algorithm or thread count, so the
//! differential suite can compare maintained state against full
//! recomputation with `==`.
//!
//! Each kernel answers: given old inputs and effective deltas, what is
//! the effective delta of the operator's output? The join identity is the
//! classical product rule, arranged so no term can produce a row that was
//! already present (`a_keep = a_old ∖ Δa.del`):
//!
//! ```text
//! Δ⁺(a ⋈ b) = (Δ⁺a ⋈ b_new) ∪ (a_keep ⋈ Δ⁺b)
//! Δ⁻(a ⋈ b) = (Δ⁻a ⋈ b_old) ∪ (a_keep ⋈ Δ⁻b)
//! ```
//!
//! Selection distributes over deltas exactly (a row's fate is decided by
//! the row alone). Union, difference, and projection are *not* row-local
//! — a deleted input row only leaves the output when its last witness
//! goes — so those kernels re-derive membership against the old and new
//! states with the linear merge set-ops; they are O(|old| + |new|), not
//! O(|Δ|), which is still far below re-running the joins above them.
//!
//! All kernels charge the governor through the same [`BlockMeter`] sites
//! as the full kernels they compose, plus `exec.delta` for their own
//! bookkeeping.

use crate::kernels::{difference, join, project, select, union, JoinAlgo};
use crate::meter::BlockMeter;
use crate::pred::RowPred;
use crate::table::ColumnTable;
use minipool::ThreadPool;
use no_object::{Governor, Interner, ResourceError};

/// An effective change to a canonical table: rows to insert (none of
/// which are present) and rows to remove (all of which are present).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaTable {
    /// Rows entering the relation; disjoint from the old state.
    pub add: ColumnTable,
    /// Rows leaving the relation; a subset of the old state.
    pub del: ColumnTable,
}

impl DeltaTable {
    /// The empty (no-op) delta at the given arity.
    pub fn empty(arity: usize) -> Self {
        DeltaTable {
            add: ColumnTable::empty(arity),
            del: ColumnTable::empty(arity),
        }
    }

    /// Column count of both halves.
    pub fn arity(&self) -> usize {
        self.add.arity()
    }

    /// True when applying this delta would change nothing.
    pub fn is_empty(&self) -> bool {
        self.add.is_empty() && self.del.is_empty()
    }

    /// Total rows across both halves — the "size" of the change, used
    /// for step accounting and bench reporting.
    pub fn len(&self) -> usize {
        self.add.len() + self.del.len()
    }

    /// The effective delta turning `old` into `new`:
    /// `add = new ∖ old`, `del = old ∖ new`.
    pub fn between(
        old: &ColumnTable,
        new: &ColumnTable,
        gov: &Governor,
    ) -> Result<Self, ResourceError> {
        Ok(DeltaTable {
            add: difference(new, old, gov)?,
            del: difference(old, new, gov)?,
        })
    }

    /// Restore effective form against `old`: drop added rows already
    /// present and deletions of absent rows, and cancel rows that appear
    /// in both halves. Used when a delta is assembled from raw mutation
    /// streams rather than produced by a kernel.
    pub fn normalized(&self, old: &ColumnTable, gov: &Governor) -> Result<Self, ResourceError> {
        let add = difference(&difference(&self.add, old, gov)?, &self.del, gov)?;
        let del = crate::kernels::intersect(&difference(&self.del, &self.add, gov)?, old, gov)?;
        Ok(DeltaTable { add, del })
    }

    /// `new = (old ∖ del) ∪ add`. Canonical because the set-ops are.
    pub fn apply(&self, old: &ColumnTable, gov: &Governor) -> Result<ColumnTable, ResourceError> {
        union(&difference(old, &self.del, gov)?, &self.add, gov)
    }

    /// Debug check of the effective-form invariant against `old`.
    #[cfg(test)]
    fn assert_effective(&self, old: &ColumnTable, gov: &Governor) {
        use crate::kernels::intersect;
        assert!(
            intersect(&self.add, old, gov).unwrap().is_empty(),
            "delta add overlaps old state"
        );
        assert_eq!(
            difference(&self.del, old, gov).unwrap().len(),
            0,
            "delta del not a subset of old state"
        );
    }
}

/// Δ⋈ — effective delta of an equi-join given effective input deltas.
/// `keys` and `algo` are exactly the planner's choices for the full
/// join (reuse `no-plan`'s `choose_join` verbatim), so the maintained
/// output matches the full kernel bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn delta_join(
    a_old: &ColumnTable,
    da: &DeltaTable,
    b_old: &ColumnTable,
    db: &DeltaTable,
    keys: &[(usize, usize)],
    algo: JoinAlgo,
    gov: &Governor,
    pool: &ThreadPool,
) -> Result<DeltaTable, ResourceError> {
    let mut m = BlockMeter::new(gov, "exec.delta");
    m.work((da.len() + db.len()) as u64)?;
    m.finish()?;
    // Rows of `a` surviving the delta; joined against Δb so neither add
    // term can emit a pair whose a-part was deleted, and neither term
    // overlaps the old join (its a-part or b-part is brand new).
    let a_keep = difference(a_old, &da.del, gov)?;
    let b_new = db.apply(b_old, gov)?;
    let add = union(
        &join(&da.add, &b_new, keys, algo, gov, pool)?,
        &join(&a_keep, &db.add, keys, algo, gov, pool)?,
        gov,
    )?;
    // A pair leaves the join when its a-part left `a` (against the full
    // old `b`) or its a-part stayed but its b-part left `b`.
    let del = union(
        &join(&da.del, b_old, keys, algo, gov, pool)?,
        &join(&a_keep, &db.del, keys, algo, gov, pool)?,
        gov,
    )?;
    Ok(DeltaTable { add, del })
}

/// Δ∪ — effective delta of a union. A row enters when some input adds it
/// and no input held it; it leaves when every input holding it drops it.
pub fn delta_union(
    a_old: &ColumnTable,
    da: &DeltaTable,
    b_old: &ColumnTable,
    db: &DeltaTable,
    gov: &Governor,
) -> Result<DeltaTable, ResourceError> {
    let mut m = BlockMeter::new(gov, "exec.delta");
    m.work((da.len() + db.len()) as u64)?;
    m.finish()?;
    let old_u = union(a_old, b_old, gov)?;
    // Only rows some input added can enter; subtract what was visible.
    let add = difference(&union(&da.add, &db.add, gov)?, &old_u, gov)?;
    // Only rows some input dropped can leave; subtract what remains.
    let a_new = da.apply(a_old, gov)?;
    let b_new = db.apply(b_old, gov)?;
    let del = difference(
        &difference(&union(&da.del, &db.del, gov)?, &a_new, gov)?,
        &b_new,
        gov,
    )?;
    Ok(DeltaTable { add, del })
}

/// Δ∖ — effective delta of `a ∖ b` (the stratified-negation kernel). A
/// change on either side can flip a row's membership in both directions
/// (deleting from `b` *adds* to the output), so the kernel classifies
/// each candidate against the old and new results.
pub fn delta_difference(
    a_old: &ColumnTable,
    da: &DeltaTable,
    b_old: &ColumnTable,
    db: &DeltaTable,
    gov: &Governor,
) -> Result<DeltaTable, ResourceError> {
    let mut m = BlockMeter::new(gov, "exec.delta");
    m.work((da.len() + db.len()) as u64)?;
    m.finish()?;
    let a_new = da.apply(a_old, gov)?;
    let b_new = db.apply(b_old, gov)?;
    let old_r = difference(a_old, b_old, gov)?;
    let new_r = difference(&a_new, &b_new, gov)?;
    DeltaTable::between(&old_r, &new_r, gov)
}

/// Δπ — effective delta of a deduplicating projection. A deleted input
/// row only deletes an output row once its last witness is gone, so
/// candidates from `Δ⁻` are checked against the new projection (and
/// symmetrically `Δ⁺` candidates against the old one).
pub fn delta_project(
    t_old: &ColumnTable,
    dt: &DeltaTable,
    cols: &[usize],
    gov: &Governor,
) -> Result<DeltaTable, ResourceError> {
    let mut m = BlockMeter::new(gov, "exec.delta");
    m.work(dt.len() as u64)?;
    m.finish()?;
    let old_p = project(t_old, cols, gov)?;
    let new_p = project(&dt.apply(t_old, gov)?, cols, gov)?;
    let add = difference(&project(&dt.add, cols, gov)?, &old_p, gov)?;
    let del = difference(&project(&dt.del, cols, gov)?, &new_p, gov)?;
    Ok(DeltaTable { add, del })
}

/// Δσ — effective delta of a selection. Selection is row-local, so the
/// delta distributes exactly: filter each half. This is the only kernel
/// that is O(|Δ|) outright.
pub fn delta_select(
    dt: &DeltaTable,
    pred: &RowPred,
    int: &Interner,
    gov: &Governor,
) -> Result<DeltaTable, ResourceError> {
    Ok(DeltaTable {
        add: select(&dt.add, pred, int, gov)?,
        del: select(&dt.del, pred, int, gov)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{Governor, Limits, Universe, Value, ValueId};

    fn gov() -> Governor {
        Governor::new(Limits::default())
    }

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    /// An interner pre-loaded with `n` atoms, returned as raw ids the
    /// tests draw table cells from.
    fn domain(n: usize) -> Vec<ValueId> {
        let int = Interner::new();
        let names: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let universe = Universe::with_names(names.iter().map(|s| s.as_str()));
        names
            .iter()
            .map(|name| int.intern(&Value::atom(universe.get(name).unwrap())))
            .collect()
    }

    /// Deterministic xorshift so the randomized identities repeat.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn table(rng: &mut Rng, arity: usize, rows: usize, dom: &[ValueId]) -> ColumnTable {
        let mut t = ColumnTable::empty(arity);
        let mut row = vec![dom[0]; arity];
        for _ in 0..rows {
            for c in row.iter_mut() {
                *c = dom[rng.below(dom.len() as u64) as usize];
            }
            t.push_row(&row);
        }
        t.canonicalize();
        t
    }

    /// A random effective delta over `old`: delete some present rows,
    /// add some rows not present.
    fn delta_for(rng: &mut Rng, old: &ColumnTable, dom: &[ValueId], g: &Governor) -> DeltaTable {
        let mut del = ColumnTable::empty(old.arity());
        for i in 0..old.len() {
            if rng.below(3) == 0 {
                del.push_row(&old.row(i));
            }
        }
        del.canonicalize();
        let fresh = table(rng, old.arity(), 6, dom);
        let add = difference(&fresh, old, g).unwrap();
        let d = DeltaTable { add, del };
        d.assert_effective(old, g);
        d
    }

    #[test]
    fn apply_and_between_are_inverses() {
        let g = gov();
        let dom = domain(8);
        let mut rng = Rng(0x5eed);
        for _ in 0..20 {
            let old = table(&mut rng, 2, 12, &dom);
            let new = table(&mut rng, 2, 12, &dom);
            let d = DeltaTable::between(&old, &new, &g).unwrap();
            d.assert_effective(&old, &g);
            assert_eq!(d.apply(&old, &g).unwrap(), new);
        }
    }

    #[test]
    fn normalized_recovers_effective_form() {
        let g = gov();
        let dom = domain(6);
        let mut rng = Rng(0xbead);
        for _ in 0..20 {
            let old = table(&mut rng, 2, 10, &dom);
            // A raw, possibly-ineffective delta: adds may already exist,
            // deletes may be absent, halves may overlap.
            let raw = DeltaTable {
                add: table(&mut rng, 2, 6, &dom),
                del: table(&mut rng, 2, 6, &dom),
            };
            let d = raw.normalized(&old, &g).unwrap();
            d.assert_effective(&old, &g);
            // Overlapping rows cancel; surviving adds and deletes match
            // the raw intent.
            let want_add =
                difference(&difference(&raw.add, &old, &g).unwrap(), &raw.del, &g).unwrap();
            assert_eq!(d.add, want_add);
        }
    }

    #[test]
    fn delta_join_matches_full_recomputation() {
        let g = gov();
        let p = pool();
        let mut rng = Rng(0x1234);
        let algos = [
            JoinAlgo::NestedLoop,
            JoinAlgo::Hash { build_left: true },
            JoinAlgo::Hash { build_left: false },
            JoinAlgo::Merge,
        ];
        let dom = domain(6);
        for trial in 0..24 {
            let a_old = table(&mut rng, 2, 14, &dom);
            let b_old = table(&mut rng, 2, 14, &dom);
            let da = delta_for(&mut rng, &a_old, &dom, &g);
            let db = delta_for(&mut rng, &b_old, &dom, &g);
            let keys = [(1usize, 0usize)];
            let algo = algos[trial % algos.len()];
            let d = delta_join(&a_old, &da, &b_old, &db, &keys, algo, &g, &p).unwrap();
            let old_j = join(&a_old, &b_old, &keys, algo, &g, &p).unwrap();
            d.assert_effective(&old_j, &g);
            let a_new = da.apply(&a_old, &g).unwrap();
            let b_new = db.apply(&b_old, &g).unwrap();
            let new_j = join(&a_new, &b_new, &keys, algo, &g, &p).unwrap();
            assert_eq!(d.apply(&old_j, &g).unwrap(), new_j, "trial {trial}");
        }
    }

    #[test]
    fn delta_join_algorithms_agree_bitwise() {
        let g = gov();
        let p = pool();
        let mut rng = Rng(0xa11);
        let dom = domain(5);
        let a_old = table(&mut rng, 2, 20, &dom);
        let b_old = table(&mut rng, 2, 20, &dom);
        let da = delta_for(&mut rng, &a_old, &dom, &g);
        let db = delta_for(&mut rng, &b_old, &dom, &g);
        let keys = [(0usize, 0usize)];
        let base = delta_join(
            &a_old,
            &da,
            &b_old,
            &db,
            &keys,
            JoinAlgo::NestedLoop,
            &g,
            &p,
        )
        .unwrap();
        for algo in [
            JoinAlgo::Hash { build_left: true },
            JoinAlgo::Hash { build_left: false },
            JoinAlgo::Merge,
        ] {
            let d = delta_join(&a_old, &da, &b_old, &db, &keys, algo, &g, &p).unwrap();
            assert_eq!(d, base, "{}", algo.label());
        }
    }

    #[test]
    fn delta_union_matches_full_recomputation() {
        let g = gov();
        let mut rng = Rng(0x0231);
        let dom = domain(5);
        for trial in 0..24 {
            let a_old = table(&mut rng, 2, 12, &dom);
            let b_old = table(&mut rng, 2, 12, &dom);
            let da = delta_for(&mut rng, &a_old, &dom, &g);
            let db = delta_for(&mut rng, &b_old, &dom, &g);
            let d = delta_union(&a_old, &da, &b_old, &db, &g).unwrap();
            let old_u = union(&a_old, &b_old, &g).unwrap();
            d.assert_effective(&old_u, &g);
            let new_u = union(
                &da.apply(&a_old, &g).unwrap(),
                &db.apply(&b_old, &g).unwrap(),
                &g,
            )
            .unwrap();
            assert_eq!(d.apply(&old_u, &g).unwrap(), new_u, "trial {trial}");
        }
    }

    #[test]
    fn delta_difference_matches_full_recomputation() {
        let g = gov();
        let mut rng = Rng(0xd1ff);
        let dom = domain(4);
        for trial in 0..24 {
            let a_old = table(&mut rng, 2, 12, &dom);
            let b_old = table(&mut rng, 2, 12, &dom);
            let da = delta_for(&mut rng, &a_old, &dom, &g);
            let db = delta_for(&mut rng, &b_old, &dom, &g);
            let d = delta_difference(&a_old, &da, &b_old, &db, &g).unwrap();
            let old_r = difference(&a_old, &b_old, &g).unwrap();
            d.assert_effective(&old_r, &g);
            let new_r = difference(
                &da.apply(&a_old, &g).unwrap(),
                &db.apply(&b_old, &g).unwrap(),
                &g,
            )
            .unwrap();
            assert_eq!(d.apply(&old_r, &g).unwrap(), new_r, "trial {trial}");
        }
    }

    #[test]
    fn deleting_from_the_negated_side_adds_to_a_difference() {
        let g = gov();
        let dom = domain(3);
        let a = ColumnTable::from_rows(1, [[dom[1]], [dom[2]]].iter().map(|r| &r[..]));
        let b = ColumnTable::from_rows(1, [[dom[2]]].iter().map(|r| &r[..]));
        let db = DeltaTable {
            add: ColumnTable::empty(1),
            del: b.clone(),
        };
        let d = delta_difference(&a, &DeltaTable::empty(1), &b, &db, &g).unwrap();
        assert_eq!(d.add.len(), 1);
        assert_eq!(d.add.row(0), vec![dom[2]]);
        assert!(d.del.is_empty());
    }

    #[test]
    fn delta_project_respects_remaining_witnesses() {
        let g = gov();
        // Two rows projecting to the same output; deleting one must not
        // delete the projected row.
        let dom = domain(9);
        let t = ColumnTable::from_rows(
            2,
            [[dom[1], dom[7]], [dom[1], dom[8]]].iter().map(|r| &r[..]),
        );
        let dt = DeltaTable {
            add: ColumnTable::empty(2),
            del: ColumnTable::from_rows(2, [[dom[1], dom[7]]].iter().map(|r| &r[..])),
        };
        let d = delta_project(&t, &dt, &[0], &g).unwrap();
        assert!(d.is_empty(), "a surviving witness must keep the output row");
        // Deleting both witnesses does delete it.
        let dt2 = DeltaTable {
            add: ColumnTable::empty(2),
            del: t.clone(),
        };
        let d2 = delta_project(&t, &dt2, &[0], &g).unwrap();
        assert_eq!(d2.del.len(), 1);
    }

    #[test]
    fn delta_project_matches_full_recomputation() {
        let g = gov();
        let mut rng = Rng(0x9201);
        let dom = domain(4);
        for trial in 0..24 {
            let t_old = table(&mut rng, 3, 14, &dom);
            let dt = delta_for(&mut rng, &t_old, &dom, &g);
            let cols = [2usize, 0usize];
            let d = delta_project(&t_old, &dt, &cols, &g).unwrap();
            let old_p = project(&t_old, &cols, &g).unwrap();
            d.assert_effective(&old_p, &g);
            let new_p = project(&dt.apply(&t_old, &g).unwrap(), &cols, &g).unwrap();
            assert_eq!(d.apply(&old_p, &g).unwrap(), new_p, "trial {trial}");
        }
    }

    #[test]
    fn empty_deltas_propagate_as_empty() {
        let g = gov();
        let p = pool();
        let mut rng = Rng(0xe0);
        let dom = domain(5);
        let a = table(&mut rng, 2, 10, &dom);
        let b = table(&mut rng, 2, 10, &dom);
        let e = DeltaTable::empty(2);
        let keys = [(0usize, 1usize)];
        assert!(delta_join(&a, &e, &b, &e, &keys, JoinAlgo::Merge, &g, &p)
            .unwrap()
            .is_empty());
        assert!(delta_union(&a, &e, &b, &e, &g).unwrap().is_empty());
        assert!(delta_difference(&a, &e, &b, &e, &g).unwrap().is_empty());
        assert!(delta_project(&a, &e, &[1], &g).unwrap().is_empty());
    }

    #[test]
    fn delta_kernels_are_governor_metered() {
        let g = Governor::new(Limits {
            max_steps: 4,
            ..Limits::default()
        });
        let p = pool();
        let mut rng = Rng(0x901);
        let dom = domain(8);
        let a = table(&mut rng, 2, 40, &dom);
        let b = table(&mut rng, 2, 40, &dom);
        let da = DeltaTable {
            add: ColumnTable::empty(2),
            del: a.clone(),
        };
        let r = delta_join(
            &a,
            &da,
            &b,
            &DeltaTable::empty(2),
            &[(0, 0)],
            JoinAlgo::Merge,
            &g,
            &p,
        );
        assert!(r.is_err(), "a 4-step budget must trip");
    }
}
