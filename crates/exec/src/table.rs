//! Columnar relation storage over interned ids.
//!
//! A [`ColumnTable`] stores a relation as one `Vec<ValueId>` per column —
//! the layout implog-style engines use — kept in a *canonical* row order:
//! rows sorted lexicographically by raw id and deduplicated. Because id
//! equality coincides with value equality (the interner's hash-consing
//! invariant), the canonical form is unique for a fixed interner, so two
//! tables over the same interner are bit-for-bit equal iff they denote the
//! same relation. Every kernel in [`crate::kernels`] both consumes and
//! produces canonical tables, which is what lets the differential fuzzer
//! compare hash/merge/nested-loop outputs with plain `==` and makes
//! results independent of thread count and hash-map iteration order.
//!
//! Note raw-id order is an *internal* device (admission order, not the
//! structural order on values — see `no_object::intern`); it never escapes
//! into results, which are resolved back to value-level [`Relation`]s at
//! the plan boundary.
//!
//! [`IndexedRel`] is the row-major sibling used by the Datalog engine: an
//! append-only relation with per-column hash indexes so semi-naive delta
//! joins probe bound positions instead of scanning.
//!
//! [`Relation`]: no_object::Relation

use no_object::{IdRelation, ValueId};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A relation stored column-major over interned ids, in canonical
/// (raw-id-sorted, duplicate-free) row order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnTable {
    arity: usize,
    len: usize,
    cols: Vec<Vec<ValueId>>,
}

impl ColumnTable {
    /// The empty table of the given arity.
    pub fn empty(arity: usize) -> Self {
        ColumnTable {
            arity,
            len: 0,
            cols: vec![Vec::new(); arity],
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One column's ids, row-aligned.
    pub fn col(&self, c: usize) -> &[ValueId] {
        &self.cols[c]
    }

    /// Gather row `i` across columns.
    pub fn row(&self, i: usize) -> Vec<ValueId> {
        self.cols.iter().map(|c| c[i]).collect()
    }

    /// Append a row without restoring the canonical order; callers must
    /// finish with [`canonicalize`](ColumnTable::canonicalize).
    pub fn push_row(&mut self, row: &[ValueId]) {
        debug_assert_eq!(row.len(), self.arity);
        for (c, id) in row.iter().enumerate() {
            self.cols[c].push(*id);
        }
        self.len += 1;
    }

    /// Raw-id lexicographic comparison of rows `i` and `j`.
    fn cmp_idx(&self, i: usize, j: usize) -> Ordering {
        for col in &self.cols {
            match col[i].index().cmp(&col[j].index()) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }

    /// Restore the canonical form: sort rows by raw-id lexicographic
    /// order and drop duplicates.
    pub fn canonicalize(&mut self) {
        let mut perm: Vec<u32> = (0..self.len as u32).collect();
        perm.sort_unstable_by(|&a, &b| self.cmp_idx(a as usize, b as usize));
        perm.dedup_by(|&mut a, &mut b| self.cmp_idx(a as usize, b as usize) == Ordering::Equal);
        self.gather(&perm);
    }

    /// Replace the rows by `perm`'s selection, in `perm` order.
    fn gather(&mut self, perm: &[u32]) {
        for col in &mut self.cols {
            let picked: Vec<ValueId> = perm.iter().map(|&i| col[i as usize]).collect();
            *col = picked;
        }
        self.len = perm.len();
    }

    /// A new table holding the rows selected by `keep`, in `keep` order.
    /// When `keep` is an ascending subsequence of row indices (a filter),
    /// the result is canonical without re-sorting.
    pub fn gathered(&self, keep: &[u32]) -> ColumnTable {
        ColumnTable {
            arity: self.arity,
            len: keep.len(),
            cols: self
                .cols
                .iter()
                .map(|col| keep.iter().map(|&i| col[i as usize]).collect())
                .collect(),
        }
    }

    /// Raw-id lexicographic comparison of `self`'s row `i` with `other`'s
    /// row `j` (both tables must share one interner).
    pub fn cmp_row_cross(&self, i: usize, other: &ColumnTable, j: usize) -> Ordering {
        debug_assert_eq!(self.arity, other.arity);
        for (a, b) in self.cols.iter().zip(&other.cols) {
            match a[i].index().cmp(&b[j].index()) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }

    /// Build (canonically) from an iterator of rows.
    pub fn from_rows<'a>(arity: usize, rows: impl IntoIterator<Item = &'a [ValueId]>) -> Self {
        let mut t = ColumnTable::empty(arity);
        for row in rows {
            t.push_row(row);
        }
        t.canonicalize();
        t
    }

    /// Build from an [`IdRelation`] (already duplicate-free; still sorted
    /// here to reach the canonical order).
    pub fn from_id_relation(arity: usize, rel: &IdRelation) -> Self {
        ColumnTable::from_rows(arity, rel.iter())
    }

    /// Convert back to a set-of-rows relation.
    pub fn to_id_relation(&self) -> IdRelation {
        (0..self.len)
            .map(|i| self.row(i).into_boxed_slice())
            .collect()
    }

    /// Secondary hash index over one column: id → ascending row indices.
    pub fn hash_index(&self, c: usize) -> HashMap<ValueId, Vec<u32>> {
        let mut idx: HashMap<ValueId, Vec<u32>> = HashMap::new();
        for (i, id) in self.cols[c].iter().enumerate() {
            idx.entry(*id).or_default().push(i as u32);
        }
        idx
    }

    /// Secondary hash index over a column combination: key ids → ascending
    /// row indices. This is the build side of a hash join.
    pub fn key_index(&self, key_cols: &[usize]) -> HashMap<Box<[ValueId]>, Vec<u32>> {
        let mut idx: HashMap<Box<[ValueId]>, Vec<u32>> = HashMap::new();
        for i in 0..self.len {
            idx.entry(self.key_at(key_cols, i))
                .or_default()
                .push(i as u32);
        }
        idx
    }

    /// The key of row `i` restricted to `key_cols`.
    pub fn key_at(&self, key_cols: &[usize], i: usize) -> Box<[ValueId]> {
        key_cols.iter().map(|&c| self.cols[c][i]).collect()
    }

    /// Sorted secondary index: row indices ordered by the raw ids of
    /// `key_cols` (ties broken by row position, keeping the permutation
    /// deterministic). This is one side of a merge join.
    pub fn sort_perm(&self, key_cols: &[usize]) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..self.len as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            for &c in key_cols {
                let ord = self.cols[c][a as usize]
                    .index()
                    .cmp(&self.cols[c][b as usize].index());
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b)
        });
        perm
    }

    /// Compare the `key_cols` of rows `i` and `j` by raw id.
    pub fn cmp_keys(&self, key_cols: &[usize], i: usize, j: usize) -> Ordering {
        for &c in key_cols {
            match self.cols[c][i].index().cmp(&self.cols[c][j].index()) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }

    /// Number of distinct ids in column `c` (exact, O(n) expected).
    pub fn distinct(&self, c: usize) -> usize {
        let mut seen: std::collections::HashSet<ValueId> =
            std::collections::HashSet::with_capacity(self.cols[c].len());
        seen.extend(self.cols[c].iter().copied());
        seen.len()
    }
}

/// A row-major relation with per-column hash indexes, append-only: the
/// Datalog engine's working representation. `insert_new` keeps the set,
/// the row vector, and every column index in lockstep, so the semi-naive
/// delta join can probe a bound position (`probe`) instead of scanning
/// while `contains` stays O(arity).
#[derive(Clone, Debug, Default)]
pub struct IndexedRel {
    rows: Vec<Box<[ValueId]>>,
    set: std::collections::HashSet<Box<[ValueId]>>,
    cols: Vec<HashMap<ValueId, Vec<u32>>>,
}

impl IndexedRel {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        IndexedRel {
            rows: Vec::new(),
            set: std::collections::HashSet::new(),
            cols: vec![HashMap::new(); arity],
        }
    }

    /// Index every row of an [`IdRelation`].
    pub fn from_id_relation(arity: usize, rel: &IdRelation) -> Self {
        let mut r = IndexedRel::new(arity);
        for row in rel.iter() {
            r.insert_new(row.to_vec().into_boxed_slice());
        }
        r
    }

    /// Insert a row, updating all column indexes; returns whether it was
    /// new.
    pub fn insert_new(&mut self, row: Box<[ValueId]>) -> bool {
        debug_assert_eq!(row.len(), self.cols.len());
        if !self.set.insert(row.clone()) {
            return false;
        }
        let i = self.rows.len() as u32;
        for (c, id) in row.iter().enumerate() {
            self.cols[c].entry(*id).or_default().push(i);
        }
        self.rows.push(row);
        true
    }

    /// Row indices whose column `c` holds exactly `id` (ascending; empty
    /// slice when absent).
    pub fn probe(&self, c: usize, id: ValueId) -> &[u32] {
        self.cols[c].get(&id).map_or(&[], Vec::as_slice)
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Box<[ValueId]>] {
        &self.rows
    }

    /// Row `i`.
    pub fn row(&self, i: u32) -> &[ValueId] {
        &self.rows[i as usize]
    }

    /// Membership test: O(arity).
    pub fn contains(&self, row: &[ValueId]) -> bool {
        self.set.contains(row)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{Interner, Universe, Value};

    fn ids(int: &Interner, names: &[&str]) -> Vec<ValueId> {
        let universe = Universe::with_names(names.iter().copied());
        names
            .iter()
            .map(|n| int.intern(&Value::atom(universe.get(n).unwrap())))
            .collect()
    }

    #[test]
    fn canonical_form_is_sorted_and_deduped() {
        let int = Interner::new();
        let v = ids(&int, &["a", "b", "c"]);
        let rows: Vec<Vec<ValueId>> = vec![
            vec![v[2], v[0]],
            vec![v[0], v[1]],
            vec![v[2], v[0]],
            vec![v[1], v[1]],
        ];
        let t = ColumnTable::from_rows(2, rows.iter().map(Vec::as_slice));
        assert_eq!(t.len(), 3);
        for i in 1..t.len() {
            assert_eq!(t.cmp_idx(i - 1, i), Ordering::Less);
        }
        // Same rows in any order build the identical table.
        let mut rev = rows.clone();
        rev.reverse();
        let t2 = ColumnTable::from_rows(2, rev.iter().map(Vec::as_slice));
        assert_eq!(t, t2);
    }

    #[test]
    fn indexes_agree_with_scan() {
        let int = Interner::new();
        let v = ids(&int, &["a", "b", "c", "d"]);
        let rows: Vec<Vec<ValueId>> = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .map(|(i, j)| vec![v[i], v[j]])
            .collect();
        let t = ColumnTable::from_rows(2, rows.iter().map(Vec::as_slice));
        let idx = t.hash_index(0);
        for (id, rows_with) in &idx {
            for &i in rows_with {
                assert_eq!(t.col(0)[i as usize], *id);
            }
        }
        let total: usize = idx.values().map(Vec::len).sum();
        assert_eq!(total, t.len());
        assert_eq!(t.distinct(0), 4);
        assert_eq!(t.distinct(1), 4);

        let mut ir = IndexedRel::new(2);
        for r in &rows {
            ir.insert_new(r.clone().into_boxed_slice());
        }
        assert_eq!(ir.len(), 16);
        for r in &rows {
            assert!(ir.contains(r));
            assert!(ir.probe(0, r[0]).iter().any(|&i| ir.row(i) == &r[..]));
        }
    }

    #[test]
    fn zero_arity_tables_collapse_to_one_row() {
        let mut t = ColumnTable::empty(0);
        t.push_row(&[]);
        t.push_row(&[]);
        t.canonicalize();
        assert_eq!(t.len(), 1);
        assert_eq!(t.arity(), 0);
    }
}
