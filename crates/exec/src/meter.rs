//! Block-batched governor metering.
//!
//! The tree-walk kernels charge the [`Governor`] per row, which on
//! columnar loops makes accounting itself a hot path. A [`BlockMeter`]
//! accumulates step and memory charges locally and flushes them with one
//! `tick_n`/`charge_mem` pair every [`BLOCK`] units of work (and at
//! operator end), so the totals a budget sees are identical to per-row
//! charging — only the trip *granularity* coarsens, by at most one block.
//! Totals are also independent of how work is chunked across pool
//! workers: each chunk flushes exactly what it accumulated.

use no_object::{Governor, ResourceError};

/// Flush threshold, in accumulated steps.
pub const BLOCK: u64 = 1024;

/// A local accumulator of governor charges for one operator (or one
/// parallel chunk of one), flushed per block and on `finish`.
pub struct BlockMeter<'g> {
    gov: &'g Governor,
    site: &'static str,
    steps: u64,
    mem: u64,
}

impl<'g> BlockMeter<'g> {
    /// A fresh meter charging `site`.
    pub fn new(gov: &'g Governor, site: &'static str) -> Self {
        BlockMeter {
            gov,
            site,
            steps: 0,
            mem: 0,
        }
    }

    /// Account `n` steps of work, flushing when a block fills.
    pub fn work(&mut self, n: u64) -> Result<(), ResourceError> {
        self.steps += n;
        if self.steps >= BLOCK {
            self.flush()?;
        }
        Ok(())
    }

    /// Account `n` materialized rows of the given arity: one step plus
    /// the engines' standard 8 bytes per id each.
    pub fn rows(&mut self, n: u64, arity: usize) -> Result<(), ResourceError> {
        self.mem += n * 8 * arity as u64;
        self.work(n)
    }

    fn flush(&mut self) -> Result<(), ResourceError> {
        if self.steps > 0 {
            let n = std::mem::take(&mut self.steps);
            self.gov.tick_n(self.site, n)?;
        }
        if self.mem > 0 {
            let n = std::mem::take(&mut self.mem);
            self.gov.charge_mem(self.site, n)?;
        }
        Ok(())
    }

    /// Flush any remainder; call at operator end.
    pub fn finish(mut self) -> Result<(), ResourceError> {
        self.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{BudgetKind, Governor, Limits};

    #[test]
    fn totals_match_per_row_charging() {
        let gov = Governor::new(Limits::default());
        let mut m = BlockMeter::new(&gov, "exec.test");
        for _ in 0..(BLOCK * 3 + 17) {
            m.work(1).unwrap();
        }
        m.finish().unwrap();
        assert_eq!(gov.steps_spent(), BLOCK * 3 + 17);
    }

    #[test]
    fn trips_within_one_block_of_the_budget() {
        let limits = Limits {
            max_steps: 10,
            ..Limits::default()
        };
        let gov = Governor::new(limits);
        let mut m = BlockMeter::new(&gov, "exec.test");
        let mut tripped = None;
        for _ in 0..(2 * BLOCK) {
            if let Err(e) = m.work(1) {
                tripped = Some(e);
                break;
            }
        }
        let e = tripped.expect("budget must trip");
        assert_eq!(e.budget, BudgetKind::Steps);
        // The first flush happens at one full block, not per row.
        assert_eq!(gov.steps_spent(), BLOCK);
    }
}
