//! # `no-exec` — columnar execution kernels
//!
//! The physical execution layer the planner (`crates/plan`) lowers to
//! when a query falls in the *flat conjunctive* fragment: column-major
//! relation storage over interned ids ([`ColumnTable`]), secondary hash
//! and sorted indexes, and real join algorithms — hash join, merge join,
//! nested loop — chosen per join from collected statistics instead of
//! always binding to the tree-walk kernels.
//!
//! Design invariants (see DESIGN.md §14):
//!
//! * **Canonical tables.** Every kernel consumes and produces tables in
//!   raw-id-sorted duplicate-free row order, so all three join
//!   algorithms produce bit-identical outputs and results are
//!   independent of thread count — the property `tests/exec_differential.rs`
//!   fuzzes.
//! * **Deterministic interning.** Each execution interns scans and
//!   constants from a single thread into a fresh arena; workers only read
//!   ids, so raw-id order (an internal device that never escapes into
//!   results) is reproducible.
//! * **Block-batched metering.** Governor charges accumulate locally and
//!   flush per [`meter::BLOCK`] steps ([`meter::BlockMeter`]): same
//!   totals as per-row charging, trip granularity coarsened by at most
//!   one block.
//!
//! The Datalog engine uses the row-major sibling [`IndexedRel`] for
//! semi-naive delta joins: the delta side probes per-column hash indexes
//! on bound positions instead of scanning.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod delta;
pub mod kernels;
pub mod meter;
pub mod plan;
pub mod pred;
pub mod table;

pub use delta::{
    delta_difference, delta_join, delta_project, delta_select, delta_union, DeltaTable,
};
pub use kernels::JoinAlgo;
pub use plan::{execute, ExecId, ExecOp, ExecPlan};
pub use pred::RowPred;
pub use table::{ColumnTable, IndexedRel};
