//! Structured `CC0xx` diagnostics — the concurrency counterpart of the
//! analyzer's `TY0xx`/`RR0xx`/`DL0xx` code families (DESIGN.md §11), with
//! the same contract: stable codes, human-readable messages, and
//! machine-checkable witnesses.
//!
//! | code  | meaning                                                        |
//! |-------|----------------------------------------------------------------|
//! | CC001 | potential deadlock: cycle in the lock-order graph              |
//! | CC002 | actual deadlock: the model checker drove a schedule into one   |
//! | CC003 | invariant violation: a scenario assertion failed on a schedule |
//! | CC004 | step cap exceeded: a schedule never quiesced (livelock-like)   |

use std::fmt;

/// A structured concurrency diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Stable diagnostic code (`"CC001"` … `"CC004"`).
    pub code: &'static str,
    /// One-line human-readable summary.
    pub message: String,
    /// Witness lines: for `CC001`, one acquisition chain per edge of the
    /// cycle (both directions of an ABBA pair are present); for `CC002`,
    /// one line per stuck thread naming what it holds and what it waits
    /// for; for `CC003`/`CC004`, the schedule description and panic text.
    pub witnesses: Vec<String>,
}

impl Diag {
    /// Render the witness lines as a JSON array fragment (used by the
    /// lock-order graph artifact).
    pub fn witnesses_json(&self) -> String {
        let items: Vec<String> = self.witnesses.iter().map(|w| json_string(w)).collect();
        format!("[{}]", items.join(","))
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.code, self.message)?;
        for w in &self.witnesses {
            writeln!(f, "  | {w}")?;
        }
        Ok(())
    }
}

/// Minimal JSON string escaping (std-only; the workspace has no serde).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
