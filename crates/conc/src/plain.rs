//! Release-mode shims: `#[repr(transparent)]` wrappers over `std::sync`
//! with `#[inline]` delegation. With `concheck` off this module is the
//! whole story — no ids, no logs, no scheduler, no extra fields — so the
//! shims compile to exactly the code the raw std types would produce.
//! The only semantic delta is poison *recovery*: `lock()`/`read()`/
//! `write()` return the guard even if a previous holder panicked, instead
//! of propagating a `PoisonError` panic through every later user.

use std::sync::atomic::Ordering;
use std::sync::PoisonError;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Drop-in `std::sync::Mutex` shim. See the crate docs for the
/// instrumentation contract; in this (default) configuration it is a
/// zero-cost transparent wrapper.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex (anonymous lock class).
    #[inline]
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Create a new mutex tagged with a lockdep *class* name. The class
    /// is ignored when `concheck` is off.
    #[inline]
    pub const fn new_named(_class: &'static str, t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value (poison recovered).
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking. Recovers poison: a previous holder's
    /// panic never cascades into this caller.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Try to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Drop-in `std::sync::RwLock` shim (zero-cost in this configuration).
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock (anonymous lock class).
    #[inline]
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Create a new reader-writer lock tagged with a lockdep class.
    #[inline]
    pub const fn new_named(_class: &'static str, t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value (poison recovered).
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (poison recovered).
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write guard (poison recovered).
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! plain_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        #[repr(transparent)]
        pub struct $name($std);

        impl $name {
            /// Create a new atomic.
            #[inline]
            pub const fn new(v: $prim) -> Self {
                $name(<$std>::new(v))
            }

            /// Load the current value.
            #[inline]
            pub fn load(&self, order: Ordering) -> $prim {
                self.0.load(order)
            }

            /// Store a new value.
            #[inline]
            pub fn store(&self, v: $prim, order: Ordering) {
                self.0.store(v, order)
            }

            /// Swap in a new value, returning the previous one.
            #[inline]
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                self.0.swap(v, order)
            }

            /// Compare-and-exchange.
            #[inline]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.0.compare_exchange(current, new, success, failure)
            }

            /// Consume the atomic, returning the inner value.
            #[inline]
            pub fn into_inner(self) -> $prim {
                self.0.into_inner()
            }

            /// Mutable access (requires exclusive ownership).
            #[inline]
            pub fn get_mut(&mut self) -> &mut $prim {
                self.0.get_mut()
            }
        }
    };
}

macro_rules! plain_atomic_arith {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Add, returning the previous value.
            #[inline]
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                self.0.fetch_add(v, order)
            }

            /// Subtract, returning the previous value.
            #[inline]
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                self.0.fetch_sub(v, order)
            }
        }
    };
}

plain_atomic!(
    /// Drop-in `std::sync::atomic::AtomicBool` shim.
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);
plain_atomic!(
    /// Drop-in `std::sync::atomic::AtomicU32` shim.
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);
plain_atomic!(
    /// Drop-in `std::sync::atomic::AtomicU64` shim.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
plain_atomic!(
    /// Drop-in `std::sync::atomic::AtomicUsize` shim.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
plain_atomic_arith!(AtomicU32, u32);
plain_atomic_arith!(AtomicU64, u64);
plain_atomic_arith!(AtomicUsize, usize);

/// Drop-in `std::sync::atomic::AtomicPtr` shim (zero-cost in this
/// configuration).
#[derive(Debug)]
#[repr(transparent)]
pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

impl<T> AtomicPtr<T> {
    /// Create a new atomic pointer.
    #[inline]
    pub const fn new(p: *mut T) -> Self {
        AtomicPtr(std::sync::atomic::AtomicPtr::new(p))
    }

    /// Load the current pointer.
    #[inline]
    pub fn load(&self, order: Ordering) -> *mut T {
        self.0.load(order)
    }

    /// Store a new pointer.
    #[inline]
    pub fn store(&self, p: *mut T, order: Ordering) {
        self.0.store(p, order)
    }

    /// Swap in a new pointer, returning the previous one.
    #[inline]
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        self.0.swap(p, order)
    }

    /// Compare-and-exchange.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.0.compare_exchange(current, new, success, failure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shims_are_transparent_over_std() {
        assert_eq!(
            std::mem::size_of::<Mutex<u64>>(),
            std::mem::size_of::<std::sync::Mutex<u64>>()
        );
        assert_eq!(
            std::mem::size_of::<RwLock<u64>>(),
            std::mem::size_of::<std::sync::RwLock<u64>>()
        );
        assert_eq!(
            std::mem::size_of::<AtomicU64>(),
            std::mem::size_of::<std::sync::atomic::AtomicU64>()
        );
        assert_eq!(
            std::mem::size_of::<AtomicPtr<u8>>(),
            std::mem::size_of::<std::sync::atomic::AtomicPtr<u8>>()
        );
    }

    #[test]
    fn mutex_round_trip_and_poison_recovery() {
        let m = Mutex::new_named("test.m", 1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        // Poison the underlying std mutex by panicking while holding it.
        let m = std::sync::Arc::new(m);
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // Recovery: lock() still hands out the guard.
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new_named("test.rw", 7u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
        assert_eq!(l.into_inner(), 9);
    }

    #[test]
    fn atomics_delegate() {
        let b = AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst));
        let u = AtomicU64::new(5);
        assert_eq!(u.fetch_add(3, Ordering::Relaxed), 5);
        assert_eq!(u.fetch_sub(1, Ordering::Relaxed), 8);
        assert_eq!(u.load(Ordering::Relaxed), 7);
        assert_eq!(
            u.compare_exchange(7, 10, Ordering::SeqCst, Ordering::SeqCst),
            Ok(7)
        );
        let mut x = AtomicUsize::new(1);
        *x.get_mut() = 4;
        assert_eq!(x.into_inner(), 4);
        let p = AtomicPtr::<u8>::new(std::ptr::null_mut());
        assert!(p.load(Ordering::Acquire).is_null());
    }
}
