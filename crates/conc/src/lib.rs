//! # `no-conc` — the concurrency sanitizer substrate
//!
//! The parallel runtime of this workspace (the vendored work-stealing
//! pool, the lock-sharded interner, the governor's shared counters, the
//! server's token buckets) is load-bearing for every tractability
//! guarantee the engines enforce: a deadlock or a lost update in the
//! substrate silently invalidates results that the analyzers certified.
//! This crate makes that substrate *checkable* without making it slower.
//!
//! ## Layer 1 — instrumented sync shims
//!
//! [`Mutex`], [`RwLock`], [`AtomicBool`], [`AtomicU32`], [`AtomicU64`],
//! [`AtomicUsize`], [`AtomicPtr`], and [`yield_point`] are drop-in
//! replacements for their `std::sync` counterparts. With the `concheck`
//! feature **off** (the default, and the only configuration release
//! builds ever see) each shim is a `#[repr(transparent)]` wrapper whose
//! methods are `#[inline]` delegations — the generated code is identical
//! to using `std::sync` directly. The one deliberate semantic difference:
//! [`Mutex::lock`] / [`RwLock::write`] recover poison instead of
//! panicking, so one panicking thread can never cascade into a
//! process-wide panic storm through `.lock().unwrap()` chains.
//!
//! With `concheck` **on**, every acquire, release, and atomic op
//! additionally:
//!
//! 1. records a *held-while-acquiring* edge into the global
//!    [lock-order graph](lockdep) (lockdep-style, keyed by lock *class* —
//!    the `&'static str` passed to [`Mutex::new_named`]); and
//! 2. if the current thread is registered with an active
//!    [schedule exploration](sched), becomes a *scheduling point*: the
//!    thread parks until the deterministic scheduler picks it, so every
//!    interleaving of instrumented operations can be driven, replayed,
//!    and exhaustively enumerated.
//!
//! ## Layer 2 — the analyses
//!
//! * [`lockdep`] accumulates acquisition-order edges across an entire
//!   test-suite run and reports any cycle as a structured `CC001`
//!   diagnostic carrying both witness chains (who held what, acquired
//!   where). A potential deadlock is reported even if no schedule ever
//!   actually deadlocks.
//! * [`sched`] is a bounded deterministic model checker: it serialises
//!   the threads of a closed scenario, drives every scheduling point from
//!   either a seeded PRNG (PCT-style random schedules, re-runnable from
//!   the printed seed) or an exhaustive small-preemption-bound DFS, and
//!   reports deadlocks (`CC002`), invariant violations (`CC003`), and
//!   step-cap livelocks (`CC004`) with a replayable schedule description.
//!
//! The diagnostic code table and the replay workflow are documented in
//! DESIGN.md §16.
//!
//! ## What the checker does and does not model
//!
//! Execution under the scheduler is *serialised*: exactly one thread runs
//! between scheduling points, so only sequentially-consistent
//! interleavings are explored. Races that exist solely under weak memory
//! orderings are out of scope (every atomic in the migrated crates is
//! either a monotone statistic or already uses acquire/release pairs
//! reviewed by hand); deadlocks, ABBA lock cycles, lost updates,
//! double-fires, and ordering bugs between instrumented operations are
//! all in scope.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

#[cfg(not(feature = "concheck"))]
mod plain;
#[cfg(not(feature = "concheck"))]
pub use plain::{
    AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Mutex, MutexGuard, RwLock,
    RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(feature = "concheck")]
mod checked;
#[cfg(feature = "concheck")]
pub use checked::{
    AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Mutex, MutexGuard, RwLock,
    RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(feature = "concheck")]
pub mod lockdep;
#[cfg(feature = "concheck")]
pub mod report;
#[cfg(feature = "concheck")]
pub mod sched;

/// A cooperative scheduling point.
///
/// No-op (and fully inlined away) when `concheck` is off. Under an
/// active schedule exploration, the calling thread parks here until the
/// model checker picks it to continue — insert one wherever a loop spins
/// on shared state without touching an instrumented primitive.
#[inline(always)]
pub fn yield_point() {
    #[cfg(feature = "concheck")]
    sched::internal::yield_gate();
}

/// Scoped-thread helpers that make `std::thread::scope` workers visible
/// to the model checker.
pub mod thread {
    /// Like `std::thread::scope`, but safe to use inside a model-checked
    /// scenario: if the scope closure unwinds (an invariant assertion
    /// failed on this schedule), the active exploration is aborted first
    /// so children parked at scheduling points exit before the scope's
    /// implicit join — otherwise that join would hang the harness.
    ///
    /// When `concheck` is off this is exactly `std::thread::scope`.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        #[cfg(feature = "concheck")]
        let out = std::thread::scope(|s| {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(s))) {
                Ok(v) => v,
                Err(p) => {
                    crate::sched::internal::abort_on_scope_panic(p.as_ref());
                    std::panic::resume_unwind(p)
                }
            }
        });
        #[cfg(not(feature = "concheck"))]
        let out = std::thread::scope(f);
        out
    }

    /// Spawn `f` inside `scope`, registering the child with the active
    /// schedule exploration (if any) so the model checker controls it.
    ///
    /// When `concheck` is off, or no exploration is active, or the
    /// calling thread is not itself controlled, this is exactly
    /// `scope.spawn(f)`.
    pub fn spawn_scoped<'scope, 'env, F, T>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        f: F,
    ) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        #[cfg(feature = "concheck")]
        if let Some(tid) = crate::sched::internal::prepare_child() {
            return scope.spawn(move || crate::sched::internal::run_child(tid, f));
        }
        scope.spawn(f)
    }

    /// Park (via the scheduler) until every controlled thread spawned by
    /// the calling thread has finished.
    ///
    /// Call this *before* the end of a `std::thread::scope` block whose
    /// workers were spawned with [`spawn_scoped`]: the implicit join at
    /// scope exit blocks outside the scheduler's knowledge, so without
    /// this barrier the model checker would see the parent vanish into an
    /// uncontrolled wait and report a spurious deadlock. No-op when
    /// `concheck` is off or no exploration is active.
    pub fn await_children() {
        #[cfg(feature = "concheck")]
        crate::sched::internal::await_children();
    }
}
