//! Lockdep-style lock-order analysis.
//!
//! Every instrumented acquisition records one *held-while-acquiring* edge
//! per lock the acquiring thread already holds: holding a lock of class
//! `A` while acquiring one of class `B` adds the directed edge `A → B`
//! (with a witness naming both acquisition sites and the full held
//! chain). The edges accumulate in one global graph across the entire
//! test run — the whole point is that a cycle is reported even when the
//! two halves of an ABBA pair were observed in *different* tests, minutes
//! apart, with no schedule ever actually deadlocking.
//!
//! A cycle in the class graph is a potential deadlock and is reported as
//! a [`CC001`](crate::report) diagnostic. Edges within one class
//! (`A → A`) are cycles of length one: two instances of the same class
//! acquired in instance order can deadlock against the opposite order —
//! exactly the PR 5 minipool bug, where a worker held its own deque lock
//! (class `minipool.deque`) while stealing from a sibling's (same
//! class). Classes are the `&'static str` names passed to
//! [`Mutex::new_named`](crate::Mutex::new_named); unnamed locks share the
//! class `"conc.anon"`, whose self-edges are *not* reported (distinct
//! anonymous locks are indistinguishable, so a self-edge there is usually
//! two unrelated locks) — name any lock you want the analysis to cover.

use crate::report::{json_string, Diag};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex as StdMutex;

/// Class name given to locks constructed without [`Mutex::new_named`]
/// (self-edges on this class are exempt from cycle reporting).
pub const ANON_CLASS: &str = "conc.anon";

/// One held-while-acquiring observation, keyed by `(held, acquired)`
/// class pair; only the first witness per pair is kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Class of the lock already held.
    pub held_class: &'static str,
    /// Where (file:line) and by which thread the held lock was acquired.
    pub held_site: String,
    /// Class of the lock being acquired.
    pub acq_class: &'static str,
    /// Where the acquisition happened.
    pub acq_site: String,
    /// The full chain of locks held at acquisition time, innermost last.
    pub chain: Vec<String>,
    /// Thread that performed the acquisition.
    pub thread: String,
}

impl Edge {
    fn witness(&self) -> String {
        format!(
            "thread {t}: holding {hc} (acquired at {hs}) while acquiring {ac} at {as_}; held chain: [{chain}]",
            t = self.thread,
            hc = self.held_class,
            hs = self.held_site,
            ac = self.acq_class,
            as_ = self.acq_site,
            chain = self.chain.join(" -> "),
        )
    }

    fn json(&self) -> String {
        format!(
            "{{\"held\":{},\"held_site\":{},\"acquired\":{},\"acquired_site\":{},\"thread\":{},\"chain\":{}}}",
            json_string(self.held_class),
            json_string(&self.held_site),
            json_string(self.acq_class),
            json_string(&self.acq_site),
            json_string(&self.thread),
            format_args!(
                "[{}]",
                self.chain
                    .iter()
                    .map(|c| json_string(c))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        )
    }
}

static GRAPH: StdMutex<Vec<Edge>> = StdMutex::new(Vec::new());

/// Record an edge (first witness per class pair wins). Called from the
/// instrumented acquire path; takes the `std` mutex directly — the graph
/// is checker infrastructure, not checked code.
pub(crate) fn record(edge: Edge) {
    let mut g = GRAPH.lock().unwrap_or_else(|p| p.into_inner());
    if g.iter()
        .any(|e| e.held_class == edge.held_class && e.acq_class == edge.acq_class)
    {
        return;
    }
    g.push(edge);
}

/// Snapshot of the accumulated edges.
pub fn edges() -> Vec<Edge> {
    GRAPH.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Number of edges currently recorded (used by explorations to compute
/// the delta a scenario contributed).
pub fn edge_count() -> usize {
    GRAPH.lock().unwrap_or_else(|p| p.into_inner()).len()
}

/// Edges recorded at index `from` onward.
pub fn edges_since(from: usize) -> Vec<Edge> {
    let g = GRAPH.lock().unwrap_or_else(|p| p.into_inner());
    g.iter().skip(from).cloned().collect()
}

/// Clear the graph. Use only around planted-bug tests that deliberately
/// record poisonous edges — the value of lockdep comes from *not*
/// resetting it between tests.
pub fn reset() {
    GRAPH.lock().unwrap_or_else(|p| p.into_inner()).clear();
}

// --- per-thread held-lock stack (feeds `record`) -------------------------

struct Held {
    class: &'static str,
    site: String,
    token: u64,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

fn thread_label() -> String {
    if let Some(tid) = crate::sched::internal::cur_tid() {
        return format!("t{tid}");
    }
    let cur = std::thread::current();
    match cur.name() {
        Some(n) => n.to_string(),
        None => format!("{:?}", cur.id()),
    }
}

/// Record edges from every currently-held lock to the one being
/// acquired, then push it onto the held stack. Returns a token the
/// matching [`note_release`] must pass back (guards can drop out of
/// order).
pub(crate) fn note_acquire(class: &'static str, site: &Location<'_>) -> u64 {
    let site_s = format!("{}:{}", site.file(), site.line());
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        if !h.is_empty() {
            let chain: Vec<String> = h
                .iter()
                .map(|x| format!("{} @ {}", x.class, x.site))
                .collect();
            let thread = thread_label();
            for held in h.iter() {
                record(Edge {
                    held_class: held.class,
                    held_site: held.site.clone(),
                    acq_class: class,
                    acq_site: site_s.clone(),
                    chain: chain.clone(),
                    thread: thread.clone(),
                });
            }
        }
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        h.push(Held {
            class,
            site: site_s,
            token,
        });
        token
    })
}

/// Pop the held-stack entry created by the `note_acquire` that returned
/// `token`.
pub(crate) fn note_release(token: u64) {
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        if let Some(i) = h.iter().rposition(|x| x.token == token) {
            h.remove(i);
        }
    });
}

/// All `CC001` cycle diagnostics in the accumulated graph.
pub fn cycles() -> Vec<Diag> {
    cycles_in(&edges())
}

/// `CC001` cycle diagnostics over an explicit edge set (used for
/// per-exploration deltas).
pub fn cycles_in(edges: &[Edge]) -> Vec<Diag> {
    let mut out = Vec::new();
    let mut reported: BTreeSet<Vec<&'static str>> = BTreeSet::new();

    // Self-edges are length-1 cycles (instance-order deadlocks within a
    // class), except on the anonymous class.
    for e in edges {
        if e.held_class == e.acq_class && e.held_class != ANON_CLASS {
            let key = vec![e.held_class];
            if reported.insert(key) {
                out.push(Diag {
                    code: "CC001",
                    message: format!(
                        "potential deadlock: lock class `{}` is acquired while an instance of the same class is already held (two threads doing this against opposite instances deadlock)",
                        e.held_class
                    ),
                    witnesses: vec![e.witness()],
                });
            }
        }
    }

    // Longer cycles: DFS over the class digraph (self-edges excluded —
    // already reported above).
    let mut adj: BTreeMap<&'static str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        if e.held_class != e.acq_class {
            adj.entry(e.held_class).or_default().push(e);
        }
    }
    let nodes: Vec<&'static str> = adj.keys().copied().collect();
    for &start in &nodes {
        // DFS looking for a path back to `start`.
        let mut stack: Vec<(&'static str, Vec<&Edge>)> = vec![(start, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            for e in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
                if e.acq_class == start {
                    let mut cycle_edges = path.clone();
                    cycle_edges.push(e);
                    let mut classes: Vec<&'static str> =
                        cycle_edges.iter().map(|e| e.held_class).collect();
                    let canon = {
                        let mut c = classes.clone();
                        c.sort_unstable();
                        c
                    };
                    if reported.insert(canon) {
                        classes.push(start);
                        out.push(Diag {
                            code: "CC001",
                            message: format!(
                                "potential deadlock: lock-order cycle {}",
                                classes.join(" -> ")
                            ),
                            witnesses: cycle_edges.iter().map(|e| e.witness()).collect(),
                        });
                    }
                } else if !path.iter().any(|p| p.held_class == e.acq_class) && e.acq_class != start
                {
                    let mut path2 = path.clone();
                    path2.push(e);
                    stack.push((e.acq_class, path2));
                }
            }
        }
    }
    out
}

/// Render the accumulated graph (edges + any cycles) as a JSON document —
/// the CI artifact format.
pub fn graph_json() -> String {
    graph_json_of(&edges())
}

/// [`graph_json`] over an explicit edge set.
pub fn graph_json_of(edges: &[Edge]) -> String {
    let edge_items: Vec<String> = edges.iter().map(|e| e.json()).collect();
    let cyc = cycles_in(edges);
    let cyc_items: Vec<String> = cyc
        .iter()
        .map(|d| {
            format!(
                "{{\"code\":{},\"message\":{},\"witnesses\":{}}}",
                json_string(d.code),
                json_string(&d.message),
                d.witnesses_json()
            )
        })
        .collect();
    format!(
        "{{\n  \"edges\": [{}],\n  \"cycles\": [{}]\n}}\n",
        edge_items.join(", "),
        cyc_items.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(held: &'static str, acq: &'static str) -> Edge {
        Edge {
            held_class: held,
            held_site: "a.rs:1".into(),
            acq_class: acq,
            acq_site: "b.rs:2".into(),
            chain: vec![format!("{held} @ a.rs:1")],
            thread: "t0".into(),
        }
    }

    #[test]
    fn self_edge_is_a_cycle_with_witness() {
        let diags = cycles_in(&[edge("pool.deque", "pool.deque")]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "CC001");
        assert!(diags[0].message.contains("pool.deque"));
        assert!(diags[0].witnesses[0].contains("holding pool.deque"));
    }

    #[test]
    fn anon_self_edge_is_exempt() {
        assert!(cycles_in(&[edge(ANON_CLASS, ANON_CLASS)]).is_empty());
    }

    #[test]
    fn abba_pair_is_one_cycle_with_both_witnesses() {
        let diags = cycles_in(&[edge("a", "b"), edge("b", "a")]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].witnesses.len(), 2, "{:?}", diags[0]);
        assert!(diags[0].message.contains("a -> b") || diags[0].message.contains("b -> a"));
    }

    #[test]
    fn three_cycle_detected_dag_clean() {
        let diags = cycles_in(&[edge("a", "b"), edge("b", "c"), edge("c", "a")]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].witnesses.len(), 3);
        let clean = cycles_in(&[edge("a", "b"), edge("b", "c"), edge("a", "c")]);
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn graph_json_is_well_formed_enough() {
        let j = graph_json_of(&[edge("a", "b"), edge("b", "a")]);
        assert!(j.contains("\"edges\""));
        assert!(j.contains("\"cycles\""));
        assert!(j.contains("CC001"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
