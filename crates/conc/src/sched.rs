//! Bounded deterministic-schedule model checker.
//!
//! [`explore`] runs a closed scenario closure many times, each time
//! driving every *scheduling point* (instrumented lock acquisition,
//! atomic op, or explicit [`yield_point`](crate::yield_point)) from a
//! deterministic policy:
//!
//! * **seeded random schedules** (PCT-style): each seed is a complete,
//!   replayable schedule — a failure prints its seed, and re-running
//!   [`ExploreOpts::replay`] with that seed reproduces it exactly;
//! * **exhaustive small-preemption-bound DFS**: every schedule whose
//!   number of preemptions (switching away from a runnable thread) is at
//!   most the bound is enumerated, up to `max_schedules`.
//!
//! Execution is *serialised*: exactly one scenario thread runs between
//! scheduling points, so each schedule is a deterministic
//! sequentially-consistent interleaving. Lock ownership is simulated by
//! the scheduler (the real `std` lock is only ever taken by the thread
//! the simulation granted it to), which is what lets the checker *detect*
//! a deadlock and abort the schedule instead of hanging in it.
//!
//! Failures are reported as structured [`Diag`]s: `CC002` (a schedule
//! actually deadlocked — witness lines show who holds what and waits for
//! what), `CC003` (a scenario assertion failed on some schedule), `CC004`
//! (a schedule exceeded the step cap — livelock-like). `CC001` lock-order
//! cycles are the [`lockdep`](crate::lockdep) module's department, but
//! every acquisition performed under the checker feeds that graph too;
//! [`ExploreResult::new_edges`] reports the delta a scenario contributed.
//!
//! Scenario rules: build all shared state inside the closure (it runs
//! once per schedule); spawn workers with
//! [`thread::spawn_scoped`](crate::thread::spawn_scoped) inside
//! [`thread::scope`](crate::thread::scope); call
//! [`thread::await_children`](crate::thread::await_children) before the
//! scope ends (the scope's own join blocks outside the scheduler's
//! knowledge); never touch wall-clock time or OS randomness.

use crate::lockdep;
use crate::report::Diag;
use std::any::Any;
use std::collections::BTreeMap;
use std::panic::Location;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Panic payload used to unwind scenario threads when a schedule is
/// aborted (deadlock detected, step cap hit). Never escapes [`explore`].
pub(crate) struct SchedAbort;

/// How a lock is being acquired, for the ownership simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum LockKind {
    /// Exclusive: `Mutex::lock`, `RwLock::write`.
    Excl,
    /// Shared: `RwLock::read`.
    Shared,
}

// ---------------------------------------------------------------------------
// Controller state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum TState {
    /// Allocated by `prepare_child`, OS thread not yet running.
    Starting,
    Runnable,
    Blocked {
        lock: usize,
        kind: LockKind,
        site: &'static Location<'static>,
    },
    BlockedChildren,
    Finished,
}

struct Hold {
    lock: usize,
    class: &'static str,
    site: String,
}

struct ThreadRec {
    state: TState,
    parent: Option<usize>,
    live_children: usize,
    holds: Vec<Hold>,
}

impl ThreadRec {
    fn new(state: TState, parent: Option<usize>) -> Self {
        ThreadRec {
            state,
            parent,
            live_children: 0,
            holds: Vec::new(),
        }
    }
}

struct LockSim {
    class: &'static str,
    excl: Option<usize>,
    shared: Vec<usize>,
}

/// One scheduling decision, recorded in scripted (exhaustive) runs so
/// the DFS can branch on the alternatives.
#[derive(Clone, Debug)]
struct Choice {
    options: Vec<usize>,
    chosen: usize,
    /// The previously running thread, iff it was itself still runnable
    /// (so picking anything else counts as a preemption).
    prev: Option<usize>,
}

enum Policy {
    Inactive,
    Random(XorShift),
    Script {
        script: Vec<usize>,
        pos: usize,
        choices: Vec<Choice>,
    },
}

struct Ctrl {
    active: bool,
    abort: bool,
    name: &'static str,
    threads: Vec<ThreadRec>,
    current: Option<usize>,
    policy: Policy,
    steps: usize,
    step_cap: usize,
    trace: Vec<usize>,
    locks: BTreeMap<usize, LockSim>,
    failure: Option<Diag>,
    first_panic: Option<String>,
}

impl Ctrl {
    const fn initial() -> Ctrl {
        Ctrl {
            active: false,
            abort: false,
            name: "",
            threads: Vec::new(),
            current: None,
            policy: Policy::Inactive,
            steps: 0,
            step_cap: 0,
            trace: Vec::new(),
            locks: BTreeMap::new(),
            failure: None,
            first_panic: None,
        }
    }
}

static CTRL_M: StdMutex<Ctrl> = StdMutex::new(Ctrl::initial());
static CTRL_CV: Condvar = Condvar::new();
/// Serialises explorations: one `explore` at a time per process.
static EXPLORE_GUARD: StdMutex<()> = StdMutex::new(());

fn ctrl() -> StdMutexGuard<'static, Ctrl> {
    CTRL_M.lock().unwrap_or_else(|p| p.into_inner())
}

fn wait_turn(mut g: StdMutexGuard<'static, Ctrl>, tid: usize) -> StdMutexGuard<'static, Ctrl> {
    loop {
        if g.abort {
            drop(g);
            panic_any(SchedAbort);
        }
        if g.current == Some(tid) {
            return g;
        }
        g = CTRL_CV.wait(g).unwrap_or_else(|p| p.into_inner());
    }
}

fn default_pick(prev: Option<usize>, runnable: &[usize]) -> usize {
    prev.unwrap_or(runnable[0])
}

/// Pick the next thread to run. Also the single place deadlocks and the
/// step cap are detected.
fn choose_next(c: &mut Ctrl) {
    if c.abort {
        c.current = None;
        return;
    }
    if c.threads
        .iter()
        .any(|t| matches!(t.state, TState::Starting))
    {
        // A spawned thread hasn't reached its first gate yet. Defer ALL
        // decisions until it registers (it calls choose_next then):
        // deciding early would let OS thread-startup latency hide the
        // late thread from the schedule, making runs nondeterministic
        // and exhaustive exploration blind to its interleavings.
        c.current = None;
        return;
    }
    let runnable: Vec<usize> = c
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t.state, TState::Runnable))
        .map(|(i, _)| i)
        .collect();
    if runnable.is_empty() {
        let blocked: Vec<usize> = c
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.state, TState::Blocked { .. } | TState::BlockedChildren))
            .map(|(i, _)| i)
            .collect();
        if !blocked.is_empty() {
            let mut witnesses = Vec::new();
            for &tid in &blocked {
                let t = &c.threads[tid];
                let holds: Vec<String> = t
                    .holds
                    .iter()
                    .map(|h| format!("{} @ {}", h.class, h.site))
                    .collect();
                let line = match t.state {
                    TState::Blocked { lock, kind, site } => {
                        let class = c.locks.get(&lock).map(|l| l.class).unwrap_or("<unknown>");
                        let verb = match kind {
                            LockKind::Excl => "acquiring",
                            LockKind::Shared => "read-acquiring",
                        };
                        format!(
                            "t{tid}: holds [{}], blocked {verb} `{class}` at {}:{}",
                            holds.join(", "),
                            site.file(),
                            site.line()
                        )
                    }
                    TState::BlockedChildren => format!(
                        "t{tid}: holds [{}], waiting for {} child thread(s)",
                        holds.join(", "),
                        t.live_children
                    ),
                    _ => unreachable!(),
                };
                witnesses.push(line);
            }
            witnesses.push(format!("schedule so far: {:?}", c.trace));
            c.failure = Some(Diag {
                code: "CC002",
                message: format!(
                    "actual deadlock in scenario `{}`: {} thread(s) blocked, none runnable",
                    c.name,
                    blocked.len()
                ),
                witnesses,
            });
            c.abort = true;
        }
        c.current = None;
        return;
    }
    c.steps += 1;
    if c.steps > c.step_cap {
        c.failure = Some(Diag {
            code: "CC004",
            message: format!(
                "scenario `{}` exceeded the step cap of {} scheduling points (livelock-like)",
                c.name, c.step_cap
            ),
            witnesses: vec![format!(
                "schedule tail: {:?}",
                &c.trace[c.trace.len().saturating_sub(24)..]
            )],
        });
        c.abort = true;
        c.current = None;
        return;
    }
    let prev = c.current.filter(|t| runnable.contains(t));
    let chosen = match &mut c.policy {
        Policy::Inactive => default_pick(prev, &runnable),
        Policy::Random(rng) => runnable[(rng.next() as usize) % runnable.len()],
        Policy::Script {
            script,
            pos,
            choices,
        } => {
            let pick = if *pos < script.len() {
                let want = script[*pos];
                if runnable.contains(&want) {
                    want
                } else {
                    default_pick(prev, &runnable)
                }
            } else {
                default_pick(prev, &runnable)
            };
            choices.push(Choice {
                options: runnable.clone(),
                chosen: pick,
                prev,
            });
            *pos += 1;
            pick
        }
    };
    c.trace.push(chosen);
    c.current = Some(chosen);
}

// ---------------------------------------------------------------------------
// Internal hooks used by the shims and the thread helpers
// ---------------------------------------------------------------------------

pub(crate) mod internal {
    use super::*;
    use std::cell::Cell;

    thread_local! {
        static TID: Cell<Option<usize>> = const { Cell::new(None) };
    }

    pub(crate) fn cur_tid() -> Option<usize> {
        TID.with(|t| t.get())
    }

    pub(crate) fn set_tid(tid: Option<usize>) {
        TID.with(|t| t.set(tid));
    }

    /// A plain scheduling point: hand control to the scheduler and wait
    /// until this thread is picked again.
    pub(crate) fn yield_gate() {
        let Some(tid) = cur_tid() else { return };
        if std::thread::panicking() {
            return;
        }
        let mut c = ctrl();
        if !c.active {
            return;
        }
        if c.abort {
            drop(c);
            panic_any(SchedAbort);
        }
        choose_next(&mut c);
        CTRL_CV.notify_all();
        let _c = wait_turn(c, tid);
    }

    /// Simulated blocking lock acquisition. Returns `true` when the
    /// calling thread is controlled and now owns the simulated lock (the
    /// caller may then take the real lock, which is guaranteed
    /// uncontended); `false` when uncontrolled (caller just takes the
    /// real lock).
    pub(crate) fn lock_acquire(
        id: usize,
        class: &'static str,
        kind: LockKind,
        site: &'static Location<'static>,
    ) -> bool {
        let Some(tid) = cur_tid() else { return false };
        if std::thread::panicking() {
            return false;
        }
        let mut c = ctrl();
        if !c.active {
            return false;
        }
        if c.abort {
            drop(c);
            panic_any(SchedAbort);
        }
        // Scheduling point before the acquire attempt.
        choose_next(&mut c);
        CTRL_CV.notify_all();
        c = wait_turn(c, tid);
        loop {
            let can = {
                let sim = c.locks.entry(id).or_insert(LockSim {
                    class,
                    excl: None,
                    shared: Vec::new(),
                });
                match kind {
                    LockKind::Excl => sim.excl.is_none() && sim.shared.is_empty(),
                    LockKind::Shared => sim.excl.is_none(),
                }
            };
            if can {
                let sim = c.locks.get_mut(&id).expect("lock just inserted");
                match kind {
                    LockKind::Excl => sim.excl = Some(tid),
                    LockKind::Shared => sim.shared.push(tid),
                }
                c.threads[tid].holds.push(Hold {
                    lock: id,
                    class,
                    site: format!("{}:{}", site.file(), site.line()),
                });
                return true;
            }
            c.threads[tid].state = TState::Blocked {
                lock: id,
                kind,
                site,
            };
            choose_next(&mut c);
            CTRL_CV.notify_all();
            c = wait_turn(c, tid);
        }
    }

    /// Simulated `try_lock`. `None` = uncontrolled (caller should do a
    /// real `try_lock`); `Some(true)` = granted; `Some(false)` = would
    /// block.
    pub(crate) fn lock_try_acquire(
        id: usize,
        class: &'static str,
        kind: LockKind,
        site: &'static Location<'static>,
    ) -> Option<bool> {
        let tid = cur_tid()?;
        if std::thread::panicking() {
            return None;
        }
        let mut c = ctrl();
        if !c.active {
            return None;
        }
        if c.abort {
            drop(c);
            panic_any(SchedAbort);
        }
        choose_next(&mut c);
        CTRL_CV.notify_all();
        c = wait_turn(c, tid);
        let sim = c.locks.entry(id).or_insert(LockSim {
            class,
            excl: None,
            shared: Vec::new(),
        });
        let can = match kind {
            LockKind::Excl => sim.excl.is_none() && sim.shared.is_empty(),
            LockKind::Shared => sim.excl.is_none(),
        };
        if !can {
            return Some(false);
        }
        match kind {
            LockKind::Excl => sim.excl = Some(tid),
            LockKind::Shared => sim.shared.push(tid),
        }
        c.threads[tid].holds.push(Hold {
            lock: id,
            class,
            site: format!("{}:{}", site.file(), site.line()),
        });
        Some(true)
    }

    /// Release a simulated lock and wake its waiters. Safe to call
    /// during unwinding (never gates, never panics).
    pub(crate) fn lock_release(id: usize, kind: LockKind) {
        let Some(tid) = cur_tid() else { return };
        let mut c = ctrl();
        if !c.active {
            return;
        }
        if let Some(pos) = c.threads[tid].holds.iter().rposition(|h| h.lock == id) {
            c.threads[tid].holds.remove(pos);
        }
        if let Some(sim) = c.locks.get_mut(&id) {
            match kind {
                LockKind::Excl => {
                    if sim.excl == Some(tid) {
                        sim.excl = None;
                    }
                }
                LockKind::Shared => {
                    if let Some(i) = sim.shared.iter().rposition(|&t| t == tid) {
                        sim.shared.remove(i);
                    }
                }
            }
        }
        for t in 0..c.threads.len() {
            if let TState::Blocked { lock, .. } = c.threads[t].state {
                if lock == id {
                    c.threads[t].state = TState::Runnable;
                }
            }
        }
        CTRL_CV.notify_all();
    }

    /// Allocate a tid for a child about to be spawned (deterministic:
    /// assigned in the parent, in spawn order). `None` when the caller
    /// is uncontrolled — the child then runs uncontrolled too.
    pub(crate) fn prepare_child() -> Option<usize> {
        let tid = cur_tid()?;
        let mut c = ctrl();
        if !c.active {
            return None;
        }
        let child = c.threads.len();
        c.threads.push(ThreadRec::new(TState::Starting, Some(tid)));
        c.threads[tid].live_children += 1;
        Some(child)
    }

    /// Body wrapper for a controlled child thread: register, wait for
    /// the first grant, run `f`, then do finish bookkeeping (including
    /// waking a parent parked in [`await_children`]).
    pub(crate) fn run_child<F, T>(tid: usize, f: F) -> T
    where
        F: FnOnce() -> T,
    {
        set_tid(Some(tid));
        let result = catch_unwind(AssertUnwindSafe(|| {
            {
                let mut c = ctrl();
                if c.active {
                    c.threads[tid].state = TState::Runnable;
                    if c.current.is_none() {
                        choose_next(&mut c);
                    }
                    CTRL_CV.notify_all();
                    let _c = wait_turn(c, tid);
                }
            }
            f()
        }));
        {
            let mut c = ctrl();
            if c.active {
                c.threads[tid].state = TState::Finished;
                if let Some(p) = c.threads[tid].parent {
                    c.threads[p].live_children = c.threads[p].live_children.saturating_sub(1);
                    if c.threads[p].live_children == 0
                        && matches!(c.threads[p].state, TState::BlockedChildren)
                    {
                        c.threads[p].state = TState::Runnable;
                    }
                }
                if let Err(p) = &result {
                    if !p.is::<SchedAbort>() && c.first_panic.is_none() {
                        c.first_panic = Some(payload_msg_ref(p.as_ref()));
                    }
                }
                if c.current == Some(tid) || c.current.is_none() {
                    choose_next(&mut c);
                }
                CTRL_CV.notify_all();
            }
        }
        set_tid(None);
        match result {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        }
    }

    /// Park (via the scheduler) until every child spawned by the calling
    /// thread has finished. See [`crate::thread::await_children`].
    pub(crate) fn await_children() {
        let Some(tid) = cur_tid() else { return };
        if std::thread::panicking() {
            return;
        }
        loop {
            let mut c = ctrl();
            if !c.active {
                return;
            }
            if c.abort {
                drop(c);
                panic_any(SchedAbort);
            }
            if c.threads[tid].live_children == 0 {
                return;
            }
            c.threads[tid].state = TState::BlockedChildren;
            choose_next(&mut c);
            CTRL_CV.notify_all();
            let _c = wait_turn(c, tid);
        }
    }

    /// Called by [`crate::thread::scope`] when the scope closure unwinds
    /// with a non-abort panic: abort the schedule so children parked at
    /// gates exit (otherwise the scope's implicit join would hang the
    /// harness).
    pub(crate) fn abort_on_scope_panic(payload: &(dyn Any + Send)) {
        if cur_tid().is_none() {
            return;
        }
        if payload.is::<SchedAbort>() {
            return;
        }
        let mut c = ctrl();
        if !c.active || c.abort {
            return;
        }
        if c.first_panic.is_none() {
            c.first_panic = Some(payload_msg_ref(payload));
        }
        c.abort = true;
        c.current = None;
        CTRL_CV.notify_all();
    }
}

fn payload_msg_ref(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// Deterministic PRNG used for seeded random schedules (xorshift64*).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How to reproduce a failing schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Replay {
    /// Re-run with [`ExploreOpts::replay`] and this seed.
    Seed(u64),
    /// Re-run with [`ExploreOpts::replay_script`] set to this decision
    /// sequence (exhaustive-mode failures).
    Script(Vec<usize>),
}

impl std::fmt::Display for Replay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Replay::Seed(s) => write!(f, "seed {s:#x}"),
            Replay::Script(v) => write!(f, "script {v:?}"),
        }
    }
}

/// A failure found on some schedule, with how to reproduce it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The structured diagnostic (`CC002`/`CC003`/`CC004`).
    pub diag: Diag,
    /// The schedule that produced it.
    pub replay: Replay,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}  replay: {}", self.diag, self.replay)
    }
}

/// Exploration configuration. Construct via [`ExploreOpts::random`],
/// [`ExploreOpts::exhaustive`], or [`ExploreOpts::replay`], then tweak
/// fields as needed.
#[derive(Clone, Debug)]
pub struct ExploreOpts {
    /// Scenario name, used in diagnostics.
    pub name: &'static str,
    /// Seeds for random schedules (each seed = one schedule).
    pub seeds: Vec<u64>,
    /// `Some(k)` additionally runs the exhaustive DFS over all schedules
    /// with at most `k` preemptions.
    pub preemption_bound: Option<usize>,
    /// A single scripted schedule to replay first (from a `CC00x`
    /// `Replay::Script`).
    pub replay_script: Option<Vec<usize>>,
    /// Cap on the number of schedules the exhaustive DFS may run; hitting
    /// it sets [`ExploreResult::capped`] (no silent truncation).
    pub max_schedules: usize,
    /// Scheduling points allowed per schedule before `CC004` fires.
    pub step_cap: usize,
}

impl ExploreOpts {
    /// `n` random schedules derived from `base_seed` (printed on
    /// failure; each derived seed is individually replayable).
    pub fn random(name: &'static str, n: usize, base_seed: u64) -> Self {
        let mut s = base_seed;
        ExploreOpts {
            name,
            seeds: (0..n).map(|_| splitmix(&mut s)).collect(),
            preemption_bound: None,
            replay_script: None,
            max_schedules: 4000,
            step_cap: 20_000,
        }
    }

    /// Exhaustive DFS over all schedules with at most `bound`
    /// preemptions.
    pub fn exhaustive(name: &'static str, bound: usize) -> Self {
        ExploreOpts {
            name,
            seeds: Vec::new(),
            preemption_bound: Some(bound),
            replay_script: None,
            max_schedules: 4000,
            step_cap: 20_000,
        }
    }

    /// Replay exactly one seeded schedule (from a failure report).
    pub fn replay(name: &'static str, seed: u64) -> Self {
        ExploreOpts {
            name,
            seeds: vec![seed],
            preemption_bound: None,
            replay_script: None,
            max_schedules: 4000,
            step_cap: 20_000,
        }
    }
}

/// Outcome of an [`explore`] call.
#[derive(Debug)]
pub struct ExploreResult {
    /// Scenario name.
    pub name: &'static str,
    /// Total schedules executed.
    pub schedules_run: usize,
    /// True iff the exhaustive DFS was cut off by `max_schedules`.
    pub capped: bool,
    /// Deduplicated failures (by code + message), each with a replay.
    pub failures: Vec<Failure>,
    /// Lock-order edges first observed during this exploration.
    pub new_edges: Vec<lockdep::Edge>,
}

impl ExploreResult {
    /// True iff no schedule failed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Panic (with every failure and its replay line) unless clean.
    pub fn assert_ok(&self) {
        if !self.failures.is_empty() {
            let mut msg = format!(
                "concheck scenario `{}` failed on {} of {} schedule(s):\n",
                self.name,
                self.failures.len(),
                self.schedules_run
            );
            for f in &self.failures {
                msg.push_str(&format!("{f}\n"));
            }
            panic!("{msg}");
        }
    }
}

enum Outcome {
    Pass,
    Abort(Diag),
    Panic(String),
}

struct RunOut {
    outcome: Outcome,
    choices: Vec<Choice>,
    trace: Vec<usize>,
}

fn run_one<F: Fn()>(name: &'static str, policy: Policy, step_cap: usize, scenario: &F) -> RunOut {
    {
        let mut c = ctrl();
        *c = Ctrl::initial();
        c.active = true;
        c.name = name;
        c.policy = policy;
        c.step_cap = step_cap;
        c.threads.push(ThreadRec::new(TState::Runnable, None));
        c.current = Some(0);
    }
    internal::set_tid(Some(0));
    let r = catch_unwind(AssertUnwindSafe(scenario));
    internal::set_tid(None);
    let mut c = ctrl();
    c.active = false;
    let failure = c.failure.take();
    let first_panic = c.first_panic.take();
    let choices = match std::mem::replace(&mut c.policy, Policy::Inactive) {
        Policy::Script { choices, .. } => choices,
        _ => Vec::new(),
    };
    let trace = std::mem::take(&mut c.trace);
    c.threads.clear();
    c.locks.clear();
    drop(c);
    let outcome = match r {
        Ok(()) => {
            if let Some(d) = failure {
                Outcome::Abort(d)
            } else {
                Outcome::Pass
            }
        }
        Err(p) if p.is::<SchedAbort>() => {
            if let Some(d) = failure {
                Outcome::Abort(d)
            } else if let Some(m) = first_panic {
                Outcome::Panic(m)
            } else {
                Outcome::Panic("schedule aborted without a recorded failure".to_string())
            }
        }
        Err(p) => Outcome::Panic(first_panic.unwrap_or_else(|| payload_msg_ref(p.as_ref()))),
    };
    RunOut {
        outcome,
        choices,
        trace,
    }
}

/// Run `scenario` under every schedule the options call for, collecting
/// structured failures. Explorations are serialised process-wide.
pub fn explore<F: Fn()>(opts: ExploreOpts, scenario: F) -> ExploreResult {
    let _g = EXPLORE_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let edges_before = lockdep::edge_count();
    let mut failures: Vec<Failure> = Vec::new();
    let mut seen: Vec<(&'static str, String)> = Vec::new();
    let mut schedules_run = 0usize;
    let mut capped = false;

    let note = |failures: &mut Vec<Failure>,
                seen: &mut Vec<(&'static str, String)>,
                out: &RunOut,
                replay: Replay| {
        let diag = match &out.outcome {
            Outcome::Pass => return,
            Outcome::Abort(d) => d.clone(),
            Outcome::Panic(m) => Diag {
                code: "CC003",
                message: format!("invariant violation in scenario `{}`: {m}", opts.name),
                witnesses: vec![format!("schedule: {:?}", out.trace)],
            },
        };
        let key = (diag.code, diag.message.clone());
        if seen.contains(&key) {
            return;
        }
        seen.push(key);
        failures.push(Failure { diag, replay });
    };

    if let Some(script) = &opts.replay_script {
        let out = run_one(
            opts.name,
            Policy::Script {
                script: script.clone(),
                pos: 0,
                choices: Vec::new(),
            },
            opts.step_cap,
            &scenario,
        );
        schedules_run += 1;
        note(
            &mut failures,
            &mut seen,
            &out,
            Replay::Script(script.clone()),
        );
    }

    for &seed in &opts.seeds {
        let out = run_one(
            opts.name,
            Policy::Random(XorShift::new(seed)),
            opts.step_cap,
            &scenario,
        );
        schedules_run += 1;
        note(&mut failures, &mut seen, &out, Replay::Seed(seed));
    }

    if let Some(bound) = opts.preemption_bound {
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(script) = stack.pop() {
            if schedules_run >= opts.max_schedules {
                capped = true;
                break;
            }
            let out = run_one(
                opts.name,
                Policy::Script {
                    script: script.clone(),
                    pos: 0,
                    choices: Vec::new(),
                },
                opts.step_cap,
                &scenario,
            );
            schedules_run += 1;
            note(
                &mut failures,
                &mut seen,
                &out,
                Replay::Script(script.clone()),
            );
            // Branch on every decision at or beyond the forced prefix.
            let mut preempt_before = script
                .iter()
                .zip(out.choices.iter())
                .filter(|(_, ch)| matches!(ch.prev, Some(p) if p != ch.chosen))
                .count();
            // Count preemptions in the default tail incrementally as we
            // walk positions >= script.len().
            for i in script.len()..out.choices.len() {
                let ch = &out.choices[i];
                for &o in &ch.options {
                    if o == ch.chosen {
                        continue;
                    }
                    let extra = usize::from(matches!(ch.prev, Some(p) if p != o));
                    if preempt_before + extra <= bound {
                        let mut s: Vec<usize> = out.choices[..i].iter().map(|c| c.chosen).collect();
                        s.push(o);
                        stack.push(s);
                    }
                }
                preempt_before += usize::from(matches!(ch.prev, Some(p) if p != ch.chosen));
            }
        }
    }

    ExploreResult {
        name: opts.name,
        schedules_run,
        capped,
        failures,
        new_edges: lockdep::edges_since(edges_before),
    }
}

/// Extra random seeds requested via the environment (used by the CI
/// `concheck` job to run fresh schedules every build):
/// `CONCHECK_EXTRA_SEEDS` = how many, `CONCHECK_EXTRA_SEED_BASE` = base
/// (decimal or `0x`-hex) they are derived from. Empty when unset.
pub fn env_seeds() -> Vec<u64> {
    let n: usize = std::env::var("CONCHECK_EXTRA_SEEDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    let mut base: u64 = std::env::var("CONCHECK_EXTRA_SEED_BASE")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            if let Some(h) = s.strip_prefix("0x") {
                u64::from_str_radix(h, 16).ok()
            } else {
                s.parse().ok()
            }
        })
        .unwrap_or(0x5EED_BA5E_0000_0001);
    (0..n).map(|_| splitmix(&mut base)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::SeqCst;

    #[test]
    fn default_schedule_is_deterministic_and_clean() {
        let res = explore(ExploreOpts::exhaustive("two-incrementers", 0), || {
            let a = crate::AtomicUsize::new(0);
            crate::thread::scope(|s| {
                for _ in 0..2 {
                    crate::thread::spawn_scoped(s, || {
                        a.fetch_add(1, SeqCst);
                    });
                }
                crate::thread::await_children();
            });
            assert_eq!(a.load(SeqCst), 2);
        });
        res.assert_ok();
        assert!(res.schedules_run >= 1);
        assert!(!res.capped);
    }

    #[test]
    fn lost_update_found_exhaustively_and_fixed_version_clean() {
        let racy = || {
            let a = crate::AtomicUsize::new(0);
            crate::thread::scope(|s| {
                for _ in 0..2 {
                    crate::thread::spawn_scoped(s, || {
                        let v = a.load(SeqCst); // read...
                        a.store(v + 1, SeqCst); // ...modify-write, non-atomically
                    });
                }
                crate::thread::await_children();
            });
            assert_eq!(
                a.load(SeqCst),
                2,
                "lost update: counter ended at {}",
                a.load(SeqCst)
            );
        };
        let res = explore(ExploreOpts::exhaustive("lost-update", 2), racy);
        assert!(
            res.failures.iter().any(|f| f.diag.code == "CC003"),
            "expected CC003 among {:?}",
            res.failures
        );
        // The failing schedule replays: run exactly that script again.
        let script = res
            .failures
            .iter()
            .find_map(|f| match &f.replay {
                Replay::Script(s) => Some(s.clone()),
                _ => None,
            })
            .expect("exhaustive failures carry scripts");
        let mut opts = ExploreOpts::exhaustive("lost-update-replay", 0);
        opts.preemption_bound = None;
        opts.replay_script = Some(script);
        let replayed = explore(opts, racy);
        assert!(
            replayed.failures.iter().any(|f| f.diag.code == "CC003"),
            "replay did not reproduce: {:?}",
            replayed.failures
        );
        // With a real atomic RMW the same exploration is clean.
        let res = explore(ExploreOpts::exhaustive("fetch-add", 2), || {
            let a = crate::AtomicUsize::new(0);
            crate::thread::scope(|s| {
                for _ in 0..2 {
                    crate::thread::spawn_scoped(s, || {
                        a.fetch_add(1, SeqCst);
                    });
                }
                crate::thread::await_children();
            });
            assert_eq!(a.load(SeqCst), 2);
        });
        res.assert_ok();
    }

    #[test]
    fn abba_deadlock_found_with_cc002_and_lockdep_cycle() {
        let before = lockdep::edge_count();
        let res = explore(ExploreOpts::exhaustive("abba", 2), || {
            let a = crate::Mutex::new_named("schedtest.a", ());
            let b = crate::Mutex::new_named("schedtest.b", ());
            crate::thread::scope(|s| {
                crate::thread::spawn_scoped(s, || {
                    let _g = a.lock();
                    let _h = b.lock();
                });
                crate::thread::spawn_scoped(s, || {
                    let _g = b.lock();
                    let _h = a.lock();
                });
                crate::thread::await_children();
            });
        });
        let dl = res
            .failures
            .iter()
            .find(|f| f.diag.code == "CC002")
            .unwrap_or_else(|| panic!("expected CC002 among {:?}", res.failures));
        assert!(dl.diag.witnesses.iter().any(|w| w.contains("schedtest.a")));
        assert!(dl.diag.witnesses.iter().any(|w| w.contains("schedtest.b")));
        // Both halves of the ABBA pair landed in the lock-order graph.
        let cyc = lockdep::cycles_in(&lockdep::edges_since(before));
        assert!(
            cyc.iter()
                .any(|d| d.code == "CC001" && d.message.contains("schedtest")),
            "expected CC001 among {cyc:?}"
        );
    }

    #[test]
    fn random_seeds_find_and_replay_the_lost_update() {
        let racy = || {
            let a = crate::AtomicUsize::new(0);
            crate::thread::scope(|s| {
                for _ in 0..2 {
                    crate::thread::spawn_scoped(s, || {
                        let v = a.load(SeqCst);
                        a.store(v + 1, SeqCst);
                    });
                }
                crate::thread::await_children();
            });
            assert_eq!(a.load(SeqCst), 2);
        };
        let res = explore(
            ExploreOpts::random("lost-update-random", 64, 0xC0FFEE),
            racy,
        );
        let seed = res
            .failures
            .iter()
            .find_map(|f| match f.replay {
                Replay::Seed(s) => Some(s),
                _ => None,
            })
            .expect("64 random schedules should hit the 2-thread race");
        let replayed = explore(ExploreOpts::replay("lost-update-replayed", seed), racy);
        assert_eq!(replayed.schedules_run, 1);
        assert!(
            replayed.failures.iter().any(|f| f.diag.code == "CC003"),
            "seed {seed:#x} did not replay: {:?}",
            replayed.failures
        );
    }

    #[test]
    fn livelock_hits_step_cap_as_cc004() {
        let mut opts = ExploreOpts::random("spin-forever", 1, 7);
        opts.step_cap = 64;
        let res = explore(opts, || {
            let flag = crate::AtomicBool::new(false);
            while !flag.load(SeqCst) {
                crate::yield_point();
            }
        });
        assert!(
            res.failures.iter().any(|f| f.diag.code == "CC004"),
            "{:?}",
            res.failures
        );
    }

    #[test]
    fn self_deadlock_is_reported_not_hung() {
        let res = explore(ExploreOpts::random("self-lock", 1, 3), || {
            let m = crate::Mutex::new_named("schedtest.self", 0u32);
            let _a = m.lock();
            let _b = m.lock();
        });
        assert!(
            res.failures.iter().any(|f| f.diag.code == "CC002"),
            "{:?}",
            res.failures
        );
    }
}
