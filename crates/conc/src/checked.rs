//! Check-mode shims: same API as [`plain`](crate) mode, but every
//! acquire/release/atomic op feeds the [`lockdep`](crate::lockdep) graph
//! and is a scheduling point for the [model checker](crate::sched).
//!
//! Lock ownership under an active exploration is *simulated* by the
//! scheduler: the real `std` lock is only taken once the simulation has
//! granted it (so it is never contended among controlled threads), which
//! is what lets the checker detect deadlocks instead of hanging in them.
//! Outside an exploration the shims behave like the plain ones plus
//! lockdep recording — so ordinary multi-threaded tests still grow the
//! lock-order graph.

use crate::lockdep;
use crate::sched::internal as sched;
use crate::sched::LockKind;
use std::mem::ManuallyDrop;
use std::panic::Location;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};
use std::sync::PoisonError;

static NEXT_LOCK_ID: StdAtomicUsize = StdAtomicUsize::new(1);

/// Lazily assign a process-unique id to a lock (ids can't be handed out
/// in `const fn new`).
fn lock_id(slot: &StdAtomicUsize) -> usize {
    let cur = slot.load(Ordering::Relaxed);
    if cur != 0 {
        return cur;
    }
    let fresh = NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed);
    match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(winner) => winner,
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Instrumented `std::sync::Mutex` shim (see the crate docs).
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    class: &'static str,
    id: StdAtomicUsize,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the simulated and real
/// lock (in that order of bookkeeping) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
    id: usize,
    token: u64,
    controlled: bool,
}

impl<T> Mutex<T> {
    /// Create a new mutex (anonymous lock class).
    #[inline]
    pub const fn new(t: T) -> Self {
        Self::new_named(lockdep::ANON_CLASS, t)
    }

    /// Create a new mutex tagged with a lockdep *class* name.
    #[inline]
    pub const fn new_named(class: &'static str, t: T) -> Self {
        Mutex {
            class,
            id: StdAtomicUsize::new(0),
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consume the mutex, returning the inner value (poison recovered).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking (a scheduling point under the model
    /// checker). Recovers poison.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let site = Location::caller();
        let id = lock_id(&self.id);
        let controlled = sched::lock_acquire(id, self.class, LockKind::Excl, site);
        let token = lockdep::note_acquire(self.class, site);
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            inner: ManuallyDrop::new(g),
            id,
            token,
            controlled,
        }
    }

    /// Try to acquire the lock without blocking (still a scheduling
    /// point under the model checker).
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let site = Location::caller();
        let id = lock_id(&self.id);
        match sched::lock_try_acquire(id, self.class, LockKind::Excl, site) {
            Some(false) => None,
            Some(true) => {
                let token = lockdep::note_acquire(self.class, site);
                let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Some(MutexGuard {
                    inner: ManuallyDrop::new(g),
                    id,
                    token,
                    controlled: true,
                })
            }
            None => match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard {
                    inner: ManuallyDrop::new(g),
                    id,
                    token: lockdep::note_acquire(self.class, site),
                    controlled: false,
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    inner: ManuallyDrop::new(p.into_inner()),
                    id,
                    token: lockdep::note_acquire(self.class, site),
                    controlled: false,
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: ?Sized> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        lockdep::note_release(self.token);
        // Release the real lock before waking simulated waiters.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        if self.controlled {
            sched::lock_release(self.id, LockKind::Excl);
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Instrumented `std::sync::RwLock` shim.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    class: &'static str,
    id: StdAtomicUsize,
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<std::sync::RwLockReadGuard<'a, T>>,
    id: usize,
    token: u64,
    controlled: bool,
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<std::sync::RwLockWriteGuard<'a, T>>,
    id: usize,
    token: u64,
    controlled: bool,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock (anonymous lock class).
    #[inline]
    pub const fn new(t: T) -> Self {
        Self::new_named(lockdep::ANON_CLASS, t)
    }

    /// Create a new reader-writer lock tagged with a lockdep class.
    #[inline]
    pub const fn new_named(class: &'static str, t: T) -> Self {
        RwLock {
            class,
            id: StdAtomicUsize::new(0),
            inner: std::sync::RwLock::new(t),
        }
    }

    /// Consume the lock, returning the inner value (poison recovered).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (a scheduling point; poison
    /// recovered).
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let site = Location::caller();
        let id = lock_id(&self.id);
        let controlled = sched::lock_acquire(id, self.class, LockKind::Shared, site);
        let token = lockdep::note_acquire(self.class, site);
        let g = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        RwLockReadGuard {
            inner: ManuallyDrop::new(g),
            id,
            token,
            controlled,
        }
    }

    /// Acquire an exclusive write guard (a scheduling point; poison
    /// recovered).
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let site = Location::caller();
        let id = lock_id(&self.id);
        let controlled = sched::lock_acquire(id, self.class, LockKind::Excl, site);
        let token = lockdep::note_acquire(self.class, site);
        let g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        RwLockWriteGuard {
            inner: ManuallyDrop::new(g),
            id,
            token,
            controlled,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Drop for RwLockReadGuard<'a, T> {
    fn drop(&mut self) {
        lockdep::note_release(self.token);
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        if self.controlled {
            sched::lock_release(self.id, LockKind::Shared);
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: ?Sized> Drop for RwLockWriteGuard<'a, T> {
    fn drop(&mut self) {
        lockdep::note_release(self.token);
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        if self.controlled {
            sched::lock_release(self.id, LockKind::Excl);
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! checked_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name($std);

        impl $name {
            /// Create a new atomic.
            #[inline]
            pub const fn new(v: $prim) -> Self {
                $name(<$std>::new(v))
            }

            /// Load the current value (a scheduling point).
            pub fn load(&self, order: Ordering) -> $prim {
                crate::yield_point();
                self.0.load(order)
            }

            /// Store a new value (a scheduling point).
            pub fn store(&self, v: $prim, order: Ordering) {
                crate::yield_point();
                self.0.store(v, order)
            }

            /// Swap in a new value (a scheduling point).
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                crate::yield_point();
                self.0.swap(v, order)
            }

            /// Compare-and-exchange (a scheduling point).
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                crate::yield_point();
                self.0.compare_exchange(current, new, success, failure)
            }

            /// Consume the atomic, returning the inner value.
            #[inline]
            pub fn into_inner(self) -> $prim {
                self.0.into_inner()
            }

            /// Mutable access (requires exclusive ownership).
            #[inline]
            pub fn get_mut(&mut self) -> &mut $prim {
                self.0.get_mut()
            }
        }
    };
}

macro_rules! checked_atomic_arith {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Add, returning the previous value (a scheduling point).
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                crate::yield_point();
                self.0.fetch_add(v, order)
            }

            /// Subtract, returning the previous value (a scheduling
            /// point).
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                crate::yield_point();
                self.0.fetch_sub(v, order)
            }
        }
    };
}

checked_atomic!(
    /// Instrumented `std::sync::atomic::AtomicBool` shim.
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);
checked_atomic!(
    /// Instrumented `std::sync::atomic::AtomicU32` shim.
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);
checked_atomic!(
    /// Instrumented `std::sync::atomic::AtomicU64` shim.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
checked_atomic!(
    /// Instrumented `std::sync::atomic::AtomicUsize` shim.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
checked_atomic_arith!(AtomicU32, u32);
checked_atomic_arith!(AtomicU64, u64);
checked_atomic_arith!(AtomicUsize, usize);

/// Instrumented `std::sync::atomic::AtomicPtr` shim.
#[derive(Debug)]
pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

impl<T> AtomicPtr<T> {
    /// Create a new atomic pointer.
    #[inline]
    pub const fn new(p: *mut T) -> Self {
        AtomicPtr(std::sync::atomic::AtomicPtr::new(p))
    }

    /// Load the current pointer (a scheduling point).
    pub fn load(&self, order: Ordering) -> *mut T {
        crate::yield_point();
        self.0.load(order)
    }

    /// Store a new pointer (a scheduling point).
    pub fn store(&self, p: *mut T, order: Ordering) {
        crate::yield_point();
        self.0.store(p, order)
    }

    /// Swap in a new pointer (a scheduling point).
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        crate::yield_point();
        self.0.swap(p, order)
    }

    /// Compare-and-exchange (a scheduling point).
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        crate::yield_point();
        self.0.compare_exchange(current, new, success, failure)
    }
}
