//! Complexity certificates: what fragment a query sits in and what the
//! paper's theorems therefore guarantee.
//!
//! A [`Certificate`] is issued for every query that passes static checks.
//! It records the inferred `⟨i,k⟩` measure (maximum set height and tuple
//! width over the types of the formula), the fixpoint operators used, the
//! range-restriction status with the per-variable trace of Definition
//! 5.2/5.3 rule applications that established it, and the complexity class
//! the classification implies (Theorems 4.1, 5.1, 5.3, 6.1).

use crate::json;
use no_core::report::QueryReport;
use no_core::rr::RuleApp;
use std::fmt;

/// One entry of the range-restriction rule trace: which paper rule
/// granted which variable its range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// The variable (or projection path, e.g. `t.2`).
    pub var: String,
    /// The paper's rule number, e.g. `"1"`, `"9′"`.
    pub rule: String,
    /// Where the rule is stated, e.g. `"Definition 5.2"`.
    pub citation: String,
}

impl From<&RuleApp> for TraceEntry {
    fn from(app: &RuleApp) -> Self {
        TraceEntry {
            var: app.var.to_string(),
            rule: app.rule.id().to_string(),
            citation: app.rule.citation().to_string(),
        }
    }
}

/// A per-query complexity certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The least `⟨i,k⟩` with the query in `CALC_i^k` (set height, tuple
    /// width over the formula's types).
    pub ik: (usize, usize),
    /// Fixpoint usage: `"none"`, `"IFP"`, `"PFP"`, or `"IFP+PFP"`.
    pub fixpoint: String,
    /// Whether every variable is range restricted (Definitions 5.2/5.3).
    pub range_restricted: bool,
    /// Variables that failed range restriction, sorted.
    pub unrestricted: Vec<String>,
    /// The fragment name, e.g. `"RR-(CALC_1^2 + IFP)"`.
    pub language: String,
    /// The complexity bound, e.g. `"PTIME"`.
    pub bound: String,
    /// The theorem justifying the bound, e.g. `"Theorem 5.1(b)"`.
    pub by: String,
    /// The rule applications establishing range restriction, one entry per
    /// (variable, rule) pair, sorted by variable.
    pub trace: Vec<TraceEntry>,
}

impl Certificate {
    /// Assemble from a classification report and an RR rule trace.
    pub fn from_report(report: &QueryReport, trace: &[RuleApp]) -> Self {
        let fixpoint = match (report.fix.ifp, report.fix.pfp) {
            (false, false) => "none",
            (true, false) => "IFP",
            (false, true) => "PFP",
            (true, true) => "IFP+PFP",
        };
        Certificate {
            ik: report.ik,
            fixpoint: fixpoint.to_string(),
            range_restricted: report.range_restricted,
            unrestricted: report.unrestricted_vars.clone(),
            language: report.language.clone(),
            bound: report.bound.bound.clone(),
            by: report.bound.by.to_string(),
            trace: trace.iter().map(TraceEntry::from).collect(),
        }
    }

    /// The one-line summary, e.g.
    /// `RR-(CALC_1^2 + IFP) ⇒ PTIME (Theorem 5.1(b))`.
    pub fn summary(&self) -> String {
        format!("{} ⇒ {} ({})", self.language, self.bound, self.by)
    }

    /// The machine-readable JSON object for this certificate.
    pub fn to_json(&self) -> String {
        let trace = json::array(self.trace.iter().map(|t| {
            format!(
                "{{{}, {}, {}}}",
                json::str_field("var", &t.var),
                json::str_field("rule", &t.rule),
                json::str_field("citation", &t.citation),
            )
        }));
        format!(
            "{{\"ik\": [{}, {}], {}, \"range_restricted\": {}, \"unrestricted\": {}, {}, {}, {}, {}, \"rules\": {}}}",
            self.ik.0,
            self.ik.1,
            json::str_field("fixpoint", &self.fixpoint),
            self.range_restricted,
            json::array(self.unrestricted.iter().map(|v| json::esc(v))),
            json::str_field("language", &self.language),
            json::str_field("bound", &self.bound),
            json::str_field("by", &self.by),
            json::str_field("summary", &self.summary()),
            trace,
        )
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "certificate: {}", self.summary())?;
        writeln!(
            f,
            "  ⟨i,k⟩ = ⟨{},{}⟩, fixpoint: {}, range restricted: {}",
            self.ik.0,
            self.ik.1,
            self.fixpoint,
            if self.range_restricted { "yes" } else { "no" },
        )?;
        if !self.unrestricted.is_empty() {
            writeln!(f, "  unrestricted: {}", self.unrestricted.join(", "))?;
        }
        for t in &self.trace {
            writeln!(
                f,
                "  {} restricted by rule {} ({})",
                t.var, t.rule, t.citation
            )?;
        }
        Ok(())
    }
}
