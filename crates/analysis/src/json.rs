//! A minimal JSON writer.
//!
//! The build environment vendors no serialization framework, and the
//! analyzer's report shape is small and fixed, so the JSON is assembled by
//! hand. Everything routes through [`esc`] so strings are always valid
//! JSON string literals, and [`opt_str`]/[`str_field`] keep the call sites
//! in `diag.rs`/`certificate.rs` readable.

/// Escape a string for inclusion inside JSON double quotes (quotes
/// included in the output).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `"name": "value"` with escaping.
pub fn str_field(name: &str, value: &str) -> String {
    format!("{}: {}", esc(name), esc(value))
}

/// `"name": "value"` or `"name": null`.
pub fn opt_str(name: &str, value: Option<&str>) -> String {
    match value {
        Some(v) => str_field(name, v),
        None => format!("{}: null", esc(name)),
    }
}

/// A JSON array from already-serialized elements.
pub fn array(elems: impl IntoIterator<Item = String>) -> String {
    let inner: Vec<String> = elems.into_iter().collect();
    format!("[{}]", inner.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(esc("plain"), "\"plain\"");
        assert_eq!(esc("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(esc("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(esc("\u{01}"), "\"\\u0001\"");
        // the paper's unicode survives untouched
        assert_eq!(esc("⟨i,k⟩ ∈ τ*"), "\"⟨i,k⟩ ∈ τ*\"");
    }

    #[test]
    fn fields_and_arrays() {
        assert_eq!(str_field("k", "v"), "\"k\": \"v\"");
        assert_eq!(opt_str("k", None), "\"k\": null");
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1, 2]");
        assert_eq!(array(std::iter::empty::<String>()), "[]");
    }
}
