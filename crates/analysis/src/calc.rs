//! The CALC analyzer: parse → typecheck (all errors) → range-restriction
//! trace → lints → certificate.

use crate::diag::{Diagnostic, Severity};
use crate::{codes, Analysis};
use no_core::report::{classify, InputAssumption};
use no_core::typeck::TypeError;
use no_core::{parse_query_spanned, rr, typeck, Formula, Query, SpanTable, Term};
use no_object::{Schema, Universe};
use std::collections::BTreeSet;

/// Analyze CALC source text against a schema. Never fails: problems come
/// back as diagnostics; a certificate is issued whenever the query is
/// well-typed.
pub fn analyze_calc(schema: &Schema, src: &str, universe: &mut Universe) -> Analysis {
    match parse_query_spanned(src, universe) {
        Ok((query, spans)) => analyze_query(schema, &query, &spans),
        Err(e) => Analysis {
            diagnostics: vec![
                Diagnostic::new(codes::PARSE_CALC, Severity::Error, e.to_string())
                    .with_span(e.span()),
            ],
            certificate: None,
        },
    }
}

/// Analyze an already-parsed query. `spans` anchors diagnostics to source
/// bytes; pass `SpanTable::default()` for programmatically-built queries
/// (diagnostics then carry no spans).
pub fn analyze_query(schema: &Schema, query: &Query, spans: &SpanTable) -> Analysis {
    let mut diagnostics = Vec::new();
    let (checked, errors) = typeck::check_all(schema, &query.head, &query.body);
    for e in &errors {
        diagnostics.push(type_diag(e, spans));
    }
    if !errors.is_empty() {
        // Without a trustworthy type profile there is no certificate; the
        // partial `checked` is still useful for future lints but ⟨i,k⟩
        // could be an under-approximation.
        return Analysis {
            diagnostics,
            certificate: None,
        };
    }

    unused_binders(&query.body, spans, &mut diagnostics);

    let analysis = rr::analyze(schema, &checked.var_types, &query.body);
    let report = classify(schema, query, InputAssumption::Unknown)
        .expect("query typechecked; classify re-checks the same formula");
    for v in &report.unrestricted_vars {
        let span = spans.var(v);
        diagnostics.push(
            Diagnostic::new(
                codes::RR_UNRESTRICTED,
                Severity::Warning,
                format!("variable {v} is not range restricted"),
            )
            .with_span_opt(span)
            .with_citation("Definitions 5.2/5.3 (range restriction)")
            .with_suggestion(format!(
                "bind {v} through a relation atom, an equality with a restricted \
                 variable or constant, or the grouping pattern ∀y (y ∈ {v} ⇔ φ)"
            )),
        );
        // A set-typed unrestricted variable ranges over a powerset: the
        // evaluator can only fall back to enumerating dom(T, D), whose
        // cardinality is hyperexponential in the set height.
        if let Some(ty) = checked.var_types.get(v) {
            let (h, w) = (ty.set_height(), ty.tuple_width());
            if h >= 1 {
                diagnostics.push(
                    Diagnostic::new(
                        codes::LINT_HYPER_BLOWUP,
                        Severity::Warning,
                        format!(
                            "enumerating {v}:{ty} ranges over all of dom({ty}, D) — \
                             cost is bounded only by hyper({h},{w}) in ‖D‖"
                        ),
                    )
                    .with_span_opt(span)
                    .with_citation("Theorem 6.1 / Section 2 (hyper(i,k) domain bounds)")
                    .with_suggestion(format!(
                        "restrict {v} so evaluation stays within the ranges of Theorem 5.1"
                    )),
                );
            }
        }
    }

    let certificate = crate::Certificate::from_report(&report, &analysis.trace);
    Analysis {
        diagnostics,
        certificate: Some(certificate),
    }
}

/// Map a type error to a diagnostic with a stable code, a span anchored on
/// the offending name where the span table knows one, and a suggestion.
fn type_diag(e: &TypeError, spans: &SpanTable) -> Diagnostic {
    let msg = e.to_string();
    match e {
        TypeError::UnknownRelation(r) => {
            Diagnostic::new(codes::TY_UNKNOWN_RELATION, Severity::Error, msg)
                .with_span_opt(spans.rel(r).or_else(|| spans.var(r)))
                .with_suggestion(format!("declare {r} in the schema or check the spelling"))
        }
        TypeError::ArityMismatch { rel, expected, .. } => {
            Diagnostic::new(codes::TY_ARITY, Severity::Error, msg)
                .with_span_opt(spans.rel(rel))
                .with_suggestion(format!("{rel} takes exactly {expected} arguments"))
        }
        TypeError::Mismatch { term, .. } => {
            Diagnostic::new(codes::TY_MISMATCH, Severity::Error, msg)
                .with_span_opt(var_in_term_debug(term).and_then(|v| spans.var(v)))
        }
        TypeError::UnboundVariable(v) => Diagnostic::new(codes::TY_UNBOUND, Severity::Error, msg)
            .with_span_opt(spans.var(v))
            .with_suggestion(format!(
                "bind {v} with a quantifier or declare it in the query head"
            )),
        TypeError::VariableReuse(v) => {
            Diagnostic::new(codes::TY_VARIABLE_REUSE, Severity::Error, msg)
                .with_span_opt(spans.var(v))
                .with_citation("Section 3 (variable convention)")
                .with_suggestion(format!("rename one of the bindings of {v}"))
        }
        TypeError::NotATuple { term, .. } => {
            Diagnostic::new(codes::TY_NOT_A_TUPLE, Severity::Error, msg)
                .with_span_opt(var_in_term_debug(term).and_then(|v| spans.var(v)))
        }
        TypeError::ProjOutOfRange { .. } => {
            Diagnostic::new(codes::TY_PROJ_RANGE, Severity::Error, msg)
                .with_suggestion("projection indices are 1-based".to_string())
        }
        TypeError::NotASet { term, .. } => {
            Diagnostic::new(codes::TY_NOT_A_SET, Severity::Error, msg)
                .with_span_opt(var_in_term_debug(term).and_then(|v| spans.var(v)))
        }
        TypeError::FixpointFreeVar { rel, var } => {
            Diagnostic::new(codes::TY_FIX_FREE_VAR, Severity::Error, msg)
                .with_span_opt(spans.var(var).or_else(|| spans.rel(rel)))
                .with_citation("Definition 3.1 (fixpoint bodies close over their columns)")
                .with_suggestion(format!("add {var} to the columns of {rel} or quantify it"))
        }
        TypeError::AmbiguousConstants(_) => {
            Diagnostic::new(codes::TY_AMBIGUOUS_CONST, Severity::Error, msg).with_suggestion(
                "compare one of the constants against a typed variable instead".to_string(),
            )
        }
    }
}

/// Extract the first variable name from a `Term` debug rendering, e.g.
/// `Var("x")` inside `Proj(Var("t"), 2)` — best-effort span anchoring for
/// errors that only carry a rendered term.
fn var_in_term_debug(term: &str) -> Option<&str> {
    let i = term.find("Var(\"")? + 5;
    let rest = &term[i..];
    let j = rest.find('"')?;
    Some(&rest[..j])
}

/// Variables *used* in the terms of a formula (not binders), without
/// descending into fixpoint bodies (those close over their own columns, so
/// an outer binder can never be used there).
fn used_vars(f: &Formula, out: &mut BTreeSet<String>) {
    fn term(t: &Term, out: &mut BTreeSet<String>) {
        match t {
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::Proj(inner, _) => term(inner, out),
            _ => {}
        }
    }
    match f {
        Formula::Rel(_, ts) | Formula::FixApp(_, ts) => ts.iter().for_each(|t| term(t, out)),
        Formula::Eq(a, b) | Formula::In(a, b) | Formula::Subset(a, b) => {
            term(a, out);
            term(b, out);
        }
        _ => f.children().into_iter().for_each(|c| used_vars(c, out)),
    }
}

/// LINT001: a quantifier binds a variable that never occurs in its body.
fn unused_binders(f: &Formula, spans: &SpanTable, diags: &mut Vec<Diagnostic>) {
    match f {
        Formula::Exists(x, _, g) | Formula::Forall(x, _, g) => {
            let mut used = BTreeSet::new();
            used_vars(g, &mut used);
            if !used.contains(x) {
                diags.push(
                    Diagnostic::new(
                        codes::LINT_UNUSED_VAR,
                        Severity::Warning,
                        format!("bound variable {x} is never used"),
                    )
                    .with_span_opt(spans.var(x))
                    .with_suggestion(format!("remove the quantifier binding {x}")),
                );
            }
            unused_binders(g, spans, diags);
        }
        Formula::Rel(_, ts) | Formula::FixApp(_, ts) => {
            for t in ts {
                term_fix_binders(t, spans, diags);
            }
            if let Formula::FixApp(fix, _) = f {
                unused_binders(&fix.body, spans, diags);
            }
        }
        Formula::Eq(a, b) | Formula::In(a, b) | Formula::Subset(a, b) => {
            term_fix_binders(a, spans, diags);
            term_fix_binders(b, spans, diags);
        }
        _ => f
            .children()
            .into_iter()
            .for_each(|c| unused_binders(c, spans, diags)),
    }
}

fn term_fix_binders(t: &Term, spans: &SpanTable, diags: &mut Vec<Diagnostic>) {
    match t {
        Term::Fix(fix) => unused_binders(&fix.body, spans, diags),
        Term::Proj(inner, _) => term_fix_binders(inner, spans, diags),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{RelationSchema, Type};

    fn graph_schema() -> Schema {
        Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])])
    }

    #[test]
    fn clean_query_gets_certificate_and_no_diagnostics() {
        let mut u = Universe::new();
        let a = analyze_calc(&graph_schema(), "{[x:U, y:U] | G(x, y)}", &mut u);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        let c = a.certificate.as_ref().unwrap();
        assert!(c.range_restricted);
        assert_eq!(c.ik, (0, 0));
        assert_eq!(c.fixpoint, "none");
        assert_eq!(c.bound, "LOGSPACE");
        assert!(a.is_rr_safe());
    }

    #[test]
    fn parse_error_yields_spanned_diagnostic() {
        let mut u = Universe::new();
        let a = analyze_calc(&graph_schema(), "{[x:U] | G(x,, x)}", &mut u);
        assert_eq!(a.diagnostics.len(), 1);
        let d = &a.diagnostics[0];
        assert_eq!(d.code, codes::PARSE_CALC);
        assert_eq!(d.severity, Severity::Error);
        assert!(d.span.is_some());
        assert!(a.certificate.is_none());
        assert!(!a.is_rr_safe());
    }

    #[test]
    fn multiple_type_errors_all_reported_with_spans() {
        let mut u = Universe::new();
        // H unknown; w unbound — both in one pass
        let a = analyze_calc(&graph_schema(), "{[x:U] | H(x) /\\ G(x, w)}", &mut u);
        let codes_seen: Vec<&str> = a.diagnostics.iter().map(|d| d.code).collect();
        assert!(
            codes_seen.contains(&codes::TY_UNKNOWN_RELATION),
            "{codes_seen:?}"
        );
        assert!(codes_seen.contains(&codes::TY_UNBOUND), "{codes_seen:?}");
        for d in &a.diagnostics {
            assert!(d.span.is_some(), "{d:?}");
        }
        assert!(a.certificate.is_none());
    }

    #[test]
    fn unrestricted_set_variable_warns_rr_and_hyper() {
        let mut u = Universe::new();
        let a = analyze_calc(
            &graph_schema(),
            "{[X:{U}] | forall x:U (x in X -> G(x, x))}",
            &mut u,
        );
        let codes_seen: Vec<&str> = a.diagnostics.iter().map(|d| d.code).collect();
        assert!(
            codes_seen.contains(&codes::RR_UNRESTRICTED),
            "{codes_seen:?}"
        );
        assert!(
            codes_seen.contains(&codes::LINT_HYPER_BLOWUP),
            "{codes_seen:?}"
        );
        let c = a.certificate.as_ref().unwrap();
        assert!(!c.range_restricted);
        assert!(c.unrestricted.contains(&"X".to_string()));
        assert!(c.bound.contains("hyper"), "{}", c.bound);
        assert!(!a.is_rr_safe());
        // warnings only: not errors
        assert!(!a.has_errors());
    }

    #[test]
    fn unused_binder_lint_fires_with_binder_span() {
        let mut u = Universe::new();
        let src = "{[x:U] | G(x, x) /\\ exists y:U (G(x, x))}";
        let a = analyze_calc(&graph_schema(), src, &mut u);
        let lint: Vec<&Diagnostic> = a
            .diagnostics
            .iter()
            .filter(|d| d.code == codes::LINT_UNUSED_VAR)
            .collect();
        assert_eq!(lint.len(), 1, "{:?}", a.diagnostics);
        assert!(lint[0].message.contains('y'));
        let span = lint[0].span.expect("binder span");
        assert_eq!(&src[span.start..span.end], "y");
        // a warning does not forfeit the certificate
        assert!(a.certificate.is_some());
    }

    #[test]
    fn rule_trace_lands_in_certificate() {
        let mut u = Universe::new();
        let a = analyze_calc(
            &graph_schema(),
            "{[u:U, v:U] | ifp(S; x:U, y:U | G(x, y) \\/ exists z:U (S(x, z) /\\ G(z, y)))(u, v)}",
            &mut u,
        );
        let c = a.certificate.as_ref().unwrap();
        assert!(c.range_restricted);
        assert_eq!(c.fixpoint, "IFP");
        assert_eq!(c.bound, "PTIME");
        assert_eq!(c.by, "Theorem 5.1(b)");
        let u_rules: Vec<&str> = c
            .trace
            .iter()
            .filter(|t| t.var == "u")
            .map(|t| t.rule.as_str())
            .collect();
        assert!(u_rules.contains(&"10"), "{:?}", c.trace);
        assert!(c.trace.iter().any(|t| t.citation == "Definition 5.3"));
        assert!(c.summary().contains("⇒ PTIME"));
    }
}
