//! Structured diagnostics with stable codes, severities, byte spans, and
//! paper citations.
//!
//! Every diagnostic the analyzer emits carries a stable `code` (listed in
//! DESIGN.md §11 and kept backward compatible so CI gates can match on
//! them), a severity, an optional byte [`Span`] into the source text, the
//! human message, an optional citation of the paper rule or definition the
//! diagnostic enforces, and an optional suggestion.

use crate::json;
use no_object::{Excerpt, Span};
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The query cannot be evaluated as written.
    Error,
    /// The query evaluates, but something deserves attention (an
    /// unrestricted variable, a hyperexponential blowup, dead syntax).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code, e.g. `"TY004"`, `"RR001"`.
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Byte span into the analyzed source, when one could be anchored.
    pub span: Option<Span>,
    /// Human-readable message.
    pub message: String,
    /// The paper rule/definition/theorem this diagnostic enforces.
    pub citation: Option<String>,
    /// What to do about it.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A new diagnostic with no span, citation, or suggestion.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            span: None,
            message: message.into(),
            citation: None,
            suggestion: None,
        }
    }

    /// Attach a span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attach a span if one is known.
    pub fn with_span_opt(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// Attach a paper citation.
    pub fn with_citation(mut self, citation: impl Into<String>) -> Self {
        self.citation = Some(citation.into());
        self
    }

    /// Attach a suggestion.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Render for a terminal: severity, code, message, caret excerpt of
    /// the offending source (when a span is known), citation, suggestion.
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if let Some(span) = self.span {
            let ex = Excerpt::new(src, span);
            out.push_str(&format!(
                "\n  --> {span} (line {}, column {})",
                ex.line, ex.column
            ));
            for line in ex.caret().lines() {
                out.push_str("\n  ");
                out.push_str(line);
            }
        }
        if let Some(c) = &self.citation {
            out.push_str(&format!("\n  = paper: {c}"));
        }
        if let Some(s) = &self.suggestion {
            out.push_str(&format!("\n  = help: {s}"));
        }
        out
    }

    /// The machine-readable JSON object for this diagnostic.
    pub fn to_json(&self) -> String {
        let span = match self.span {
            Some(s) => format!("{{\"start\": {}, \"end\": {}}}", s.start, s.end),
            None => "null".to_string(),
        };
        format!(
            "{{{}, {}, \"span\": {}, {}, {}, {}}}",
            json::str_field("code", self.code),
            json::str_field("severity", &self.severity.to_string()),
            span,
            json::str_field("message", &self.message),
            json::opt_str("citation", self.citation.as_deref()),
            json::opt_str("suggestion", self.suggestion.as_deref()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_with_span_shows_caret_and_notes() {
        let src = "{[x:U] | P(x)}";
        let d = Diagnostic::new("TY001", Severity::Error, "unknown relation P")
            .with_span(Span::new(9, 10))
            .with_citation("Section 3")
            .with_suggestion("declare P in the schema");
        let r = d.render(src);
        assert!(r.starts_with("error[TY001]: unknown relation P"), "{r}");
        assert!(r.contains("line 1, column 10"), "{r}");
        assert!(r.contains("{[x:U] | P(x)}"), "{r}");
        assert!(r.contains('^'), "{r}");
        assert!(r.contains("= paper: Section 3"), "{r}");
        assert!(r.contains("= help: declare P"), "{r}");
    }

    #[test]
    fn json_shape_is_stable() {
        let d = Diagnostic::new(
            "RR001",
            Severity::Warning,
            "variable X is not range restricted",
        )
        .with_span(Span::new(2, 3));
        let j = d.to_json();
        assert!(j.contains("\"code\": \"RR001\""), "{j}");
        assert!(j.contains("\"severity\": \"warning\""), "{j}");
        assert!(j.contains("\"span\": {\"start\": 2, \"end\": 3}"), "{j}");
        assert!(j.contains("\"citation\": null"), "{j}");
    }
}
