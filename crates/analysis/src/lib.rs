//! Static analysis for CALC and Datalog¬ queries: span-carrying
//! diagnostics, range-restriction rule citations, and `⟨i,k⟩` complexity
//! certificates.
//!
//! The analyzer runs *before* evaluation and never evaluates anything
//! itself. It produces an [`Analysis`] per query:
//!
//! - [`Diagnostic`]s with stable codes (see [`codes`]), severities, byte
//!   [`Span`](no_object::Span)s into the source, citations of the paper
//!   rule each one enforces, and fix suggestions;
//! - a [`Certificate`] — the inferred `⟨i,k⟩` measure, fixpoint usage,
//!   range-restriction status with the Definition 5.2/5.3 rule trace, and
//!   the complexity class implied by Theorems 4.1/5.1/5.3/6.1 — whenever
//!   the query is well-formed enough to classify.
//!
//! Entry points: [`analyze_calc`]/[`analyze_query`] for CALC,
//! [`analyze_datalog`]/[`analyze_program`] for Datalog¬. `nestdb` surfaces
//! these through `Session::analyze`, the shell's `:check`, and the
//! `analyze` CLI subcommand.

#![warn(missing_docs)]

mod calc;
mod certificate;
mod datalog;
mod diag;
mod json;

pub use calc::{analyze_calc, analyze_query};
pub use certificate::{Certificate, TraceEntry};
pub use datalog::{analyze_datalog, analyze_program};
pub use diag::{Diagnostic, Severity};

use std::fmt;

/// Stable diagnostic codes.
///
/// These are a public contract: CI gates and golden snapshots match on
/// them, so codes are never renumbered or reused (DESIGN.md §11 carries
/// the authoritative table with paper citations).
pub mod codes {
    /// CALC parse error.
    pub const PARSE_CALC: &str = "PARSE001";
    /// Datalog¬ parse error.
    pub const PARSE_DATALOG: &str = "PARSE002";
    /// Relation not in the schema.
    pub const TY_UNKNOWN_RELATION: &str = "TY001";
    /// Relation applied to the wrong number of arguments.
    pub const TY_ARITY: &str = "TY002";
    /// Term type does not match the expected type.
    pub const TY_MISMATCH: &str = "TY003";
    /// Variable used without a binder.
    pub const TY_UNBOUND: &str = "TY004";
    /// Variable name bound twice or both free and bound (Section 3).
    pub const TY_VARIABLE_REUSE: &str = "TY005";
    /// Projection applied to a non-tuple.
    pub const TY_NOT_A_TUPLE: &str = "TY006";
    /// Projection index out of range.
    pub const TY_PROJ_RANGE: &str = "TY007";
    /// Membership/containment applied to a non-set.
    pub const TY_NOT_A_SET: &str = "TY008";
    /// Fixpoint body has a free variable outside its columns
    /// (Definition 3.1).
    pub const TY_FIX_FREE_VAR: &str = "TY009";
    /// Constant comparison with no type context.
    pub const TY_AMBIGUOUS_CONST: &str = "TY010";
    /// Variable not range restricted (Definitions 5.2/5.3). Warning: the
    /// safe evaluator refuses such queries, the governed one may still
    /// enumerate domains.
    pub const RR_UNRESTRICTED: &str = "RR001";
    /// Quantifier binds a variable its body never uses.
    pub const LINT_UNUSED_VAR: &str = "LINT001";
    /// Unrestricted set-typed variable: enumeration cost bounded only by
    /// hyper(i,k) (Theorem 6.1).
    pub const LINT_HYPER_BLOWUP: &str = "LINT002";
    /// Datalog¬ rule is unsafe: head/negated/compared variable with no
    /// positive binding occurrence.
    pub const DL_UNSAFE: &str = "DL001";
    /// Program is not stratifiable; a negation cycle is cited as witness.
    /// Warning: inflationary semantics (Section 3) is still defined.
    pub const DL_NEGATIVE_CYCLE: &str = "DL002";
    /// Rule head relation never declared with `rel`.
    pub const DL_UNDECLARED_HEAD: &str = "DL003";
    /// Datalog¬ atom with the wrong number of arguments.
    pub const DL_ARITY: &str = "DL004";
    /// Body atom names a relation that is neither IDB nor EDB.
    pub const DL_UNKNOWN_RELATION: &str = "DL005";
    /// Rule head writes an EDB relation.
    pub const DL_HEAD_IS_EDB: &str = "DL006";
}

/// The result of analyzing one query: diagnostics plus, when the query is
/// well-formed, its complexity certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Findings, in source-walk order.
    pub diagnostics: Vec<Diagnostic>,
    /// The certificate, absent when errors prevented classification.
    pub certificate: Option<Certificate>,
}

impl Analysis {
    /// Whether any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// No diagnostics at all, of any severity.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether the query is certified range restricted — the soundness
    /// contract: an `is_rr_safe` query evaluates without range errors.
    pub fn is_rr_safe(&self) -> bool {
        self.certificate
            .as_ref()
            .is_some_and(|c| c.range_restricted)
            && !self.has_errors()
    }

    /// Render for a terminal: every diagnostic with its caret excerpt of
    /// `src`, then the certificate (or a note that none was issued).
    pub fn render(&self, src: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&d.render(src));
        }
        if !out.is_empty() {
            out.push('\n');
        }
        match &self.certificate {
            Some(c) => out.push_str(c.to_string().trim_end()),
            None => out.push_str("no certificate: query has errors"),
        }
        out
    }

    /// The machine-readable JSON object:
    /// `{"status": "ok"|"error", "diagnostics": [...], "certificate": {...}|null}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"status\": {}, \"diagnostics\": {}, \"certificate\": {}}}",
            json::esc(if self.has_errors() { "error" } else { "ok" }),
            json::array(self.diagnostics.iter().map(|d| d.to_json())),
            self.certificate
                .as_ref()
                .map_or("null".to_string(), |c| c.to_json()),
        )
    }
}

/// Analysis findings packaged as an error, for APIs that refuse to
/// evaluate a query with outstanding diagnostics
/// (`nestdb::Error::Diagnostics` wraps this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosticsError {
    /// The findings that blocked evaluation.
    pub diagnostics: Vec<Diagnostic>,
}

impl DiagnosticsError {
    /// Wrap the diagnostics of an analysis.
    pub fn new(analysis: &Analysis) -> Self {
        DiagnosticsError {
            diagnostics: analysis.diagnostics.clone(),
        }
    }
}

impl fmt::Display for DiagnosticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = self.diagnostics.len() - errors;
        write!(f, "analysis found {errors} error(s), {warnings} warning(s)")?;
        if let Some(first) = self.diagnostics.first() {
            write!(f, "; first: [{}] {}", first.code, first.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for DiagnosticsError {}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::Span;

    fn diag(sev: Severity) -> Diagnostic {
        Diagnostic::new("TY004", sev, "variable w is unbound").with_span(Span::new(3, 4))
    }

    #[test]
    fn analysis_predicates() {
        let clean = Analysis {
            diagnostics: vec![],
            certificate: None,
        };
        assert!(clean.is_clean() && !clean.has_errors() && !clean.is_rr_safe());
        let warned = Analysis {
            diagnostics: vec![diag(Severity::Warning)],
            certificate: None,
        };
        assert!(!warned.is_clean() && !warned.has_errors());
        let failed = Analysis {
            diagnostics: vec![diag(Severity::Error)],
            certificate: None,
        };
        assert!(failed.has_errors());
    }

    #[test]
    fn json_report_shape() {
        let a = Analysis {
            diagnostics: vec![diag(Severity::Error)],
            certificate: None,
        };
        let j = a.to_json();
        assert!(j.starts_with("{\"status\": \"error\""), "{j}");
        assert!(j.contains("\"diagnostics\": [{"), "{j}");
        assert!(j.ends_with("\"certificate\": null}"), "{j}");
    }

    #[test]
    fn diagnostics_error_counts_and_displays() {
        let a = Analysis {
            diagnostics: vec![diag(Severity::Error), diag(Severity::Warning)],
            certificate: None,
        };
        let e = DiagnosticsError::new(&a);
        let s = e.to_string();
        assert!(s.contains("1 error(s), 1 warning(s)"), "{s}");
        assert!(s.contains("[TY004] variable w is unbound"), "{s}");
    }
}
