//! The Datalog¬ analyzer: parse → per-rule validation → stratifiability
//! with a cycle witness → certificate via the Section 3 correspondence
//! `inf-Datalog¬_i^k ≡ CALC_i^k + IFP`.

use crate::diag::{Diagnostic, Severity};
use crate::{codes, Analysis, Certificate};
use no_datalog::{parse_program_spanned, stratify, Literal, Program, ProgramError, StratifyError};
use no_object::{Schema, Span, Universe};
use std::collections::BTreeSet;

/// Analyze Datalog¬ source text against an EDB schema.
pub fn analyze_datalog(schema: &Schema, src: &str, universe: &mut Universe) -> Analysis {
    match parse_program_spanned(src, universe) {
        Ok((program, rule_spans)) => analyze_program(schema, &program, &rule_spans),
        Err(e) => Analysis {
            diagnostics: vec![Diagnostic::new(
                codes::PARSE_DATALOG,
                Severity::Error,
                e.to_string(),
            )
            .with_span(e.span())],
            certificate: None,
        },
    }
}

/// Analyze an already-parsed program. `rule_spans` holds the head span of
/// each rule (as returned by `parse_program_spanned`); pass `&[]` for
/// programmatically-built programs.
pub fn analyze_program(schema: &Schema, program: &Program, rule_spans: &[Span]) -> Analysis {
    let mut diagnostics = Vec::new();

    // Validate rule by rule so every faulty rule is reported, not just the
    // first (`Program::validate` bails at its first error).
    for (idx, rule) in program.rules.iter().enumerate() {
        let single = Program {
            idb: program.idb.clone(),
            rules: vec![rule.clone()],
        };
        if let Err(e) = single.validate(schema) {
            diagnostics.push(program_diag(&e, rule_spans.get(idx).copied()));
        }
    }
    let valid = diagnostics.is_empty();

    // Stratifiability: inflationary evaluation still works on a negative
    // cycle (that is the point of Section 3's semantics), so this is a
    // warning, with a concrete cycle as witness.
    if let Err(StratifyError::NegativeCycle { on }) = stratify(program) {
        let witness = negative_cycle_witness(program, &on);
        let span = program
            .rules
            .iter()
            .position(|r| {
                witness.contains(&r.head)
                    && r.body
                        .iter()
                        .any(|l| matches!(l, Literal::Neg(n, _) if witness.contains(n)))
            })
            .and_then(|i| rule_spans.get(i).copied());
        let cycle = if witness.is_empty() {
            on.clone()
        } else {
            let mut path = witness.clone();
            path.push(witness[0].clone());
            path.join(" → ")
        };
        diagnostics.push(
            Diagnostic::new(
                codes::DL_NEGATIVE_CYCLE,
                Severity::Warning,
                format!("program is not stratifiable: negation cycle {cycle}"),
            )
            .with_span_opt(span)
            .with_citation("Section 3 (inflationary vs stratified semantics)")
            .with_suggestion(
                "inflationary evaluation is still defined; stratified evaluation will refuse \
                 this program"
                    .to_string(),
            ),
        );
    }

    // Certificate via the correspondence of Section 3: an inf-Datalog¬
    // program whose IDB/EDB types sit at ⟨i,k⟩ is equivalent to a
    // CALC_i^k + IFP query, and rule safety is the deductive counterpart
    // of range restriction.
    let certificate = if valid {
        let (i, k) = program_ik(schema, program);
        let language = format!("inf-Datalog¬_{i}^{k}");
        let (bound, by) = (
            "PTIME".to_string(),
            "Theorem 5.1(b) via Section 3".to_string(),
        );
        Some(Certificate {
            ik: (i, k),
            fixpoint: "IFP".to_string(),
            range_restricted: true,
            unrestricted: Vec::new(),
            language,
            bound,
            by,
            trace: Vec::new(),
        })
    } else {
        None
    };

    Analysis {
        diagnostics,
        certificate,
    }
}

fn program_diag(e: &ProgramError, span: Option<Span>) -> Diagnostic {
    let msg = e.to_string();
    match e {
        ProgramError::Unsafe { var, .. } => Diagnostic::new(codes::DL_UNSAFE, Severity::Error, msg)
            .with_span_opt(span)
            .with_citation("rule safety (the deductive counterpart of Definition 5.2)")
            .with_suggestion(format!(
                "bind {var} with a positive body literal before using it in the head, \
                     a negation, or a comparison"
            )),
        ProgramError::UndeclaredHead(r) => {
            Diagnostic::new(codes::DL_UNDECLARED_HEAD, Severity::Error, msg)
                .with_span_opt(span)
                .with_suggestion(format!("add `rel {r}(…).` before the first rule"))
        }
        ProgramError::ArityMismatch { rel, expected, .. } => {
            Diagnostic::new(codes::DL_ARITY, Severity::Error, msg)
                .with_span_opt(span)
                .with_suggestion(format!("{rel} takes exactly {expected} arguments"))
        }
        ProgramError::UnknownRelation(r) => {
            Diagnostic::new(codes::DL_UNKNOWN_RELATION, Severity::Error, msg)
                .with_span_opt(span)
                .with_suggestion(format!(
                    "declare {r} as IDB or load a database providing it"
                ))
        }
        ProgramError::HeadIsEdb(_) => Diagnostic::new(codes::DL_HEAD_IS_EDB, Severity::Error, msg)
            .with_span_opt(span)
            .with_suggestion("rules may only write IDB relations".to_string()),
        // Resource errors cannot arise from validation (it never evaluates)
        ProgramError::Resource(_) => {
            Diagnostic::new(codes::DL_UNSAFE, Severity::Error, msg).with_span_opt(span)
        }
    }
}

/// A concrete predicate cycle through at least one negative edge, starting
/// and ending at a predicate reachable from `seed` — the witness shown in
/// the DL002 diagnostic. Empty when no such cycle is found (the stratifier
/// then over-approximated; we fall back to naming the seed alone).
fn negative_cycle_witness(program: &Program, seed: &str) -> Vec<String> {
    // edges head → body-predicate, tagged with polarity, IDB only
    let mut edges: Vec<(&str, &str, bool)> = Vec::new();
    for rule in &program.rules {
        for lit in &rule.body {
            let (name, neg) = match lit {
                Literal::Pos(n, _) => (n.as_str(), false),
                Literal::Neg(n, _) => (n.as_str(), true),
                _ => continue,
            };
            if program.idb.contains_key(name) {
                edges.push((rule.head.as_str(), name, neg));
            }
        }
    }
    // DFS over (node, seen-negative) states, looking for a way back to the
    // start that crossed a negative edge.
    fn dfs<'a>(
        node: &'a str,
        start: &str,
        seen_neg: bool,
        edges: &[(&'a str, &'a str, bool)],
        visited: &mut BTreeSet<(&'a str, bool)>,
        path: &mut Vec<String>,
    ) -> bool {
        for (from, to, neg) in edges.iter().filter(|(f, _, _)| *f == node) {
            let _ = from;
            let crossed = seen_neg || *neg;
            if *to == start && crossed {
                return true;
            }
            if visited.insert((to, crossed)) {
                path.push((*to).to_string());
                if dfs(to, start, crossed, edges, visited, path) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }
    // Try every IDB predicate as the cycle anchor, preferring the seed.
    let mut anchors: Vec<&str> = vec![seed];
    anchors.extend(
        program
            .idb
            .keys()
            .map(String::as_str)
            .filter(|n| *n != seed),
    );
    for start in anchors {
        let mut visited = BTreeSet::new();
        let mut path = vec![start.to_string()];
        if dfs(start, start, false, &edges, &mut visited, &mut path) {
            return path;
        }
    }
    Vec::new()
}

/// The `⟨i,k⟩` measure of a program: maximum set height and tuple width
/// over the IDB signatures and the EDB relations the rules mention.
fn program_ik(schema: &Schema, program: &Program) -> (usize, usize) {
    let mut i = 0;
    let mut k = 0;
    let mut note = |t: &no_object::Type| {
        i = i.max(t.set_height());
        k = k.max(t.tuple_width());
    };
    for types in program.idb.values() {
        types.iter().for_each(&mut note);
    }
    for rule in &program.rules {
        for lit in &rule.body {
            if let Literal::Pos(name, _) | Literal::Neg(name, _) = lit {
                if let Some(r) = schema.get(name) {
                    r.column_types.iter().for_each(&mut note);
                }
            }
        }
    }
    (i, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{RelationSchema, Type};

    fn graph_schema() -> Schema {
        Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])])
    }

    const TC: &str = "rel tc(U, U).\ntc(x, y) :- G(x, y).\ntc(x, y) :- tc(x, z), G(z, y).";

    #[test]
    fn clean_program_gets_certificate() {
        let mut u = Universe::new();
        let a = analyze_datalog(&graph_schema(), TC, &mut u);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        let c = a.certificate.as_ref().unwrap();
        assert_eq!(c.ik, (0, 0));
        assert_eq!(c.fixpoint, "IFP");
        assert!(c.range_restricted);
        assert_eq!(c.language, "inf-Datalog¬_0^0");
        assert!(a.is_rr_safe());
    }

    #[test]
    fn unsafe_head_variable_is_dl001_with_rule_span() {
        let mut u = Universe::new();
        let src = "rel r(U, U).\nr(x, y) :- G(x, x).";
        let a = analyze_datalog(&graph_schema(), src, &mut u);
        assert_eq!(a.diagnostics.len(), 1, "{:?}", a.diagnostics);
        let d = &a.diagnostics[0];
        assert_eq!(d.code, codes::DL_UNSAFE);
        assert!(d.message.contains('y'), "{}", d.message);
        let span = d.span.expect("rule head span");
        assert_eq!(&src[span.start..span.end], "r");
        assert!(a.certificate.is_none());
    }

    #[test]
    fn every_bad_rule_reported_not_just_the_first() {
        let mut u = Universe::new();
        let src = "rel r(U).\nr(x) :- G(x, w).\nr(y) :- !G(y, y), missing(y).";
        // rule 1 is fine syntactically but head-safe; make both rules bad:
        let src2 = "rel r(U).\nr(w) :- G(x, x).\nr(y) :- missing(y).";
        let _ = src;
        let a = analyze_datalog(&graph_schema(), src2, &mut u);
        assert_eq!(a.diagnostics.len(), 2, "{:?}", a.diagnostics);
        let codes_seen: Vec<&str> = a.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes_seen.contains(&codes::DL_UNSAFE));
        assert!(codes_seen.contains(&codes::DL_UNKNOWN_RELATION));
    }

    #[test]
    fn negative_cycle_warns_with_witness() {
        let mut u = Universe::new();
        let src = "rel p(U).\nrel q(U).\np(x) :- G(x, x), !q(x).\nq(x) :- G(x, x), !p(x).";
        let a = analyze_datalog(&graph_schema(), src, &mut u);
        let cycle: Vec<&Diagnostic> = a
            .diagnostics
            .iter()
            .filter(|d| d.code == codes::DL_NEGATIVE_CYCLE)
            .collect();
        assert_eq!(cycle.len(), 1, "{:?}", a.diagnostics);
        let d = cycle[0];
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains('→'), "{}", d.message);
        assert!(
            d.message.contains('p') && d.message.contains('q'),
            "{}",
            d.message
        );
        assert!(d.span.is_some());
        // warning only: the program still gets its (inflationary) certificate
        assert!(a.certificate.is_some());
        assert!(!a.has_errors());
    }

    #[test]
    fn ik_reflects_nested_types() {
        let mut u = Universe::new();
        let schema = Schema::from_relations([RelationSchema::new(
            "E",
            vec![Type::set(Type::Atom), Type::set(Type::Atom)],
        )]);
        let src = "rel r({U}).\nr(x) :- E(x, y).";
        let a = analyze_datalog(&schema, src, &mut u);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        let c = a.certificate.as_ref().unwrap();
        assert_eq!(c.ik, (1, 0));
        assert_eq!(c.language, "inf-Datalog¬_1^0");
    }

    #[test]
    fn parse_error_is_spanned() {
        let mut u = Universe::new();
        let a = analyze_datalog(&graph_schema(), "rel r(U).\nr(x :- G(x).", &mut u);
        assert_eq!(a.diagnostics.len(), 1);
        assert_eq!(a.diagnostics[0].code, codes::PARSE_DATALOG);
        assert!(a.diagnostics[0].span.is_some());
    }
}
