//! Glue between [`Session`] and the TCP server in [`no_server`]: a
//! [`Handler`] implementation over a shared [`Store`], plus the
//! [`serve`] entry point behind `nestdb serve`.
//!
//! Every request runs under a *fresh* governor (session limits overlaid
//! with the request's own `limits`), whose cancel switch is registered on
//! the server's [`CancelToken`] — when a client disconnects mid-query,
//! the governor trips at its next checkpoint and the evaluation unwinds
//! as an ordinary resource error instead of burning fuel for nobody.

use crate::session::{Session, Store};
use no_proto::{Request, Response};
use no_server::{CancelToken, Handler, Server, ServerConfig};
use std::sync::{Arc, RwLock};

/// The [`Handler`] the nestdb server runs: one shared [`Session`] (store,
/// plan cache, thread pool) answering every connection's requests.
#[derive(Debug, Clone)]
pub struct SessionHandler {
    session: Session,
}

impl SessionHandler {
    /// Wrap a session. All connections share its store and plan cache;
    /// each request gets a fresh governor derived from its limits.
    pub fn new(session: Session) -> SessionHandler {
        SessionHandler { session }
    }

    /// The underlying session (e.g. for tests to inspect the store).
    pub fn session(&self) -> &Session {
        &self.session
    }
}

impl Handler for SessionHandler {
    fn handle(&self, req: &Request, cancel: &CancelToken) -> Response {
        let governor = self.session.governor_for(req);
        let switch = governor.clone();
        cancel.on_cancel(move || switch.cancel());
        self.session.run_governed(req, governor)
    }
}

/// Bind `addr` and serve the store behind `session` until the process
/// exits. Returns the bound server handle; call
/// [`Server::join`](no_server::Server::join) to block the foreground
/// process on it.
pub fn serve(addr: &str, session: Session, config: ServerConfig) -> std::io::Result<Server> {
    let handler: Arc<dyn Handler> = Arc::new(SessionHandler::new(session));
    Server::bind(addr, handler, config)
}

/// A server over an empty in-memory store — the `nestdb serve` default
/// when no `--db` is given.
pub fn serve_in_memory(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
    let store = Arc::new(RwLock::new(Store::new()));
    let session = Session::builder().store(store).build();
    serve(addr, session, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_proto::{Lang, LimitsSpec, Op};
    use no_server::Client;

    fn graph_server() -> Server {
        let server = serve_in_memory("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for clause in ["schema G(U, U).", "G('a', 'b').", "G('b', 'c')."] {
            let req = Request {
                op: Op::Insert,
                text: clause.to_string(),
                ..Request::default()
            };
            let resp = client.roundtrip(&req).unwrap();
            assert!(resp.ok, "{:?}", resp.error);
        }
        server
    }

    #[test]
    fn a_served_session_answers_calc_over_tcp() {
        let server = graph_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let resp = client
            .roundtrip(&Request::eval(Lang::Calc, "{[x:U, y:U] | G(x, y)}"))
            .unwrap();
        assert!(resp.ok, "{:?}", resp.error);
        assert_eq!(resp.relations.len(), 1);
        assert_eq!(resp.relations[0].rows_json, r#"[["a","b"],["b","c"]]"#);
        assert!(resp.spend.is_some());
        server.shutdown();
    }

    #[test]
    fn mutations_from_one_connection_are_visible_to_another() {
        let server = graph_server();
        // graph_server inserted on its own connection, now closed; a
        // fresh connection must see the same store
        let mut other = Client::connect(server.local_addr()).unwrap();
        let resp = other
            .roundtrip(&Request::eval(Lang::Calc, "{[x:U, y:U] | G(x, y)}"))
            .unwrap();
        assert!(resp.ok);
        assert_eq!(resp.relations[0].rows.len(), 2);
        server.shutdown();
    }

    #[test]
    fn per_request_limits_trip_as_resource_errors_over_the_wire() {
        let server = graph_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let mut req = Request::eval(
            Lang::Datalog,
            "rel tc(U, U).\ntc(x, y) :- G(x, y).\ntc(x, y) :- tc(x, z), G(z, y).",
        );
        req.limits = Some(LimitsSpec {
            max_steps: Some(1),
            ..LimitsSpec::default()
        });
        let resp = client.roundtrip(&req).unwrap();
        assert!(!resp.ok);
        let err = resp.error.as_ref().unwrap();
        assert_eq!(err.kind, "resource");
        assert!(err.resource_trip);
        server.shutdown();
    }

    #[test]
    fn a_prefired_cancel_token_aborts_before_evaluation() {
        let store = Arc::new(RwLock::new(Store::new()));
        let mut guard = store.write().unwrap();
        for clause in ["schema G(U, U).", "G('a', 'b').", "G('b', 'c')."] {
            let parsed = crate::object::text::parse_clause(clause, guard.universe_mut()).unwrap();
            guard.apply_clause(parsed).unwrap();
        }
        drop(guard);
        let session = Session::builder().store(store).build();
        let handler = SessionHandler::new(session);
        let token = CancelToken::new();
        token.cancel();
        let req = Request::eval(
            Lang::Datalog,
            "rel tc(U, U).\ntc(x, y) :- G(x, y).\ntc(x, y) :- tc(x, z), G(z, y).",
        );
        let resp = handler.handle(&req, &token);
        assert!(!resp.ok);
        assert!(
            resp.error.as_ref().unwrap().resource_trip,
            "{:?}",
            resp.error
        );
    }
}
